#!/usr/bin/env python3
"""Beyond the paper: pack wear and the fully mixed N-battery pack.

Two extensions DESIGN.md documents:

1. **Aging** — project how long each Table I chemistry lasts (days to
   end of life) under a phone-like daily pattern, and how much a hot
   device accelerates the wear.
2. **Mixed pack** — run the greedy marginal-cost router over a
   three-chemistry pack (LCO + NCA + LMO) on an alternating
   gentle/burst load and show how the router assigns work by rate
   capability.

It also demonstrates the durability layer on a multi-day wear run: a
step budget interrupts the projection mid-way with a clean checkpoint
on disk, and a second call resumes from it — the pattern to use when
a real 30-day projection has to survive a batch-queue kill.

Run:  python examples/lifetime_projection.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.battery import (
    AgingModel,
    CHEMISTRIES,
    CellHealth,
    GreedyCellRouter,
    LCO,
    LMO,
    MixedPack,
    NCA,
    project_lifetime,
)
from repro.capman.baselines import DualPolicy
from repro.durability import (
    BudgetExceededError,
    Checkpointer,
    RunBudget,
    SimCheckpoint,
)
from repro.sim import run_days
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

#: A phone-like day: ~0.9 equivalent full cycles.
DAILY_AMP_S = 0.9 * 2500.0 / 1000.0 * 3600.0


def lifetime_table() -> None:
    rows = []
    for chem in CHEMISTRIES.values():
        cool = project_lifetime(chem, 2500.0, DAILY_AMP_S, mean_temp_c=25.0)
        hot = project_lifetime(chem, 2500.0, DAILY_AMP_S, mean_temp_c=40.0)
        rows.append([chem.name, chem.cycle_life, cool / 365.0, hot / 365.0])
    rows.sort(key=lambda r: -r[2])
    print(format_table(
        ["chemistry", "rated cycles", "years @ 25C", "years @ 40C"],
        rows,
        title="Projected pack lifetime at ~0.9 cycles/day",
    ))


def wear_demo() -> None:
    """Cycle a cell hard and watch its health fade."""
    model = AgingModel()
    health = CellHealth(NCA, 2500.0)
    for day in range(400):
        model.record_cycle(health, DAILY_AMP_S, mean_temp_c=32.0)
    print(f"\nNCA after 400 warm days: health {health.health:.2f}, "
          f"capacity {health.capacity_mah:.0f} mAh "
          f"({'EOL' if health.end_of_life else 'serviceable'})")


def mixed_pack_demo() -> None:
    pack = MixedPack.from_chemistries((LCO, NCA, LMO), capacity_mah=2500.0)
    router = GreedyCellRouter(pack)

    print("\nPer-cell marginal loss of the greedy N-way scheduler:")
    for power in (0.3, 1.2, 2.8, 5.0):
        costs = ", ".join(
            f"{cell.chemistry.name} {router.cost_w(cell, power) * 1000:.0f} mW"
            for cell in pack.cells
        )
        idx = router.route(power)
        print(f"  {power:4.1f} W -> {pack.cells[idx].chemistry.name}   ({costs})")
    print("  Note the myopic router's LITTLE bias: without CAPMAN's")
    print("  reserve-price calibration it spends the burst specialist")
    print("  on gentle load too -- exactly why the paper's MDP matters.")

    # Alternate gentle stretches with bursts for a bounded window.
    steps = 0
    delivered = 0.0
    while not pack.depleted and steps < 6_000:
        power = 3.0 if steps % 12 == 0 else 0.6
        delivered += router.step(power, 5.0).energy_j
        steps += 1
    print(f"\nMixed pack delivered {delivered / 1000:.1f} kJ over "
          f"{steps * 5 / 3600:.1f} h with {pack.switch_count} reroutes")
    print(format_table(
        ["cell", "final SoC"],
        [[name, soc] for name, soc in router.cell_shares().items()],
    ))


def durable_projection_demo() -> None:
    """Interrupt a multi-day wear run on a budget, then resume it.

    Day-boundary checkpoints are saved as the run goes; the step
    budget fires partway through (carrying a final clean checkpoint),
    and the resumed call fast-forwards the completed days and
    finishes the projection — bit-identical to never having stopped.
    """
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    ckpt = Path(tempfile.mkdtemp(prefix="capman-ckpt-")) / "projection.ckpt"
    days = dict(n_days=3, control_dt=2.0)

    # A scaled-down pack keeps the demo to seconds; 50 steps is less
    # than one simulated day, so the budget interrupts at the top of
    # day 2 with day 1 already checkpointed.
    try:
        run_days(DualPolicy(capacity_mah=40.0), trace,
                 checkpointer=Checkpointer(ckpt),
                 budget=RunBudget(max_steps=50), **days)
        print("\nDurable projection: budget never fired (unexpected)")
        return
    except BudgetExceededError as exc:
        print(f"\nDurable projection interrupted: {exc}")
        print(f"  checkpoint on disk: {ckpt.name}")

    resumed = run_days(DualPolicy(capacity_mah=40.0), trace,
                       resume_from=SimCheckpoint.load(ckpt), **days)
    healths = ", ".join(f"{h:.4f}" for h in resumed.last_day.cell_health)
    print(f"  resumed to day {len(resumed.days)}: "
          f"service {resumed.last_day.service_time_s / 3600.0:.2f} h/day, "
          f"cell health [{healths}]")


def main() -> None:
    lifetime_table()
    wear_demo()
    mixed_pack_demo()
    durable_projection_demo()


if __name__ == "__main__":
    main()
