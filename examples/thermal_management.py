#!/usr/bin/env python3
"""Thermal management: the TEC holding the 45 degC hot-spot line.

Drives a Geekbench-style saturating load on two identical phones --
one with CAPMAN's TEC thermostat, one passive -- and prints the CPU
temperature trajectories, the TEC duty cycle, and a sample of the
Figure 9 TTL battery-switch waveform.

Run:  python examples/thermal_management.py
"""

from repro.analysis.reporting import format_series, format_table
from repro.battery.pack import BigLittlePack
from repro.battery.chemistry import pick_big_little
from repro.capman import CapmanActuator, CapmanPolicy
from repro.device.phone import DemandSlice, Phone
from repro.sim import run_discharge_cycle
from repro.workload import GeekbenchWorkload, record_trace

CELL_MAH = 1200.0
WINDOW_S = 2.0 * 3600.0


def discharge_comparison() -> None:
    trace = record_trace(GeekbenchWorkload(seed=1), duration_s=600.0)
    cooled = run_discharge_cycle(
        CapmanPolicy(capacity_mah=CELL_MAH), trace,
        control_dt=2.0, max_duration_s=WINDOW_S)
    passive = run_discharge_cycle(
        CapmanPolicy(capacity_mah=CELL_MAH, uses_tec=False, name="passive"),
        trace, control_dt=2.0, max_duration_s=WINDOW_S)

    print(format_table(
        ["configuration", "max T (C)", "time > 45C (h)", "TEC on (h)",
         "TEC energy (J)"],
        [[r.policy_name, r.max_cpu_temp_c, r.time_above_threshold_s / 3600.0,
          r.tec_on_time_s / 3600.0, r.tec_energy_j]
         for r in (cooled, passive)],
        title="Saturating load, 2 h window",
    ))
    temp = cooled.metrics.series("cpu_temp_c")
    print()
    print(format_series("CPU temperature with TEC (t s, C)",
                        list(zip(temp.times, temp.values)), max_points=16))
    temp_p = passive.metrics.series("cpu_temp_c")
    print(format_series("CPU temperature passive (t s, C)",
                        list(zip(temp_p.times, temp_p.values)), max_points=16))


def actuator_demo() -> None:
    """Drive the actuator by hand and show the Figure 9 signal."""
    big, little = pick_big_little()
    phone = Phone(pack=BigLittlePack.from_chemistries(big, little, CELL_MAH))
    actuator = CapmanActuator(phone)

    from repro.battery.switch import BatterySelection

    schedule = [
        (0.0, BatterySelection.BIG),
        (2.0, BatterySelection.LITTLE),
        (5.0, BatterySelection.BIG),
        (7.0, BatterySelection.LITTLE),
        (8.0, BatterySelection.BIG),
    ]
    demand = DemandSlice(cpu_util=60.0, screen_on=True)
    for t, selection in schedule:
        actuator.apply(selection, t)
        phone.step(demand, 1.0)

    signal = actuator.control_signal(t_end=10.0)
    print()
    print(format_series("Figure 9 TTL switch waveform (t s, V)", signal))
    print(f"committed switches: {actuator.switch_count}")


def main() -> None:
    discharge_comparison()
    actuator_demo()


if __name__ == "__main__":
    main()
