#!/usr/bin/env python3
"""The MDP machinery end to end: profile, solve, approximate, bound.

1. Profiles a mixed workload into the paper-style syscall MDP.
2. Solves it exactly (value iteration) and runs the Algorithm 1
   structural-similarity recursion.
3. Verifies the Eq. (10) competitiveness bound
   ``|V*_u - V*_v| <= delta_S*(u, v) / (1 - rho)`` on every state pair.
4. Measures the online scheduler's decision overhead across a rho
   sweep (the Figure 16 trade-off).

Run:  python examples/mdp_playground.py
"""

from repro.analysis.reporting import format_series, format_table
from repro.capman import PowerProfiler, RuntimeCalibrator
from repro.core import (
    MDPGraph,
    StructuralSimilarity,
    value_iteration,
    verify_value_bound,
)
from repro.device.phone import Phone
from repro.workload import EtaStaticWorkload, record_trace

RHO = 0.9


def main() -> None:
    # 1. Profile.
    trace = record_trace(EtaStaticWorkload(0.5, seed=7), duration_s=1200.0)
    profiler = PowerProfiler()
    phone = Phone()
    segments = list(trace)
    for prev, nxt in zip(segments, segments[1:]):
        profiler.observe(prev, nxt,
                         measured_power_w=phone.demand_power_w(nxt.demand))
    mdp = profiler.build_syscall_mdp()
    print(f"Profiled MDP: {mdp.n_states} states, {mdp.n_actions} actions, "
          f"{len(mdp.transitions)} transitions")

    # 2. Solve exactly and run Algorithm 1.
    solution = value_iteration(mdp, rho=RHO)
    graph = MDPGraph(mdp)
    similarity = StructuralSimilarity(
        graph, c_s=1.0, c_a=RHO, tol=1e-4, max_iter=50).solve()
    print(f"Algorithm 1 converged in {similarity.iterations} iterations "
          f"(residual {similarity.residual:.2e}, "
          f"{similarity.elapsed_s * 1000:.0f} ms)")

    # Show the most similar pair of distinct states.
    best = None
    for i, u in enumerate(graph.state_nodes):
        v, sim = similarity.most_similar_state(u)
        if best is None or sim > best[2]:
            best = (u, v, sim)
    u, v, sim = best
    print(f"Most similar states: {u} ~ {v}  (sigma_S = {sim:.3f}); "
          f"value gap {abs(solution.value(u) - solution.value(v)):.4f} "
          f"<= bound {(1 - sim) / (1 - RHO):.4f}")

    # 3. Verify the Eq. (10) bound everywhere.
    check = verify_value_bound(mdp, solution, similarity, RHO, tolerance=1e-3)
    print(f"Eq. (10) bound check: {check.pairs_checked} pairs, "
          f"{check.violations} violations, worst slack {-check.worst_gap:.4f}")
    assert check.holds

    # 4. Overhead sweep (Figure 16).
    calibrator = RuntimeCalibrator(profiler.build_decision_mdp())
    points = calibrator.sweep((0.05, 0.3, 0.6, 0.8, 0.9, 0.95, 0.99),
                              n_decisions=48)
    print()
    print(format_series("decision overhead (rho, us)",
                        [(p.rho, p.mean_latency_us) for p in points]))
    budget_us = 200.0
    rec = calibrator.recommend(budget_us)
    print(format_table(
        ["latency budget (us)", "recommended rho", "mean latency (us)"],
        [[budget_us, rec.rho if rec else "none",
          rec.mean_latency_us if rec else "-"]],
    ))


if __name__ == "__main__":
    main()
