#!/usr/bin/env python3
"""Extending the library: a custom handset and a custom battery pair.

Builds a tablet-class device profile (bigger screen, faster CPU) and a
non-standard big.LITTLE pairing (LCO as the big cell, LFP as the
LITTLE cell -- both classified automatically from Table I features),
then lets CAPMAN schedule a mixed workload on it.

Run:  python examples/custom_phone.py
"""

from repro.analysis.reporting import format_table
from repro.battery import BatteryRole, LCO, LFP, classify
from repro.battery.pack import BigLittlePack
from repro.capman import CapmanPolicy, DualPolicy
from repro.device.power import CpuPowerModel, ScreenPowerModel, StatePowerTable
from repro.device.profiles import PhoneProfile
from repro.sim import run_discharge_cycle
from repro.workload import EtaStaticWorkload, record_trace

CELL_MAH = 700.0

TABLET = PhoneProfile(
    name="Tablet-X",
    cpu_freqs_mhz=(1200, 1800, 2000),
    android_version="7.1",
    power_table=StatePowerTable().scaled(1.25),
    cpu_model=CpuPowerModel(gamma_by_freq=(3.1, 5.0, 6.8), constant_mw=70.0),
    screen_model=ScreenPowerModel(alpha_black=2.6, alpha_white=5.2,
                                  constant_mw=30.0),
    compute_speed=2.1,
    battery_volume_cc=30.0,
)


class CustomPackCapman(CapmanPolicy):
    """CAPMAN over an LCO (big) + LFP (LITTLE) pack."""

    def build_pack(self) -> BigLittlePack:
        return BigLittlePack.from_chemistries(LCO, LFP, self.capacity_mah)


class CustomPackDual(DualPolicy):
    """LITTLE-first baseline on the same custom pack."""

    def build_pack(self) -> BigLittlePack:
        return BigLittlePack.from_chemistries(LCO, LFP, self.capacity_mah)


def main() -> None:
    print("Table I classification of the custom pair:")
    for chem in (LCO, LFP):
        print(f"  {chem.formula:12s} -> {classify(chem).value}")
    assert classify(LCO) is BatteryRole.BIG
    assert classify(LFP) is BatteryRole.LITTLE

    volume = TABLET.battery_volume_cc / 2.0
    print(f"\nAt {volume:.0f} cc per cell, LCO stores "
          f"{LCO.capacity_mah_for_volume(volume):.0f} mAh vs LFP's "
          f"{LFP.capacity_mah_for_volume(volume):.0f} mAh -- the "
          "energy-density / discharge-rate trade the pack exploits.")

    trace = record_trace(EtaStaticWorkload(0.5, seed=2), duration_s=1200.0)
    capman = run_discharge_cycle(
        CustomPackCapman(capacity_mah=CELL_MAH, name="CAPMAN(LCO+LFP)"),
        trace, profile=TABLET, control_dt=2.0)
    dual = run_discharge_cycle(
        CustomPackDual(capacity_mah=CELL_MAH, name="Dual(LCO+LFP)"),
        trace, profile=TABLET, control_dt=2.0)

    print()
    print(format_table(
        ["policy", "service (h)", "energy (kJ)", "LITTLE ratio", "max T (C)"],
        [[r.policy_name, r.service_time_s / 3600.0,
          r.energy_delivered_j / 1000.0, r.little_ratio, r.max_cpu_temp_c]
         for r in (capman, dual)],
        title=f"Mixed workload on the custom {TABLET.name}",
    ))


if __name__ == "__main__":
    main()
