#!/usr/bin/env python3
"""Figure 12-style comparison on the Video workload.

Runs all five evaluation policies -- Oracle, Practice, Dual, Heuristic
and CAPMAN -- over the same recorded Video trace, prints the ranked
comparison table and CAPMAN's state-of-charge curve.

Run:  python examples/video_streaming.py
"""

from repro.analysis.reporting import comparison_table, format_series, format_table
from repro.capman import (
    CapmanPolicy,
    DualPolicy,
    HeuristicPolicy,
    OraclePolicy,
    PracticePolicy,
)
from repro.sim import run_discharge_cycle
from repro.workload import VideoWorkload, record_trace

CELL_MAH = 600.0


def main() -> None:
    trace = record_trace(VideoWorkload(seed=1), duration_s=1200.0)

    policies = [
        PracticePolicy(capacity_mah=2 * CELL_MAH),
        DualPolicy(capacity_mah=CELL_MAH),
        HeuristicPolicy(capacity_mah=CELL_MAH),
        CapmanPolicy(capacity_mah=CELL_MAH),
        OraclePolicy(capacity_mah=CELL_MAH, tuning_scale=0.2),
    ]

    results = {}
    for policy in policies:
        print(f"running {policy.name} ...")
        results[policy.name] = run_discharge_cycle(policy, trace, control_dt=2.0)

    rows = comparison_table(results, reference="Practice")
    print()
    print(format_table(
        ["policy", "service (h)", "vs Practice (%)", "energy (kJ)",
         "switches", "LITTLE ratio"],
        [[r.policy, r.service_time_s / 3600.0, r.gain_over_reference_pct,
          r.energy_j / 1000.0, r.switch_count, r.little_ratio] for r in rows],
        title="One discharge cycle on Video (ranked)",
    ))

    soc = results["CAPMAN"].metrics.series("soc")
    print()
    print(format_series("CAPMAN state of charge (t s, SoC)",
                        list(zip(soc.times, soc.values)), max_points=16))


if __name__ == "__main__":
    main()
