#!/usr/bin/env python3
"""Fault tolerance: the TEC dies mid-discharge and CAPMAN degrades.

Runs a saturating Geekbench-style load twice -- once clean, once with
the TEC failing hard 60 s into the run -- through the supervised
policy wrapper.  The supervisor notices the cooler is commanded on but
the hot spot keeps climbing, strikes it out, and falls back to
frequency throttling; the structured fault/recovery event log and the
final degraded mode are printed at the end.

Run:  python examples/fault_tolerance.py
"""

from repro.analysis.reporting import format_table
from repro.capman import CapmanPolicy
from repro.faults import (
    FaultSchedule,
    FaultTrigger,
    SupervisedPolicy,
    TecFault,
)
from repro.sim import run_discharge_cycle
from repro.workload import GeekbenchWorkload, record_trace

TEC_DIES_AT_S = 60.0
WINDOW_S = 1800.0


def run(schedule: FaultSchedule, label: str):
    policy = SupervisedPolicy(
        inner=CapmanPolicy(), schedule=schedule, name=label)
    trace = record_trace(GeekbenchWorkload(seed=2), duration_s=600.0)
    return run_discharge_cycle(policy, trace, control_dt=2.0,
                               max_duration_s=WINDOW_S)


def main() -> None:
    nominal = run(FaultSchedule(name="nominal"), "CAPMAN")
    dead_tec = run(
        FaultSchedule(
            faults=(TecFault(trigger=FaultTrigger(start_s=TEC_DIES_AT_S),
                             stuck_off=True),),
            seed=1, name="tec-dead"),
        "CAPMAN/tec-dead")

    print(format_table(
        ["scenario", "final mode", "mode changes", "max T (C)",
         "time > 45C (s)", "fault events"],
        [[r.policy_name, r.final_mode, r.mode_transitions,
          r.max_cpu_temp_c, r.time_above_threshold_s, len(r.fault_events)]
         for r in (nominal, dead_tec)],
        title=f"TEC stuck off at t={TEC_DIES_AT_S:.0f} s, saturating load",
    ))

    print("\nEvent log (tec-dead run):")
    for ev in dead_tec.fault_events:
        print(f"  t={ev.time_s:8.1f}s  {type(ev).__name__:<13} "
              f"{ev.source:<10} {ev.kind:<28} {ev.detail}")

    print(f"\nFinal mode: {dead_tec.final_mode}")
    print("The same seeded schedule always reproduces this exact log; "
          "re-run to check.")


if __name__ == "__main__":
    main()
