#!/usr/bin/env python3
"""Quickstart: CAPMAN vs the stock single-battery phone.

Records a short Video workload trace, replays the identical demand on
two phones -- one running CAPMAN over an NCA+LMO big.LITTLE pack, one
stock phone with a single battery of the same total capacity -- and
prints how much longer CAPMAN keeps the phone alive.

Run:  python examples/quickstart.py
"""

from repro.analysis.reporting import format_table, gain_percent
from repro.capman import CapmanPolicy, PracticePolicy
from repro.sim import run_discharge_cycle
from repro.workload import VideoWorkload, record_trace

# Scaled-down cells (600 mAh per cell) so the demo finishes in seconds;
# the benchmark harness runs the full 2500 mAh evaluation.
CELL_MAH = 600.0


def main() -> None:
    trace = record_trace(VideoWorkload(seed=1), duration_s=1200.0)
    print(f"Workload: {trace.name}, {len(trace)} segments, "
          f"{trace.duration_s:.0f} s before looping")

    capman = run_discharge_cycle(
        CapmanPolicy(capacity_mah=CELL_MAH), trace, control_dt=2.0)
    stock = run_discharge_cycle(
        PracticePolicy(capacity_mah=2 * CELL_MAH), trace, control_dt=2.0)

    rows = [
        [r.policy_name, r.service_time_s / 3600.0,
         r.energy_delivered_j / 1000.0, r.switch_count, r.max_cpu_temp_c]
        for r in (capman, stock)
    ]
    print()
    print(format_table(
        ["policy", "service time (h)", "energy (kJ)", "switches", "max T (C)"],
        rows,
    ))
    gain = gain_percent(capman.service_time_s, stock.service_time_s)
    print(f"\nCAPMAN extends the discharge cycle by {gain:+.1f}% "
          f"over the single-battery phone.")


if __name__ == "__main__":
    main()
