"""Convergence-contract tests for the Algorithm 1 solvers.

The paper proves the similarity recursion contracts to a unique fixed
point for discounts below one.  These tests hold both solver flavours
to the observable consequences: residuals shrink to the tolerance,
``max_iter`` is a hard cap, and the Eq. (3) base-case entries are fixed
from the first iteration onwards.
"""

import numpy as np
import pytest

from repro.core.graph import MDPGraph
from repro.core.mdp import random_mdp
from repro.core.similarity import StructuralSimilarity

BOTH = pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])


def _graph(seed=3, n_states=8, absorbing=2):
    return MDPGraph(random_mdp(n_states, 2, branching=3, seed=seed, absorbing=absorbing))


class TestResiduals:
    @BOTH
    def test_residual_reaches_tol_for_contractive_discounts(self, fast):
        res = StructuralSimilarity(
            _graph(), c_s=0.9, c_a=0.9, tol=1e-6, max_iter=200, fast=fast
        ).solve()
        assert res.residual <= 1e-6
        assert res.iterations < 200

    @BOTH
    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_residual_history_monotone_nonincreasing(self, fast, seed):
        res = StructuralSimilarity(
            _graph(seed=seed), c_s=0.95, c_a=0.95, tol=1e-10, max_iter=300, fast=fast
        ).solve()
        residuals = res.stats.residuals
        assert len(residuals) == res.iterations
        for earlier, later in zip(residuals, residuals[1:]):
            assert later <= earlier + 1e-12
        assert residuals[-1] == pytest.approx(res.residual)

    @BOTH
    def test_residual_contraction_rate(self, fast):
        """Successive residuals shrink at least geometrically with the
        discount (the contraction modulus is at most max(c_s, c_a))."""
        c = 0.8
        res = StructuralSimilarity(
            _graph(seed=11), c_s=c, c_a=c, tol=1e-12, max_iter=400, fast=fast
        ).solve()
        residuals = [r for r in res.stats.residuals if r > 1e-13]
        for earlier, later in zip(residuals, residuals[1:]):
            assert later <= c * earlier + 1e-12


class TestMaxIter:
    @BOTH
    @pytest.mark.parametrize("cap", [1, 2, 5])
    def test_max_iter_is_a_hard_cap(self, fast, cap):
        res = StructuralSimilarity(
            _graph(), c_s=0.99, c_a=0.99, tol=1e-15, max_iter=cap, fast=fast
        ).solve()
        assert res.iterations == cap
        assert len(res.stats.residuals) == cap


class TestBaseCasesStayFixed:
    """Eq. (3) rows must survive every iteration, not just the last."""

    @BOTH
    @pytest.mark.parametrize("cap", [1, 2, 5])
    def test_absorbing_rows_fixed_at_every_horizon(self, fast, cap):
        graph = _graph(seed=5)
        res = StructuralSimilarity(
            graph, c_s=0.95, c_a=0.95, tol=1e-15, max_iter=cap, fast=fast
        ).solve()
        absorbing = [i for i, s in enumerate(graph.state_nodes) if graph.is_absorbing(s)]
        live = [i for i in range(len(graph.state_nodes)) if i not in absorbing]
        assert absorbing, "fixture graph must contain absorbing states"
        sim = res.state_sim
        assert np.allclose(np.diag(sim), 1.0)
        for i in absorbing:
            for j in live:
                assert sim[i, j] == 0.0
                assert sim[j, i] == 0.0
        for i in absorbing:
            for j in absorbing:
                if i != j:
                    # d_absorbing defaults to 1.0 -> similarity 0.
                    assert sim[i, j] == 0.0

    @BOTH
    def test_d_absorbing_zero_pins_absorbing_pairs_to_one(self, fast):
        graph = _graph(seed=5)
        res = StructuralSimilarity(
            graph, d_absorbing=0.0, tol=1e-8, max_iter=100, fast=fast
        ).solve()
        absorbing = [i for i, s in enumerate(graph.state_nodes) if graph.is_absorbing(s)]
        for i in absorbing:
            for j in absorbing:
                assert res.state_sim[i, j] == 1.0


class TestStatsRecord:
    @BOTH
    def test_stats_mode_and_timing_populated(self, fast):
        res = StructuralSimilarity(_graph(), tol=1e-6, fast=fast).solve()
        stats = res.stats
        assert stats is not None
        assert stats.mode == ("fast" if fast else "reference")
        assert stats.iterations == res.iterations
        assert stats.total_s >= 0.0
        assert stats.action_refresh_s >= 0.0
        assert stats.state_refresh_s >= 0.0

    def test_fast_mode_reports_emd_counters(self):
        res = StructuralSimilarity(_graph(), tol=1e-6, fast=True).solve()
        emd = res.stats.emd
        assert emd is not None
        assert emd.calls > 0
        assert emd.batched + emd.closed_form + emd.solves + emd.memo_hits + emd.reuse_hits > 0
