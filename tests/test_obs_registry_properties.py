"""Property tests for the metrics registry's algebra.

The sweep runner folds per-cell telemetry blobs in *completion order*,
which varies with the worker count and OS scheduling.  The aggregate is
only deterministic because the merge is associative and commutative --
pinned here over integer-valued amounts (where float addition is
exact), alongside the histogram bucketing invariants and counter
monotonicity the registry documents.
"""

from __future__ import annotations

from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs

# Integer amounts keep the additive merges exact (float addition over
# integers below 2**53 is associative), so equality can be strict.
amounts = st.integers(min_value=0, max_value=10**6)
values = st.floats(min_value=-1e3, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
names = st.sampled_from(["sim.steps", "sim.brownouts", "scheduler.hits"])

boundaries = st.lists(
    st.integers(min_value=1, max_value=1000), min_size=1, max_size=6,
    unique=True).map(lambda bs: tuple(float(b) for b in sorted(bs)))


# ----------------------------------------------------------------------
# Histogram invariants
# ----------------------------------------------------------------------
@given(bounds=boundaries, samples=st.lists(values, max_size=50))
def test_histogram_total_count_equals_bucket_sum(bounds, samples):
    h = obs.Histogram("h", boundaries=bounds)
    for v in samples:
        h.observe(v)
    assert sum(h.bucket_counts) == h.count == len(samples)
    assert len(h.bucket_counts) == len(bounds) + 1


@given(bounds=boundaries, value=values)
def test_histogram_sample_lands_in_its_bucket(bounds, value):
    h = obs.Histogram("h", boundaries=bounds)
    h.observe(value)
    index = next(i for i, c in enumerate(h.bucket_counts) if c)
    assert index == bisect_left(bounds, value)
    if index < len(bounds):
        assert value <= bounds[index]           # within this bucket...
        if index > 0:
            assert value > bounds[index - 1]    # ...and above the previous
    else:
        assert value > bounds[-1]               # overflow bucket


@given(bounds=boundaries,
       a=st.lists(values, max_size=30), b=st.lists(values, max_size=30))
def test_histogram_merge_equals_combined_observation(bounds, a, b):
    separate = obs.Histogram("h", boundaries=bounds)
    combined = obs.Histogram("h", boundaries=bounds)
    other = obs.Histogram("h", boundaries=bounds)
    for v in a:
        separate.observe(v)
        combined.observe(v)
    for v in b:
        other.observe(v)
        combined.observe(v)
    separate._merge_parts(other.bucket_counts, other.sum)
    assert separate.bucket_counts == combined.bucket_counts
    assert separate.count == combined.count


# ----------------------------------------------------------------------
# Counter monotonicity
# ----------------------------------------------------------------------
@given(increments=st.lists(amounts, max_size=50))
def test_counter_is_monotone_and_exact(increments):
    c = obs.Counter("c")
    seen = 0.0
    for amount in increments:
        c.inc(amount)
        assert c.value >= seen
        seen = c.value
    assert c.value == sum(increments)


@given(amount=st.integers(min_value=1, max_value=10**6))
def test_counter_rejects_any_negative(amount):
    c = obs.Counter("c")
    with pytest.raises(ValueError):
        c.inc(-amount)
    assert c.value == 0.0


# ----------------------------------------------------------------------
# Merge algebra (registries and telemetry blobs)
# ----------------------------------------------------------------------
registry_contents = st.lists(
    st.tuples(st.sampled_from(["counter", "gauge", "hist"]), names, amounts),
    max_size=12)


def _build_registry(contents):
    reg = obs.MetricsRegistry()
    for kind, name, amount in contents:
        if kind == "counter":
            reg.counter(name).inc(amount)
        elif kind == "gauge":
            reg.gauge(name).set(amount)
        else:
            reg.histogram(name, boundaries=(10.0, 100.0)).observe(amount)
    return reg


def _freeze(reg):
    return (reg.counter_values(), reg.gauge_values(),
            {n: (tuple(d["counts"]), d["sum"])
             for n, d in reg.histogram_dicts().items()})


@given(a=registry_contents, b=registry_contents)
def test_registry_merge_commutes(a, b):
    ab = _build_registry(a)
    ab.merge(_build_registry(b))
    ba = _build_registry(b)
    ba.merge(_build_registry(a))
    assert _freeze(ab) == _freeze(ba)


@settings(max_examples=50)
@given(a=registry_contents, b=registry_contents, c=registry_contents)
def test_registry_merge_associates(a, b, c):
    left = _build_registry(a)
    left.merge(_build_registry(b))
    left.merge(_build_registry(c))

    bc = _build_registry(b)
    bc.merge(_build_registry(c))
    right = _build_registry(a)
    right.merge(bc)
    assert _freeze(left) == _freeze(right)


def _blob(contents):
    session = obs.ObsSession()
    scope = session.scope("test")
    for kind, name, amount in contents:
        if kind == "counter":
            scope.registry.counter(name).inc(amount)
        elif kind == "gauge":
            scope.registry.gauge(name).set(amount)
        else:
            scope.registry.histogram(name, boundaries=(10.0, 100.0)) \
                .observe(amount)
    blob = scope.telemetry()
    scope.close()
    return blob


def _blob_freeze(blob):
    return (blob.counters, blob.gauges,
            {n: (tuple(d["counts"]), d["sum"])
             for n, d in blob.histograms.items()})


@given(a=registry_contents, b=registry_contents)
def test_telemetry_merge_commutes(a, b):
    x, y = _blob(a), _blob(b)
    assert _blob_freeze(x.merge(y)) == _blob_freeze(y.merge(x))


@settings(max_examples=50)
@given(a=registry_contents, b=registry_contents, c=registry_contents)
def test_telemetry_merge_associates(a, b, c):
    x, y, z = _blob(a), _blob(b), _blob(c)
    assert _blob_freeze(x.merge(y).merge(z)) == _blob_freeze(x.merge(y.merge(z)))


@given(blobs=st.lists(registry_contents, max_size=5))
def test_merged_equals_left_fold(blobs):
    """``RunTelemetry.merged`` is exactly the pairwise left fold -- the
    sweep runner relies on this when cells complete out of order."""
    built = [_blob(b) for b in blobs]
    folded = obs.RunTelemetry(kind="sweep")
    for blob in built:
        folded = folded.merge(blob)
    assert _blob_freeze(obs.RunTelemetry.merged(built, kind="sweep")) \
        == _blob_freeze(folded)
