"""Tiny stdlib HTTP client + grid builders shared by the service tests.

Not a test module: imported by ``test_service*.py`` (and the smoke
script) so every caller speaks to the service the same way -- plain
``urllib`` requests, structured-error tolerant, with a deadline-bound
poll helper.
"""

import json
import time
import urllib.error
import urllib.request

#: Outer deadline for "a small grid finishes" polls; generous for CI.
POLL_DEADLINE_S = 120.0


def api(base, method, path, body=None, token=None, raw=None,
        timeout=30.0):
    """One request; returns ``(status, parsed-JSON-or-None)``.

    ``body`` is JSON-encoded; ``raw`` sends the given bytes verbatim
    (malformed-input tests).  HTTP errors are returned, not raised.
    """
    data = raw
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(base + path, data=data,
                                     method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            payload = resp.read()
            status = resp.status
    except urllib.error.HTTPError as err:
        payload = err.read()
        status = err.code
    try:
        return status, json.loads(payload)
    except ValueError:
        return status, None


def wait_for_job(base, job_id, token=None, deadline_s=POLL_DEADLINE_S):
    """Poll ``GET /jobs/{id}`` until a terminal state; returns status."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        code, status = api(base, "GET", f"/jobs/{job_id}", token=token)
        if code == 200 and status.get("state") in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} not terminal within {deadline_s}s (last: {status})")


def small_grid(capacities=(30.0, 40.0), seed=1, duration_s=60.0):
    """A fast all-Dual grid: one cell per capacity."""
    return {
        "policies": {
            f"D{int(mah)}": {"type": "dual", "capacity_mah": float(mah)}
            for mah in capacities
        },
        "traces": {"V": {"workload": "video", "seed": seed,
                         "duration_s": duration_s}},
        "max_duration_s": 600.0,
    }


def slow_grid(capacities=(30, 40, 50, 60, 70, 80), delay_s=0.4):
    """The crash-drill grid: wall-time-burning cells, same physics."""
    return {
        "policies": {
            f"Slow{mah}": {"type": "slow_dual",
                           "capacity_mah": float(mah),
                           "delay_s": delay_s}
            for mah in capacities
        },
        "traces": {"V": {"workload": "video", "seed": 5,
                         "duration_s": 120.0}},
        "max_duration_s": 900.0,
    }
