"""Empirical verification of the Eq. (10) competitiveness bound.

With ``C_S = 1`` and ``C_A = rho`` the converged structural distance
must dominate optimal value differences scaled by ``1 - rho``.  These
tests check the bound pairwise on random MDPs -- the library's
executable version of the paper's Section III-D proof.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    competitiveness_factor,
    value_difference_bound,
    verify_action_bound,
    verify_value_bound,
)
from repro.core.graph import MDPGraph
from repro.core.mdp import random_mdp
from repro.core.similarity import StructuralSimilarity
from repro.core.solver import value_iteration


def _check(seed: int, rho: float, n_states: int = 6, n_actions: int = 2):
    mdp = random_mdp(n_states, n_actions, branching=2, seed=seed, absorbing=1)
    sol = value_iteration(mdp, rho=rho, tol=1e-10)
    sim = StructuralSimilarity(
        MDPGraph(mdp), c_s=1.0, c_a=max(rho, 1e-6), tol=1e-6, max_iter=200
    ).solve()
    return mdp, sol, sim


class TestBoundArithmetic:
    def test_value_difference_bound(self):
        assert value_difference_bound(0.5, 0.5) == pytest.approx(1.0)
        assert value_difference_bound(0.0, 0.9) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            value_difference_bound(0.5, 1.0)
        with pytest.raises(ValueError):
            value_difference_bound(-0.1, 0.5)

    def test_competitiveness_factor_paper_example(self):
        # The paper's example: rho = 0.05 gives ~1.05-competitiveness.
        assert competitiveness_factor(0.05) == pytest.approx(1.0526, abs=1e-3)

    def test_competitiveness_grows_with_rho(self):
        assert competitiveness_factor(0.9) > competitiveness_factor(0.5)


class TestValueBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.9])
    def test_bound_holds_on_random_mdps(self, seed, rho):
        mdp, sol, sim = _check(seed, rho)
        check = verify_value_bound(mdp, sol, sim, rho, tolerance=1e-3)
        assert check.holds, f"violated by {check.worst_gap} at {check.worst_pair}"

    def test_check_counts_pairs(self):
        mdp, sol, sim = _check(5, 0.5)
        check = verify_value_bound(mdp, sol, sim, 0.5)
        n = mdp.n_states
        assert check.pairs_checked == n * (n - 1) // 2


class TestActionBound:
    @pytest.mark.parametrize("seed", [0, 2, 4])
    def test_bound_holds(self, seed):
        rho = 0.7
        mdp, sol, sim = _check(seed, rho)
        check = verify_action_bound(mdp, sol, sim, rho, tolerance=1e-3)
        assert check.holds, f"violated by {check.worst_gap} at {check.worst_pair}"


class TestBoundProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), rho=st.sampled_from([0.2, 0.5, 0.8]))
    def test_bound_holds_hypothesis(self, seed, rho):
        mdp, sol, sim = _check(seed, rho, n_states=5)
        check = verify_value_bound(mdp, sol, sim, rho, tolerance=2e-3)
        assert check.holds, f"violated by {check.worst_gap} at {check.worst_pair}"
