"""Tests for the CAPMAN controller policy."""

import pytest

from repro.battery.pack import BigLittlePack
from repro.battery.switch import BatterySelection
from repro.capman.controller import CapmanPolicy
from repro.device.phone import DemandSlice, Phone
from repro.sim.discharge import PolicyContext, run_discharge_cycle
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


def _ctx(power=1.0, util=20.0, wifi=0.0, soc_big=0.9, soc_little=0.9,
         active=BatterySelection.BIG, temp=30.0, start=True, syscall=None):
    return PolicyContext(
        now_s=0.0,
        demand=DemandSlice(cpu_util=util, screen_on=True, wifi_kbps=wifi),
        syscall=syscall,
        predicted_power_w=power,
        cpu_temp_c=temp,
        surface_temp_c=temp - 5.0,
        soc_big=soc_big,
        soc_little=soc_little,
        active=active,
        segment_start=start,
    )


@pytest.fixture
def started_policy():
    pol = CapmanPolicy(capacity_mah=60.0)
    phone = Phone(pack=pol.build_pack())
    trace = record_trace(VideoWorkload(seed=23), 60.0)
    pol.on_cycle_start(trace, phone)
    return pol


class TestLifecycle:
    def test_requires_cycle_start(self):
        pol = CapmanPolicy()
        with pytest.raises(RuntimeError):
            pol.decide_battery(_ctx())

    def test_builds_big_little_pack(self):
        assert isinstance(CapmanPolicy().build_pack(), BigLittlePack)

    def test_uses_tec(self):
        assert CapmanPolicy().uses_tec

    def test_scheduler_absent_before_learning(self, started_policy):
        assert started_policy.scheduler is None


class TestFallbackPhase:
    def test_burst_goes_little_before_model_exists(self, started_policy):
        choice = started_policy.decide_battery(_ctx(power=2.5, util=90.0))
        assert choice is BatterySelection.LITTLE

    def test_gentle_goes_big_before_model_exists(self, started_policy):
        choice = started_policy.decide_battery(_ctx(power=0.8, util=20.0))
        assert choice is BatterySelection.BIG


class TestLearning:
    def test_model_appears_after_enough_observations(self, started_policy):
        pol = started_policy
        for i in range(pol.min_observations + 2):
            util = 90.0 if i % 2 else 20.0
            pol.decide_battery(_ctx(util=util, power=1.0 + (i % 2)))
        assert pol.scheduler is not None
        assert pol.profiler.n_observations >= pol.min_observations

    def test_hot_spot_forces_little(self, started_policy):
        choice = started_policy.decide_battery(_ctx(power=0.5, temp=46.0))
        assert choice is BatterySelection.LITTLE

    def test_soc_guard_overrides(self, started_policy):
        choice = started_policy.decide_battery(
            _ctx(power=2.5, util=90.0, soc_little=0.01)
        )
        assert choice is BatterySelection.BIG


class TestEndToEnd:
    def test_capman_beats_dual_on_video(self):
        """At test scale, CAPMAN's split should match or beat LITTLE-first."""
        from repro.capman.baselines import DualPolicy

        trace = record_trace(VideoWorkload(seed=29), 300.0)
        capman = run_discharge_cycle(
            CapmanPolicy(capacity_mah=400.0, replan_interval=20),
            trace, control_dt=2.0, max_duration_s=10 * 3600.0)
        dual = run_discharge_cycle(
            DualPolicy(capacity_mah=400.0),
            trace, control_dt=2.0, max_duration_s=10 * 3600.0)
        assert capman.service_time_s >= dual.service_time_s * 0.98

    def test_capman_controls_temperature(self):
        """CAPMAN's thermostat keeps the die near the 45 C line."""
        from repro.workload.generators import GeekbenchWorkload

        trace = record_trace(GeekbenchWorkload(seed=31), 300.0)
        res = run_discharge_cycle(
            CapmanPolicy(capacity_mah=400.0),
            trace, control_dt=2.0, max_duration_s=2.0 * 3600.0)
        assert res.max_cpu_temp_c < 47.5
        assert res.tec_on_time_s > 0.0
