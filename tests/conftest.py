"""Shared fixtures for the test suite.

Discharge-cycle tests run on deliberately small cells and short traces
so a full cycle completes in well under a second.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.battery.cell import Cell
from repro.battery.chemistry import LMO, NCA
from repro.battery.pack import BigLittlePack
from repro.core.mdp import random_mdp
from repro.workload.generators import VideoWorkload
from repro.workload.traces import Trace, record_trace


@pytest.fixture(autouse=True)
def _obs_off():
    """Observability must never leak between tests.

    Every test starts and ends with the process-wide obs session torn
    down; tests that want telemetry call ``obs.configure`` themselves.
    """
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def small_big_cell() -> Cell:
    """An NCA (big) cell small enough to drain quickly in tests."""
    return Cell(NCA, capacity_mah=60.0)


@pytest.fixture
def small_little_cell() -> Cell:
    """An LMO (LITTLE) cell small enough to drain quickly in tests."""
    return Cell(LMO, capacity_mah=60.0)


@pytest.fixture
def small_pack(small_big_cell: Cell, small_little_cell: Cell) -> BigLittlePack:
    """A tiny big.LITTLE pack for fast discharge tests."""
    return BigLittlePack(big=small_big_cell, little=small_little_cell)


@pytest.fixture
def video_trace() -> Trace:
    """Five minutes of the Video workload, materialised."""
    return record_trace(VideoWorkload(seed=7), duration_s=300.0)


@pytest.fixture
def tiny_mdp():
    """A small random MDP with an absorbing state."""
    return random_mdp(n_states=6, n_actions=3, branching=2, seed=3, absorbing=1)
