"""Tests for the cycle-life aging extension."""

import pytest

from repro.battery.aging import AgingModel, CellHealth, project_lifetime
from repro.battery.chemistry import LTO, NCA, NMC


class TestCellHealth:
    def test_fresh_cell_full_health(self):
        h = CellHealth(NCA, 2500.0)
        assert h.health == 1.0
        assert h.capacity_mah == 2500.0
        assert not h.end_of_life

    def test_fade_linear_in_cycles(self):
        h = CellHealth(NCA, 2500.0, equivalent_cycles=NCA.cycle_life / 2)
        assert h.fade_fraction == pytest.approx(0.1)
        assert h.capacity_mah == pytest.approx(2250.0)

    def test_eol_at_rated_cycles(self):
        h = CellHealth(NCA, 2500.0, equivalent_cycles=float(NCA.cycle_life) * 1.01)
        assert h.end_of_life
        assert h.health == pytest.approx(0.0, abs=0.02)

    def test_fresh_cell_reflects_fade(self):
        h = CellHealth(NCA, 2500.0, equivalent_cycles=NCA.cycle_life / 2)
        cell = h.fresh_cell()
        assert cell.capacity_mah == pytest.approx(2250.0)


class TestAgingModel:
    def test_one_full_cycle_counts_one(self):
        model = AgingModel()
        h = CellHealth(NCA, 1000.0)
        model.record_cycle(h, throughput_amp_s=3600.0)  # 1000 mAh
        assert h.equivalent_cycles == pytest.approx(1.0)

    def test_heat_accelerates(self):
        model = AgingModel()
        cool = CellHealth(NCA, 1000.0)
        hot = CellHealth(NCA, 1000.0)
        model.record_cycle(cool, 3600.0, mean_temp_c=25.0)
        model.record_cycle(hot, 3600.0, mean_temp_c=45.0)
        assert hot.equivalent_cycles == pytest.approx(4.0 * cool.equivalent_cycles)

    def test_over_rate_draw_accelerates(self):
        model = AgingModel()
        gentle = CellHealth(NCA, 1000.0)
        harsh = CellHealth(NCA, 1000.0)
        i_sus = NCA.kibam_k * 3600.0
        model.record_cycle(gentle, 3600.0, mean_current_a=i_sus * 0.5)
        model.record_cycle(harsh, 3600.0, mean_current_a=i_sus * 3.0)
        assert harsh.equivalent_cycles > gentle.equivalent_cycles

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError):
            AgingModel().record_cycle(CellHealth(NCA, 1000.0), -1.0)


class TestLifetimeProjection:
    def test_table_i_lifetime_ordering(self):
        """LTO (5-star lifetime) must outlive NCA (1-star) by far."""
        daily = 0.8 * 2500.0 / 1000.0 * 3600.0  # 0.8 cycles/day
        nca_days = project_lifetime(NCA, 2500.0, daily)
        lto_days = project_lifetime(LTO, 2500.0, daily)
        nmc_days = project_lifetime(NMC, 2500.0, daily)
        assert lto_days > nmc_days > nca_days
        assert lto_days > 5 * nca_days

    def test_heat_shortens_life(self):
        daily = 3600.0
        cool = project_lifetime(NCA, 1000.0, daily, mean_temp_c=25.0)
        hot = project_lifetime(NCA, 1000.0, daily, mean_temp_c=45.0)
        assert hot == pytest.approx(cool / 4.0)

    def test_nonpositive_throughput_rejected(self):
        with pytest.raises(ValueError):
            project_lifetime(NCA, 1000.0, 0.0)
