"""Cross-module integration tests: the paper's claims at test scale.

These run miniature versions of the evaluation (small cells, short
traces) and assert the *orderings* the paper reports, not absolute
numbers.
"""

import pytest

from repro.battery.pack import SingleBatteryPack
from repro.battery.switch import BatterySelection
from repro.capman.baselines import DualPolicy, HeuristicPolicy, PracticePolicy
from repro.capman.controller import CapmanPolicy
from repro.sim.discharge import SchedulingPolicy, run_discharge_cycle
from repro.workload.generators import (
    GeekbenchWorkload,
    SkewedBurstWorkload,
    VideoWorkload,
)
from repro.workload.onoff import ScreenToggleWorkload
from repro.workload.traces import record_trace

CAP = 300.0  # per-cell mAh at test scale
HOURS = 8 * 3600.0


def _run(policy, trace, **kw):
    return run_discharge_cycle(policy, trace, control_dt=2.0,
                               max_duration_s=HOURS, **kw)


class SingleChemistryPolicy(SchedulingPolicy):
    """Fixed single cell of one chemistry (Figure 2 micro-experiments)."""

    uses_tec = False

    def __init__(self, chemistry, mah=CAP):
        self.chemistry = chemistry
        self.mah = mah
        self.name = chemistry.name

    def build_pack(self):
        return SingleBatteryPack.from_chemistry(self.chemistry, self.mah)

    def decide_battery(self, ctx):
        return None


class TestFigure2MicroExperiments:
    def test_little_chemistry_gains_with_toggle_frequency(self):
        """Figure 2(b) trend: the burst-capable chemistry's relative
        advantage grows as the on/off frequency rises."""
        from repro.battery.chemistry import LMO, NCA

        def ratio(period_s):
            trace = record_trace(ScreenToggleWorkload(period_s, seed=3), 240.0)
            lmo = _run(SingleChemistryPolicy(LMO), trace).service_time_s
            nca = _run(SingleChemistryPolicy(NCA), trace).service_time_s
            return lmo / nca

        assert ratio(4.0) > ratio(60.0) * 0.98

    def test_chemistries_diverge_on_same_workload(self):
        from repro.battery.chemistry import LMO, NCA

        trace = record_trace(VideoWorkload(seed=3), 240.0)
        lmo = _run(SingleChemistryPolicy(LMO), trace).service_time_s
        nca = _run(SingleChemistryPolicy(NCA), trace).service_time_s
        assert abs(lmo - nca) / max(lmo, nca) > 0.05


class TestFigure12Orderings:
    @pytest.fixture(scope="class")
    def video_results(self):
        trace = record_trace(VideoWorkload(seed=19), 300.0)
        return {
            "Practice": _run(PracticePolicy(capacity_mah=2 * CAP), trace),
            "Dual": _run(DualPolicy(capacity_mah=CAP), trace),
            "CAPMAN": _run(CapmanPolicy(capacity_mah=CAP, replan_interval=20), trace),
        }

    def test_dual_battery_beats_single(self, video_results):
        assert (video_results["Dual"].service_time_s
                > video_results["Practice"].service_time_s)

    def test_capman_at_least_matches_dual(self, video_results):
        assert (video_results["CAPMAN"].service_time_s
                >= video_results["Dual"].service_time_s * 0.97)

    def test_capman_doubles_nothing_unfairly(self, video_results):
        """Sanity: CAPMAN's energy does not exceed the pack's content."""
        res = video_results["CAPMAN"]
        # Two cells of CAP mAh at ~4 V: upper bound on extractable J.
        upper = 2 * CAP / 1000.0 * 3600.0 * 4.3
        assert res.energy_delivered_j < upper


class TestSkewedLoadHeadline:
    def test_capman_gains_substantially_on_bursty_loads(self):
        """The paper's headline is quoted under skewed loads: CAPMAN
        must show a large gain over Practice there.  (The cross-workload
        *ordering* only emerges at the paper's 2500 mAh scale, where a
        single cell can sustain Geekbench; it is asserted by the
        headline benchmark, not at this miniature test scale.)"""
        skew_trace = record_trace(SkewedBurstWorkload(seed=23), 400.0)
        geek_trace = record_trace(GeekbenchWorkload(seed=23), 400.0)

        def gain(trace):
            cap = _run(CapmanPolicy(capacity_mah=CAP, replan_interval=20), trace)
            base = _run(PracticePolicy(capacity_mah=2 * CAP), trace)
            return cap.service_time_s / base.service_time_s

        assert gain(skew_trace) > 1.5
        assert gain(geek_trace) > 1.5


class TestThermalIntegration:
    def test_practice_runs_hotter_than_capman_on_heavy_load(self):
        trace = record_trace(GeekbenchWorkload(seed=29), 300.0)
        practice = _run(PracticePolicy(capacity_mah=2 * CAP), trace)
        capman = _run(CapmanPolicy(capacity_mah=CAP), trace)
        # CAPMAN has the TEC; Practice does not.
        assert capman.max_cpu_temp_c <= practice.max_cpu_temp_c + 0.5

    def test_heuristic_counts_many_switches_on_mixed_load(self):
        from repro.workload.generators import PCMarkWorkload

        trace = record_trace(PCMarkWorkload(seed=31), 300.0)
        res = _run(HeuristicPolicy(capacity_mah=CAP), trace)
        assert res.switch_count >= 2
