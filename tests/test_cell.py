"""Tests for the KiBaM cell model."""

import pytest

from repro.battery.cell import Cell
from repro.battery.chemistry import LMO, NCA


class TestConstruction:
    def test_initial_wells_split_by_c(self):
        cell = Cell(NCA, capacity_mah=1000.0)
        c = NCA.kibam_c
        assert cell.available_amp_s == pytest.approx(cell.capacity_amp_s * c)
        assert cell.charge_amp_s == pytest.approx(cell.capacity_amp_s)

    def test_partial_soc(self):
        cell = Cell(NCA, capacity_mah=1000.0, soc=0.5)
        assert cell.state_of_charge == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Cell(NCA, capacity_mah=-1.0)
        with pytest.raises(ValueError):
            Cell(NCA, soc=1.5)


class TestVoltage:
    def test_ocv_monotone_in_soc(self):
        high = Cell(NCA, soc=1.0).open_circuit_voltage()
        mid = Cell(NCA, soc=0.5).open_circuit_voltage()
        low = Cell(NCA, soc=0.05).open_circuit_voltage()
        assert high > mid > low

    def test_ocv_within_chemistry_window(self):
        for soc in (0.0, 0.2, 0.5, 0.8, 1.0):
            v = Cell(NCA, soc=soc).open_circuit_voltage()
            assert NCA.cutoff_voltage <= v <= NCA.full_voltage

    def test_terminal_voltage_drops_under_load(self):
        cell = Cell(NCA)
        assert cell.terminal_voltage(1.0) < cell.terminal_voltage(0.0)

    def test_resistance_rises_when_hot(self):
        cold = Cell(NCA, temperature_c=25.0).internal_resistance()
        hot = Cell(NCA, temperature_c=45.0).internal_resistance()
        assert hot > cold

    def test_resistance_rises_when_empty(self):
        full = Cell(NCA, soc=1.0).internal_resistance()
        empty = Cell(NCA, soc=0.1).internal_resistance()
        assert empty > full


class TestPowerSolve:
    def test_current_satisfies_power_equation(self):
        cell = Cell(NCA)
        for p in (0.5, 1.0, 3.0):
            i = cell.current_for_power(p)
            v = cell.terminal_voltage(i)
            assert i * v == pytest.approx(p, rel=1e-6)

    def test_zero_power_zero_current(self):
        assert Cell(NCA).current_for_power(0.0) == 0.0

    def test_excess_power_clamped_at_mpp(self):
        cell = Cell(NCA)
        i = cell.current_for_power(1e6)
        veff = cell.open_circuit_voltage()
        assert i == pytest.approx(veff / (2 * cell.internal_resistance()))

    def test_max_power_positive(self):
        assert Cell(NCA).max_power_w() > 5.0


class TestDischarge:
    def test_charge_decreases_when_drawing(self):
        cell = Cell(NCA, capacity_mah=100.0)
        before = cell.charge_amp_s
        cell.draw_power(1.0, 10.0)
        assert cell.charge_amp_s < before

    def test_energy_delivered_matches_demand(self):
        cell = Cell(NCA, capacity_mah=1000.0)
        res = cell.draw_power(2.0, 5.0)
        assert res.energy_j == pytest.approx(10.0)
        assert not res.shortfall

    def test_heat_positive_under_load(self):
        res = Cell(NCA).draw_power(3.0, 10.0)
        assert res.heat_j > 0.0

    def test_rest_preserves_charge(self):
        cell = Cell(NCA, capacity_mah=100.0)
        cell.draw_power(1.0, 20.0)
        before = cell.charge_amp_s
        cell.rest(60.0)
        assert cell.charge_amp_s == pytest.approx(before, rel=1e-9)

    def test_recovery_effect(self):
        """Resting refills the available well from the bound well."""
        cell = Cell(NCA, capacity_mah=1000.0)
        # Hammer the available well without fully draining the cell.
        while cell.available_amp_s > 100.0:
            cell.draw_power(6.0, 10.0)
        drained = cell.available_amp_s
        assert cell.charge_amp_s > 500.0  # bound well still holds charge
        cell.rest(3600.0)
        assert cell.available_amp_s > drained + 50.0  # recovered

    def test_rate_capacity_effect(self):
        """Drawing hard delivers less total energy than drawing softly."""
        soft = Cell(NCA, capacity_mah=1000.0)
        hard = Cell(NCA, capacity_mah=1000.0)
        soft_energy = 0.0
        while not soft.depleted:
            soft_energy += soft.draw_power(0.3, 30.0).energy_j
        hard_energy = 0.0
        while not hard.depleted:
            hard_energy += hard.draw_power(6.0, 30.0).energy_j
        assert hard_energy < soft_energy * 0.8

    def test_little_better_at_bursts(self):
        """LMO delivers more of its charge under bursty draw than NCA."""
        def burst_energy(chem):
            cell = Cell(chem, capacity_mah=1000.0)
            total = 0.0
            steps = 0
            while not cell.depleted and steps < 20_000:
                total += cell.draw_power(6.0, 5.0).energy_j
                cell.rest(5.0)
                steps += 1
            return total

        assert burst_energy(LMO) > burst_energy(NCA) * 1.1

    def test_big_degrades_faster_with_rate(self):
        """NCA's delivered energy falls off with draw rate much faster
        than LMO's -- the property the big/LITTLE split exploits."""
        def delivered(chem, power):
            cell = Cell(chem, capacity_mah=1000.0)
            total = 0.0
            steps = 0
            while not cell.depleted and steps < 20_000:
                total += cell.draw_power(power, 30.0).energy_j
                steps += 1
            return total

        nca_ratio = delivered(NCA, 6.0) / delivered(NCA, 0.3)
        lmo_ratio = delivered(LMO, 6.0) / delivered(LMO, 0.3)
        assert nca_ratio < lmo_ratio * 0.8

    def test_depleted_cell_serves_nothing(self):
        cell = Cell(NCA, capacity_mah=50.0)
        steps = 0
        while not cell.depleted and steps < 100_000:
            cell.draw_power(3.0, 10.0)
            steps += 1
        assert cell.depleted
        res = cell.draw_power(1.0, 1.0)
        assert res.energy_j == 0.0
        assert res.shortfall

    def test_invalid_draws_rejected(self):
        cell = Cell(NCA)
        with pytest.raises(ValueError):
            cell.draw_power(-1.0, 1.0)
        with pytest.raises(ValueError):
            cell.draw_power(1.0, 0.0)

    def test_clone_is_independent(self):
        cell = Cell(NCA, capacity_mah=100.0)
        cell.draw_power(1.0, 10.0)
        copy = cell.clone()
        assert copy.charge_amp_s == pytest.approx(cell.charge_amp_s)
        copy.draw_power(1.0, 100.0)
        assert copy.charge_amp_s < cell.charge_amp_s

    def test_transient_voltage_relaxes(self):
        cell = Cell(NCA)
        cell.draw_power(3.0, 5.0)
        sag = cell._v_transient
        assert sag > 0.0
        cell.rest(600.0)
        assert cell._v_transient < sag * 0.1
