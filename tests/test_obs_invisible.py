"""Differential harness: observability must be invisible.

Three invariants, each proven differentially rather than asserted:

1. **Byte-identity.**  Over a seeded grid (CAPMAN/Dual x Nexus/Honor x
   faults on/off x journalled on/off) the :class:`DischargeResult` is
   byte-identical -- ``pickle.dumps(invisible_view(r))`` -- whether obs
   is disabled, enabled with the null exporter, or enabled with a JSONL
   exporter.
2. **Zero calls when off.**  With obs disabled the step loop performs
   zero registry/tracer calls (counting stubs) and zero allocations
   attributable to ``repro.obs`` (tracemalloc).
3. **Conservation across execution modes.**  A journalled parallel
   sweep merges its workers' telemetry into one blob whose step totals
   equal the serial run's and the results' own step counts.
"""

from __future__ import annotations

import os
import pickle
import tracemalloc

import pytest

from repro import obs
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import HONOR, NEXUS
from repro.durability.snapshot import Checkpointer
from repro.faults.schedule import FaultSchedule, FaultTrigger, TecFault
from repro.faults.supervisor import SupervisedPolicy
from repro.sim.discharge import run_discharge_cycle
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

CONTROL_DT = 2.0
MAX_DURATION_S = 300.0
_TRACE = record_trace(VideoWorkload(seed=7), duration_s=120.0)

POLICIES = {
    "capman": lambda: CapmanPolicy(capacity_mah=40.0),
    "dual": lambda: DualPolicy(capacity_mah=40.0),
}
PROFILES = {"nexus": NEXUS, "honor": HONOR}


def _fault_schedule() -> FaultSchedule:
    return FaultSchedule(
        faults=(TecFault(trigger=FaultTrigger(start_s=30.0), stuck_off=True),),
        seed=1, name="tec-dead")


def _run_case(policy_key: str, profile_key: str, faulted: bool,
              journalled: bool, tmp_path, tag: str):
    """One grid cell, freshly built (policies are stateful)."""
    policy = POLICIES[policy_key]()
    if faulted:
        policy = SupervisedPolicy(inner=policy, schedule=_fault_schedule())
    checkpointer = None
    if journalled:
        checkpointer = Checkpointer(tmp_path / f"{tag}.ckpt", every_steps=25)
    return run_discharge_cycle(
        policy, _TRACE, profile=PROFILES[profile_key],
        control_dt=CONTROL_DT, max_duration_s=MAX_DURATION_S,
        checkpointer=checkpointer)


def _frozen(result) -> bytes:
    return pickle.dumps(obs.invisible_view(result), protocol=4)


GRID = [
    pytest.param(policy, profile, faulted, journalled,
                 id=f"{policy}-{profile}"
                    f"-{'faults' if faulted else 'clean'}"
                    f"-{'journal' if journalled else 'plain'}")
    for policy in POLICIES
    for profile in PROFILES
    for faulted in (False, True)
    for journalled in (False, True)
]


@pytest.mark.parametrize("policy,profile,faulted,journalled", GRID)
def test_results_byte_identical_across_obs_modes(
        policy, profile, faulted, journalled, tmp_path):
    obs.disable()
    baseline = _run_case(policy, profile, faulted, journalled, tmp_path, "off")
    assert baseline.telemetry is None

    obs.configure(enabled=True)  # null exporter
    quiet = _run_case(policy, profile, faulted, journalled, tmp_path, "null")

    obs.configure(enabled=True,
                  exporter=obs.JsonlExporter(str(tmp_path / "obs.jsonl")))
    loud = _run_case(policy, profile, faulted, journalled, tmp_path, "jsonl")
    obs.disable()

    frozen = _frozen(baseline)
    assert _frozen(quiet) == frozen
    assert _frozen(loud) == frozen

    # The enabled runs did observe: telemetry is present and aligned
    # with the result's own step accounting.
    for observed in (quiet, loud):
        assert observed.telemetry is not None
        assert observed.telemetry.counter("sim.steps") == observed.step_count
        assert observed.telemetry.histograms["sim.step_wall_s"]["count"] \
            == observed.step_count
        assert "discharge" in observed.telemetry.spans

    # The JSONL exporter actually wrote records.
    assert (tmp_path / "obs.jsonl").stat().st_size > 0


# ----------------------------------------------------------------------
# Zero-cost-when-off proofs
# ----------------------------------------------------------------------
def test_disabled_run_makes_zero_registry_or_tracer_calls(
        monkeypatch, tmp_path):
    """Counting stubs on every instrument-creation entry point: the
    disabled path must never reach the registry or the tracer."""
    calls = []

    def _counting(cls, method):
        original = getattr(cls, method)

        def stub(self, *args, **kwargs):
            calls.append(f"{cls.__name__}.{method}")
            return original(self, *args, **kwargs)

        return stub

    for cls, method in ((obs.MetricsRegistry, "counter"),
                        (obs.MetricsRegistry, "gauge"),
                        (obs.MetricsRegistry, "histogram"),
                        (obs.Tracer, "start"),
                        (obs.Tracer, "span")):
        monkeypatch.setattr(cls, method, _counting(cls, method))

    obs.disable()
    _run_case("capman", "nexus", True, True, tmp_path, "stub")
    assert calls == []

    # Sanity: the stubs do fire once obs is enabled.
    obs.configure(enabled=True)
    _run_case("capman", "nexus", False, False, tmp_path, "stub-on")
    obs.disable()
    assert calls != []


def test_disabled_run_allocates_nothing_in_obs(tmp_path):
    """tracemalloc, filtered to ``repro/obs`` source files: the
    disabled step loop must not allocate a single block there."""
    obs_dir = os.path.dirname(obs.__file__)
    obs.disable()
    _run_case("dual", "nexus", False, False, tmp_path, "warm")  # warm caches

    tracemalloc.start()
    try:
        _run_case("dual", "nexus", False, False, tmp_path, "cold")
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()

    stats = snapshot.filter_traces(
        [tracemalloc.Filter(True, os.path.join(obs_dir, "*"))]
    ).statistics("filename")
    assert stats == [], [f"{s.traceback}: {s.size}B" for s in stats]


# ----------------------------------------------------------------------
# Serial / parallel / journalled conservation
# ----------------------------------------------------------------------
def _sweep_spec() -> SweepSpec:
    return SweepSpec(
        policies={key: build() for key, build in POLICIES.items()},
        traces={"video": _TRACE},
        profiles={"Nexus": NEXUS},
        control_dts=(CONTROL_DT,),
        max_duration_s=MAX_DURATION_S,
    )


def test_journalled_parallel_sweep_merges_one_equal_blob(tmp_path):
    obs.disable()
    plain = ScenarioRunner(workers=1).run(_sweep_spec())

    obs.configure(enabled=True)
    serial = ScenarioRunner(workers=1).run(_sweep_spec())

    obs.configure(enabled=True)
    parallel = ScenarioRunner(
        workers=2, journal=tmp_path / "sweep.journal",
        checkpoint_every_steps=50).run(_sweep_spec())
    obs.disable()

    # Simulated outcomes are identical across all three execution modes.
    for observed in (serial, parallel):
        assert len(observed.results) == len(plain.results)
        for mine, theirs in zip(plain.results, observed.results):
            assert _frozen(mine) == _frozen(theirs)

    # One merged blob per run, conserving per-cell step counts exactly.
    steps = sum(r.step_count for r in plain.results)
    assert steps > 0
    for observed in (serial, parallel):
        assert observed.telemetry is not None
        assert observed.telemetry.kind == "sweep"
        assert observed.telemetry.counter("sim.steps") == steps
        assert observed.telemetry.counter("sweep.steps_total") == steps
        assert observed.telemetry.histograms["sim.step_wall_s"]["count"] \
            == steps

    # The blob rode out-of-band: the results themselves stayed equal.
    assert plain.telemetry is None
