"""Tests for the Earth Mover's Distance, including hypothesis checks
against the 1-D closed form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emd import emd, emd_1d, emd_dicts


def _line_ground(positions):
    return [[abs(a - b) for b in positions] for a in positions]


class TestEmd:
    def test_identical_distributions(self):
        assert emd([0.5, 0.5], [0.5, 0.5], _line_ground([0.0, 1.0])) == 0.0

    def test_point_mass_move(self):
        assert emd([1.0, 0.0], [0.0, 1.0], _line_ground([0.0, 2.0])) == pytest.approx(2.0)

    def test_normalises_inputs(self):
        # Unnormalised masses with the same shape are still distance 0.
        assert emd([2.0, 2.0], [5.0, 5.0], _line_ground([0.0, 1.0])) == pytest.approx(0.0)

    def test_rectangular_supports(self):
        # One point vs two points on a line: mass splits at distance 1/2.
        assert emd([1.0], [0.5, 0.5], [[0.0, 1.0]]) == pytest.approx(0.5)

    def test_bad_ground_shape_rejected(self):
        with pytest.raises(ValueError):
            emd([1.0], [0.5, 0.5], [[0.0]])

    def test_equal_values_over_disjoint_supports_not_shortcut(self):
        # p and q have identical masses but live on different points;
        # the distance must come from the ground matrix, not a fast path.
        assert emd([0.5, 0.5], [0.5, 0.5],
                   [[2.0, 2.0], [2.0, 2.0]]) == pytest.approx(2.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            emd([0.0, 0.0], [0.5, 0.5], _line_ground([0.0, 1.0]))

    def test_symmetry(self):
        p = [0.2, 0.3, 0.5]
        q = [0.6, 0.1, 0.3]
        g = _line_ground([0.0, 1.0, 2.5])
        assert emd(p, q, g) == pytest.approx(emd(q, p, g))

    def test_triangle_inequality_on_line(self):
        g = _line_ground([0.0, 1.0, 2.0])
        p = [1.0, 0.0, 0.0]
        q = [0.0, 1.0, 0.0]
        r = [0.0, 0.0, 1.0]
        assert emd(p, r, g) <= emd(p, q, g) + emd(q, r, g) + 1e-9


class TestEmd1d:
    def test_matches_flow_solver_simple(self):
        pos = [0.0, 1.0, 3.0]
        p = [0.5, 0.5, 0.0]
        q = [0.0, 0.5, 0.5]
        assert emd_1d(p, q, pos) == pytest.approx(emd(p, q, _line_ground(pos)))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=5),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=5),
    )
    def test_matches_flow_solver_random(self, p_raw, q_raw):
        n = min(len(p_raw), len(q_raw))
        p, q = p_raw[:n], q_raw[:n]
        positions = [float(i) * 0.7 for i in range(n)]
        expected = emd_1d(p, q, positions)
        actual = emd(p, q, _line_ground(positions))
        assert actual == pytest.approx(expected, abs=1e-6)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            emd_1d([1.0], [0.5, 0.5], [0.0, 1.0])


class TestEmdDicts:
    def test_sparse_supports(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"b": 0.3, "c": 0.7}
        dist = lambda x, y: 0.0 if x == y else 1.0
        # 0.7 mass must move from a to c at distance 1.
        assert emd_dicts(p, q, dist) == pytest.approx(0.7)

    def test_equal_distributions(self):
        p = {"x": 0.4, "y": 0.6}
        dist = lambda a, b: 0.0 if a == b else 1.0
        assert emd_dicts(p, dict(p), dist) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            emd_dicts({}, {"a": 1.0}, lambda a, b: 1.0)

    def test_bounded_by_max_distance(self):
        rng = np.random.default_rng(0)
        keys = list("abcde")
        p = {k: float(v) for k, v in zip(keys, rng.dirichlet(np.ones(5)))}
        q = {k: float(v) for k, v in zip(keys, rng.dirichlet(np.ones(5)))}
        dist = lambda a, b: 0.0 if a == b else 0.8
        assert 0.0 <= emd_dicts(p, q, dist) <= 0.8 + 1e-9
