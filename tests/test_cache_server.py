"""Tests for the networked sweep cache and for FileLock/SweepCache
under real multi-process contention and torn writes."""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.durability.lock import FileLock
from repro.sim.cache_server import CacheServer, NetworkSweepCache
from repro.sim.retry import RetryPolicy
from repro.sim.sweep import SweepCache


@pytest.fixture()
def server(tmp_path):
    srv = CacheServer(tmp_path / "served")
    srv.start()
    yield srv
    srv.stop()


def _client(server, tmp_path, **kwargs):
    kwargs.setdefault("rpc_timeout_s", 1.0)
    kwargs.setdefault("probe_interval_s", 0.05)
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    return NetworkSweepCache(server.address, tmp_path / "fallback", **kwargs)


class TestNetworkCache:
    def test_round_trip_and_cross_client_hits(self, server, tmp_path):
        writer = _client(server, tmp_path / "a")
        writer.put("key1", {"value": 42})
        reader = _client(server, tmp_path / "b")  # fresh fallback dir
        assert reader.get("key1") == {"value": 42}
        assert reader.get("missing") is None
        assert reader.stats.remote_hits == 1
        assert reader.stats.remote_misses == 1
        assert writer.stats.remote_puts == 1

    def test_is_a_sweep_cache(self, server, tmp_path):
        # Drop-in for any cache= argument: the isinstance gate in
        # ScenarioRunner must accept it.
        assert isinstance(_client(server, tmp_path), SweepCache)

    def test_partition_falls_back_and_reconciles_on_heal(
            self, server, tmp_path):
        cache = _client(server, tmp_path)
        server.partition()
        cache.put("k", "computed-during-partition")
        assert cache.partitioned
        assert cache.get("k") == "computed-during-partition"  # local
        assert cache.stats.fallback_puts == 1
        assert cache.stats.fallback_gets == 1
        server.heal()
        time.sleep(cache.probe_interval_s * 1.5)
        assert cache.flush()
        assert not cache.partitioned
        assert cache.stats.heals == 1
        assert cache.stats.reconciled_puts == 1
        # The reconciled entry now serves any other client remotely.
        other = _client(server, tmp_path / "other")
        assert other.get("k") == "computed-during-partition"

    def test_torn_reply_is_treated_as_partition_not_data(
            self, server, tmp_path):
        cache = _client(server, tmp_path)
        cache.put("k", [1, 2, 3])
        server.inject_torn_replies(1)
        # The torn frame fails its checksum; the client must fall back
        # (and still answer correctly from its local copy), not crash
        # or return garbage.
        assert cache.get("k") == [1, 2, 3]
        assert cache.stats.partitions_detected == 1
        assert server.stats.torn_replies == 1
        time.sleep(cache.probe_interval_s * 1.5)
        assert cache.flush()  # server is fine again: heals

    def test_server_never_serves_a_corrupt_entry(self, server, tmp_path):
        cache = _client(server, tmp_path)
        cache.put("k", "good")
        # Corrupt the entry at rest on the server (torn write survived
        # a crash, cosmic ray, ...): the next get must be a miss --
        # never an exception, never wrong bytes.
        entry = server.store._path("k")
        entry.write_bytes(b"\x80\x04 definitely not a pickle")
        fresh = _client(server, tmp_path / "fresh")
        assert fresh.get("k") is None
        assert not entry.exists()  # quarantined on read

    def test_unreachable_server_degrades_immediately(self, tmp_path):
        # A dead address: every op completes locally, no exception.
        dead = NetworkSweepCache(("127.0.0.1", 1), tmp_path / "f",
                                 rpc_timeout_s=0.2, probe_interval_s=0.05,
                                 retry=RetryPolicy(max_attempts=1))
        dead.put("k", "v")
        assert dead.get("k") == "v"
        assert dead.partitioned
        assert not dead.flush()  # still down: buffer is kept
        assert dead.stats.partitions_detected >= 1


class TestCacheBreaker:
    def test_threshold_tolerates_isolated_failures(self, server, tmp_path):
        cache = _client(server, tmp_path, failure_threshold=2)
        cache.put("k", "v")
        server.inject_torn_replies(1)
        assert cache.get("k") == "v"  # one failure: local fallback...
        assert not cache.partitioned  # ...but no trip yet
        assert cache.stats.partitions_detected == 0
        assert cache.get("k") == "v"  # server is fine: streak reset
        assert cache.stats.remote_hits == 1
        server.inject_torn_replies(2)
        assert cache.get("k") == "v"
        assert cache.get("k") == "v"
        assert cache.partitioned  # two consecutive failures trip it
        assert cache.stats.partitions_detected == 1

    def test_open_circuit_short_circuits_instead_of_timing_out(
            self, tmp_path):
        dead = NetworkSweepCache(("127.0.0.1", 1), tmp_path / "f",
                                 rpc_timeout_s=0.2, probe_interval_s=60.0,
                                 retry=RetryPolicy(max_attempts=1))
        dead.put("k", "v")  # trips the breaker
        assert dead.partitioned
        started = time.time()
        for i in range(20):
            dead.put(f"k{i}", i)
            assert dead.get(f"k{i}") == i
        # 40 ops against a dead server, all served locally without a
        # single connection attempt: far faster than even one timeout.
        assert time.time() - started < dead.rpc_timeout_s
        assert dead.stats.breaker_short_circuits >= 40
        assert dead.stats.partitions_detected == 1  # still one outage

    def test_half_open_probe_heals_and_reconciles(self, server, tmp_path):
        cache = _client(server, tmp_path)
        server.partition()
        cache.put("k", "during-outage")
        assert cache.partitioned
        server.heal()
        time.sleep(cache.probe_interval_s * 1.5)
        # The next op is admitted as the half-open probe, which pings,
        # replays the buffered put, and closes the circuit -- then the
        # op itself runs remotely.
        assert cache.get("k") == "during-outage"
        assert not cache.partitioned
        assert cache.stats.heals == 1
        assert cache.stats.reconciled_puts == 1
        assert cache.breaker.stats.probes >= 1

    def test_failed_probe_rearms_the_window(self, tmp_path):
        dead = NetworkSweepCache(("127.0.0.1", 1), tmp_path / "f",
                                 rpc_timeout_s=0.2, probe_interval_s=0.1,
                                 retry=RetryPolicy(max_attempts=1))
        dead.put("k", "v")
        time.sleep(0.15)
        assert dead.get("k") == "v"  # admitted as a probe; server dead
        assert dead.partitioned  # probe failed: open again
        assert dead.breaker.stats.probes >= 1
        assert dead.stats.heals == 0


# ----------------------------------------------------------------------
# Multi-process contention (satellite: FileLock / SweepCache)
# ----------------------------------------------------------------------
def _hammer_put(directory, key, worker_id, rounds):
    cache = SweepCache(directory)
    for i in range(rounds):
        cache.put(key, {"worker": worker_id, "round": i})


def _die_holding_lock(lock_path, held_event):
    lock = FileLock(lock_path)
    lock.acquire()
    held_event.set()
    os.kill(os.getpid(), signal.SIGKILL)  # die without releasing


class TestCacheContention:
    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path):
        directory = tmp_path / "shared"
        key = "contested"
        workers = [
            multiprocessing.Process(target=_hammer_put,
                                    args=(str(directory), key, w, 25))
            for w in range(4)
        ]
        for proc in workers:
            proc.start()
        cache = SweepCache(directory)
        observed = 0
        corrupt = 0
        while any(proc.is_alive() for proc in workers):
            value = cache.get(key)
            if value is not None:
                observed += 1
                if not (isinstance(value, dict) and "worker" in value):
                    corrupt += 1
        for proc in workers:
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
        assert corrupt == 0
        assert observed > 0  # reads genuinely overlapped the writes
        final = cache.get(key)
        assert isinstance(final, dict) and final["round"] == 24

    def test_torn_write_is_a_miss_not_poison(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        cache.put("k", "original")
        good_bytes = cache._path("k").read_bytes()
        # Simulate a torn write reaching the final path: truncate the
        # entry mid-pickle.
        cache._path("k").write_bytes(good_bytes[: len(good_bytes) // 2])
        assert cache.get("k") is None  # miss, not an exception
        assert not cache._path("k").exists()  # torn entry quarantined
        cache.put("k", "recomputed")
        assert cache.get("k") == "recomputed"

    def test_lock_holder_death_releases_the_lock(self, tmp_path):
        lock_path = tmp_path / "c" / ".lock"
        held = multiprocessing.Event()
        child = multiprocessing.Process(target=_die_holding_lock,
                                        args=(str(lock_path), held))
        child.start()
        assert held.wait(timeout=10.0)
        child.join(timeout=10.0)
        assert child.exitcode == -signal.SIGKILL
        # The kernel released the dead holder's flock: acquiring now
        # must succeed promptly instead of wedging the cache forever.
        survivor = FileLock(lock_path)
        survivor.acquire()
        assert survivor.held
        survivor.release()
        # And the cache built on it writes normally.
        cache = SweepCache(tmp_path / "c")
        cache.put("k", "after-crash")
        assert cache.get("k") == "after-crash"
