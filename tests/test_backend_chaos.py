"""The flagship robustness proof: a distributed, journalled, cache-
backed sweep survives SIGKILLed workers, a partitioned cache server
and duplicate-delivered leases with a byte-identical result, zero
lost cells and zero double-committed journal records."""

import pickle

import pytest

from repro.sim.cache_server import CacheServer, NetworkSweepCache
from repro.sim.chaos import (BackendChaos, journal_commit_counts,
                             run_backend_chaos)
from repro.sim.distributed import DistributedExecutor
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.testing import SlowDualPolicy
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


def _slow_spec(trace, delay_s=0.3, mahs=(30, 40, 50, 60, 70, 80)):
    # The delay burns wall time only (physics untouched), keeping
    # cells in flight long enough for every fault to land mid-cell.
    return SweepSpec(
        policies={f"Dual{m}": SlowDualPolicy(capacity_mah=float(m),
                                             delay_s=delay_s)
                  for m in mahs},
        traces={"Video": trace},
        max_duration_s=900.0,
    )


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


def test_full_chaos_run_is_byte_identical_and_commits_once(
        trace, tmp_path):
    """Kill >= 2 workers mid-cell AND partition the cache server AND
    duplicate-deliver leases, all in one journalled sweep."""
    spec = _slow_spec(trace)
    serial = ScenarioRunner(workers=1).run(spec)

    server = CacheServer(tmp_path / "served")
    server.start()
    executor = DistributedExecutor(lease_timeout_s=1.0, spawn_workers=3,
                                   workers_grace_s=5.0)
    journal = tmp_path / "run.journal"
    runner = ScenarioRunner(
        executor=executor, journal=journal,
        cache=NetworkSweepCache(server.address, tmp_path / "fallback",
                                rpc_timeout_s=0.5, probe_interval_s=0.1))
    chaos = BackendChaos(
        kill_workers=2, kill_after_s=0.2, kill_interval_s=0.4,
        partition_cache_after_s=0.4, heal_cache_after_s=1.5,
        duplicate_leases=2)
    try:
        report = run_backend_chaos(spec, runner, chaos,
                                   cache_server=server)
    finally:
        server.stop()

    # The faults genuinely happened: both kills landed, the cache was
    # partitioned and healed, and at least one lease died mid-cell.
    # (An expiry recovers via a backoff retry *or* via a still-running
    # duplicate/stolen lease, so no single recovery counter is
    # guaranteed >= 1 here; the deterministic retry path is pinned in
    # test_distributed.py instead.)
    assert len(report.killed_pids) == 2
    assert report.cache_partitioned and report.cache_healed
    assert report.dist_stats["lease_expiries"] >= 1
    # ...and the contract held anyway.
    assert report.lost_cells == 0
    assert report.double_commits == 0
    assert _cell_bytes(report.result) == _cell_bytes(serial)
    counts = journal_commit_counts(journal)
    assert sorted(counts) == [cell.index for cell in spec.expand()]
    assert set(counts.values()) == {1}


def test_duplicate_leases_alone_never_double_commit(trace, tmp_path):
    """Every lease handed out twice: commits stay exactly-once and the
    result stays byte-identical (idempotent-commit check in isolation)."""
    spec = _slow_spec(trace, delay_s=0.1, mahs=(30, 40, 50))
    serial = ScenarioRunner(workers=1).run(spec)
    executor = DistributedExecutor(lease_timeout_s=5.0, spawn_workers=2,
                                   workers_grace_s=5.0)
    executor.inject_duplicate_leases(len(spec))
    journal = tmp_path / "dup.journal"
    result = ScenarioRunner(executor=executor, journal=journal).run(spec)
    assert _cell_bytes(result) == _cell_bytes(serial)
    counts = journal_commit_counts(journal)
    assert set(counts.values()) == {1}
    assert executor.stats.duplicate_results >= 1  # a duplicate really ran


def test_all_workers_dead_degrades_to_local(trace, tmp_path):
    """SIGKILL every worker: the sweep must finish locally, complete
    and byte-identical, instead of hanging on an empty cluster."""
    spec = _slow_spec(trace, delay_s=0.2, mahs=(30, 40, 50))
    serial = ScenarioRunner(workers=1).run(spec)
    executor = DistributedExecutor(lease_timeout_s=0.8, spawn_workers=2,
                                   workers_grace_s=5.0)
    runner = ScenarioRunner(executor=executor,
                            journal=tmp_path / "dead.journal")
    chaos = BackendChaos(kill_workers=2, kill_after_s=0.2,
                         kill_interval_s=0.1)
    report = run_backend_chaos(spec, runner, chaos)
    assert len(report.killed_pids) == 2
    assert report.lost_cells == 0
    assert report.double_commits == 0
    assert _cell_bytes(report.result) == _cell_bytes(serial)
    # At least part of the grid was rescued by the local fallback.
    assert report.dist_stats["local_fallback_cells"] >= 1
