"""The flagship robustness proof: a distributed, journalled, cache-
backed sweep survives SIGKILLed workers, a partitioned cache server,
duplicate-delivered leases -- and now a SIGKILLed *coordinator* --
with a byte-identical result, zero lost cells and zero
double-committed journal records."""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.sim.cache_server import CacheServer, NetworkSweepCache
from repro.sim.chaos import (BackendChaos, journal_commit_counts,
                             journal_lease_grants, run_backend_chaos)
from repro.sim.distributed import DistributedExecutor
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.testing import SlowDualPolicy
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

import dist_failover_helper


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


def _slow_spec(trace, delay_s=0.3, mahs=(30, 40, 50, 60, 70, 80)):
    # The delay burns wall time only (physics untouched), keeping
    # cells in flight long enough for every fault to land mid-cell.
    return SweepSpec(
        policies={f"Dual{m}": SlowDualPolicy(capacity_mah=float(m),
                                             delay_s=delay_s)
                  for m in mahs},
        traces={"Video": trace},
        max_duration_s=900.0,
    )


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


def test_full_chaos_run_is_byte_identical_and_commits_once(
        trace, tmp_path):
    """Kill >= 2 workers mid-cell AND partition the cache server AND
    duplicate-deliver leases, all in one journalled sweep."""
    spec = _slow_spec(trace)
    serial = ScenarioRunner(workers=1).run(spec)

    server = CacheServer(tmp_path / "served")
    server.start()
    executor = DistributedExecutor(lease_timeout_s=1.0, spawn_workers=3,
                                   workers_grace_s=5.0)
    journal = tmp_path / "run.journal"
    runner = ScenarioRunner(
        executor=executor, journal=journal,
        cache=NetworkSweepCache(server.address, tmp_path / "fallback",
                                rpc_timeout_s=0.5, probe_interval_s=0.1))
    chaos = BackendChaos(
        kill_workers=2, kill_after_s=0.2, kill_interval_s=0.4,
        partition_cache_after_s=0.4, heal_cache_after_s=1.5,
        duplicate_leases=2)
    try:
        report = run_backend_chaos(spec, runner, chaos,
                                   cache_server=server)
    finally:
        server.stop()

    # The faults genuinely happened: both kills landed, the cache was
    # partitioned and healed, and at least one lease died mid-cell.
    # (An expiry recovers via a backoff retry *or* via a still-running
    # duplicate/stolen lease, so no single recovery counter is
    # guaranteed >= 1 here; the deterministic retry path is pinned in
    # test_distributed.py instead.)
    assert len(report.killed_pids) == 2
    assert report.cache_partitioned and report.cache_healed
    assert report.dist_stats["lease_expiries"] >= 1
    # ...and the contract held anyway.
    assert report.lost_cells == 0
    assert report.double_commits == 0
    assert _cell_bytes(report.result) == _cell_bytes(serial)
    counts = journal_commit_counts(journal)
    assert sorted(counts) == [cell.index for cell in spec.expand()]
    assert set(counts.values()) == {1}


def test_duplicate_leases_alone_never_double_commit(trace, tmp_path):
    """Every lease handed out twice: commits stay exactly-once and the
    result stays byte-identical (idempotent-commit check in isolation)."""
    spec = _slow_spec(trace, delay_s=0.1, mahs=(30, 40, 50))
    serial = ScenarioRunner(workers=1).run(spec)
    executor = DistributedExecutor(lease_timeout_s=5.0, spawn_workers=2,
                                   workers_grace_s=5.0)
    executor.inject_duplicate_leases(len(spec))
    journal = tmp_path / "dup.journal"
    result = ScenarioRunner(executor=executor, journal=journal).run(spec)
    assert _cell_bytes(result) == _cell_bytes(serial)
    counts = journal_commit_counts(journal)
    assert set(counts.values()) == {1}
    assert executor.stats.duplicate_results >= 1  # a duplicate really ran


# ----------------------------------------------------------------------
# Coordinator SIGKILL + restart (the PR 9 tentpole proof)
# ----------------------------------------------------------------------
_SRC = str(Path(repro.__file__).resolve().parents[1])
_TESTS = str(Path(__file__).resolve().parent)


def _failover_env() -> dict:
    env = dict(os.environ)
    extra = os.pathsep.join([_SRC, _TESTS])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{current}" if current else extra
    # The drill runs fully authenticated: the coordinator (both
    # incarnations) and every worker hold the shared secret.
    env["CAPMAN_DIST_SECRET"] = "failover-drill-secret"
    return env


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_incarnation(run_dir: Path, port: int, spawn_workers: int,
                       env: dict, tag: str) -> subprocess.Popen:
    code = ("import sys, dist_failover_helper; "
            "dist_failover_helper.main(sys.argv[1], int(sys.argv[2]), "
            "int(sys.argv[3]))")
    run_dir.mkdir(parents=True, exist_ok=True)
    log = open(run_dir / f"{tag}.log", "wb")
    try:
        return subprocess.Popen(
            [sys.executable, "-c", code, str(run_dir), str(port),
             str(spawn_workers)],
            env=env, stdout=log, stderr=subprocess.STDOUT)
    finally:
        log.close()


def _counts(journal: Path):
    try:
        return journal_commit_counts(journal)
    except Exception:
        return {}


def _grants(journal: Path):
    try:
        return journal_lease_grants(journal)
    except Exception:
        return {}


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
        return True
    except (ProcessLookupError, PermissionError):
        return False


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="POSIX only")
def test_coordinator_sigkill_restart_is_exactly_once(tmp_path):
    """SIGKILL the coordinator (runner process) mid-sweep while its
    workers live on; restart it from the journal on the same port.
    Committed cells must replay with zero recomputation, orphaned
    leases must be reclaimed, the surviving fleet must re-attach, and
    the merged result must be byte-identical to a serial run."""
    spec = dist_failover_helper.build_spec()
    total = len(spec)
    serial = ScenarioRunner(workers=1).run(spec)
    run_dir = tmp_path / "failover"
    journal = run_dir / "run.journal"
    pids_file = run_dir / "worker_pids.json"
    port = _free_port()
    env = _failover_env()
    worker_pids = []
    first = second = None
    try:
        first = _spawn_incarnation(run_dir, port, spawn_workers=2,
                                   env=env, tag="first")
        # Wait for the kill window: some cells durably committed, some
        # dispatch state in flight (journalled grants without commits),
        # and the worker fleet up and published.
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            assert first.poll() is None, \
                "first incarnation finished before the kill window"
            commits = _counts(journal)
            grants = _grants(journal)
            in_flight = [i for i in grants if i not in commits]
            if (pids_file.exists() and 2 <= len(commits) < total
                    and in_flight):
                break
            time.sleep(0.01)
        else:
            pytest.fail("kill window never opened")
        worker_pids = json.loads(pids_file.read_text())
        assert len(worker_pids) == 2
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30.0)

        # The authoritative pre-restart journal state (nothing can
        # append to it now: the coordinator is dead).
        commits_at_kill = _counts(journal)
        grants_at_kill = _grants(journal)
        orphaned = {index: count for index, count in grants_at_kill.items()
                    if index not in commits_at_kill}
        assert 2 <= len(commits_at_kill) < total
        assert orphaned, "no in-flight dispatch state survived to recover"
        # The workers outlived their coordinator.
        surviving = [pid for pid in worker_pids if _alive(pid)]
        assert surviving, "no worker survived the coordinator SIGKILL"

        second = _spawn_incarnation(run_dir, port, spawn_workers=0,
                                    env=env, tag="second")
        assert second.wait(timeout=180.0) == 0

        # Exactly-once, end to end: every cell committed exactly once
        # across both incarnations -- zero lost, zero doubled.
        counts = journal_commit_counts(journal)
        assert sorted(counts) == [cell.index for cell in spec.expand()]
        assert set(counts.values()) == {1}
        # Zero recomputation: every pre-kill commit was replayed from
        # the journal, and only the remainder was executed.
        stats = json.loads((run_dir / "stats.json").read_text())
        assert stats["cells_resumed"] == len(commits_at_kill)
        assert stats["cells_computed"] == total - len(commits_at_kill)
        assert stats["cells_failed"] == 0
        # The orphaned leases were recovered through the retry policy...
        assert stats["dist_recovered_leases"] == sum(orphaned.values())
        # ...and the surviving fleet re-attached to the restart.
        assert stats["dist_worker_attaches"] >= len(surviving)
        assert stats["dist_remote_cells"] >= 1
        # Byte-identity across the crash: the failover run's per-cell
        # pickles equal the uninterrupted serial run's.
        final_bytes = pickle.loads((run_dir / "result.pkl").read_bytes())
        assert final_bytes == _cell_bytes(serial)
    finally:
        for proc in (first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
        for pid in worker_pids:
            if _alive(pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass


def test_all_workers_dead_degrades_to_local(trace, tmp_path):
    """SIGKILL every worker: the sweep must finish locally, complete
    and byte-identical, instead of hanging on an empty cluster."""
    spec = _slow_spec(trace, delay_s=0.2, mahs=(30, 40, 50))
    serial = ScenarioRunner(workers=1).run(spec)
    executor = DistributedExecutor(lease_timeout_s=0.8, spawn_workers=2,
                                   workers_grace_s=5.0)
    runner = ScenarioRunner(executor=executor,
                            journal=tmp_path / "dead.journal")
    chaos = BackendChaos(kill_workers=2, kill_after_s=0.2,
                         kill_interval_s=0.1)
    report = run_backend_chaos(spec, runner, chaos)
    assert len(report.killed_pids) == 2
    assert report.lost_cells == 0
    assert report.double_commits == 0
    assert _cell_bytes(report.result) == _cell_bytes(serial)
    # At least part of the grid was rescued by the local fallback.
    assert report.dist_stats["local_fallback_cells"] >= 1
