"""CAPMAN-specific fleet machinery: trajectory dedupe, sharding, counters.

``tests/test_fleet_vs_scalar.py`` proves the vectorised CAPMAN driver
bit-equal to the scalar oracle; this module pins down the *mechanisms*
behind that speed -- rows with matching (trace content, profile,
learning parameters) must share one learned trajectory and still equal
their independent scalar runs, ``run_sharded`` must be a pure row
partition, and the work counters must surface through the obs registry
without disturbing any result.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import HONOR, NEXUS
from repro.fleet import DeviceSpec, FleetSpec
from repro.fleet.simulator import SHARDS_ENV
from repro.sim.discharge import run_discharge_cycle
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

CONTROL_DT = 2.0
MAX_DURATION_S = 300.0
#: Surviving capacity: rows run the full window, so every replan
#: boundary in it is reached and the compiled-table path dominates.
CAPACITY_MAH = 400.0
_TRACE = record_trace(VideoWorkload(seed=11), duration_s=120.0)

#: Named CAPMAN variants the properties permute over.  "eager" and
#: "eager-twin" are deliberately identical configurations -- any batch
#: containing both must dedupe them into one trajectory.
VARIANTS = {
    "eager": lambda: CapmanPolicy(capacity_mah=CAPACITY_MAH),
    "eager-twin": lambda: CapmanPolicy(capacity_mah=CAPACITY_MAH),
    "replan": lambda: CapmanPolicy(capacity_mah=CAPACITY_MAH,
                                   min_observations=3, replan_interval=5),
    "small-cell": lambda: CapmanPolicy(capacity_mah=120.0),
}


def _frozen(result) -> bytes:
    return pickle.dumps(
        dataclasses.replace(result, wall_time_s=0.0, telemetry=None),
        protocol=4)


def _device(policy, trace=_TRACE, profile=NEXUS) -> DeviceSpec:
    return DeviceSpec(policy=policy, trace=trace, profile=profile,
                      control_dt=CONTROL_DT, max_duration_s=MAX_DURATION_S)


@functools.lru_cache(maxsize=None)
def _solo_frozen(variant: str) -> bytes:
    return _frozen(run_discharge_cycle(
        VARIANTS[variant](), _TRACE, profile=NEXUS, control_dt=CONTROL_DT,
        max_duration_s=MAX_DURATION_S))


# ----------------------------------------------------------------------
# Trajectory dedupe
# ----------------------------------------------------------------------
def test_identical_rows_share_one_trajectory():
    """N clones pay for one learning replay; every row still equals
    the independent scalar run."""
    n = 4
    sim = FleetSpec([_device(CapmanPolicy(capacity_mah=CAPACITY_MAH))
                     for _ in range(n)]).build()
    results = sim.run()

    assert sim.rows_adapted == 0
    assert sim.rows_vectorised == n
    assert sim.trajectory_dedupe_hits == n - 1
    assert sim.table_compiles >= 1

    solo = _solo_frozen("eager")
    for mine in results:
        assert _frozen(mine) == solo

    # The dedupe saved real solves: a batch of one performs the same
    # number of compiles as the whole deduped batch.
    solo_sim = FleetSpec(
        [_device(CapmanPolicy(capacity_mah=CAPACITY_MAH))]).build()
    solo_sim.run()
    assert sim.table_compiles == solo_sim.table_compiles


def test_content_equal_distinct_traces_dedupe():
    """Dedupe keys on trace *content*, not object identity: two
    separately recorded but identical traces share a trajectory."""
    twin = record_trace(VideoWorkload(seed=11), duration_s=120.0)
    assert twin is not _TRACE
    sim = FleetSpec([
        _device(CapmanPolicy(capacity_mah=CAPACITY_MAH), trace=_TRACE),
        _device(CapmanPolicy(capacity_mah=CAPACITY_MAH), trace=twin),
    ]).build()
    results = sim.run()
    assert sim.trajectory_dedupe_hits == 1
    for mine in results:
        assert _frozen(mine) == _solo_frozen("eager")


def test_distinct_learning_configs_do_not_dedupe():
    """Different capacity (it parameterises the profiler's cost model)
    must split trajectories; results stay exact per row."""
    sim = FleetSpec([
        _device(VARIANTS["eager"]()),
        _device(VARIANTS["small-cell"]()),
    ]).build()
    results = sim.run()
    assert sim.trajectory_dedupe_hits == 0
    assert _frozen(results[0]) == _solo_frozen("eager")
    assert _frozen(results[1]) == _solo_frozen("small-cell")


def test_fallback_threshold_does_not_split_trajectories():
    """``fallback_threshold_w`` shapes only the per-row fallback mask,
    never the learned model, so it must not defeat the dedupe -- while
    each row still matches its own scalar run."""
    hot = CapmanPolicy(capacity_mah=CAPACITY_MAH, fallback_threshold_w=0.1)
    base = CapmanPolicy(capacity_mah=CAPACITY_MAH)
    assert hot.fallback_threshold_w != base.fallback_threshold_w
    sim = FleetSpec([_device(base), _device(hot)]).build()
    results = sim.run()
    assert sim.trajectory_dedupe_hits == 1
    assert _frozen(results[0]) == _solo_frozen("eager")
    oracle = run_discharge_cycle(
        CapmanPolicy(capacity_mah=CAPACITY_MAH, fallback_threshold_w=0.1),
        _TRACE, profile=NEXUS, control_dt=CONTROL_DT,
        max_duration_s=MAX_DURATION_S)
    assert _frozen(results[1]) == _frozen(oracle)


def test_distinct_profiles_do_not_dedupe():
    sim = FleetSpec([
        _device(VARIANTS["eager"](), profile=NEXUS),
        _device(VARIANTS["eager"](), profile=HONOR),
    ]).build()
    sim.run()
    assert sim.trajectory_dedupe_hits == 0


# ----------------------------------------------------------------------
# Hypothesis properties (ISSUE satellite: permutation + dedupe)
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(order=st.permutations(sorted(VARIANTS)))
def test_capman_permutation_invariance(order):
    """Row order inside a CAPMAN batch is irrelevant: every row equals
    its solo scalar run regardless of neighbours or position -- even
    with the eager/eager-twin pair deduped into one trajectory."""
    sim = FleetSpec([_device(VARIANTS[name]()) for name in order]).build()
    results = sim.run()
    assert sim.trajectory_dedupe_hits == 1  # eager + eager-twin
    for name, mine in zip(order, results):
        assert _frozen(mine) == _solo_frozen(name), \
            f"{name} diverged at position {order.index(name)}"


@settings(max_examples=6, deadline=None)
@given(clones=st.integers(min_value=1, max_value=4))
def test_dedupe_equals_independent_trajectories(clones):
    """A deduped batch of N clones is indistinguishable from N
    independently learned rows (the scalar runs)."""
    sim = FleetSpec([_device(CapmanPolicy(capacity_mah=CAPACITY_MAH))
                     for _ in range(clones)]).build()
    results = sim.run()
    assert sim.trajectory_dedupe_hits == clones - 1
    for mine in results:
        assert _frozen(mine) == _solo_frozen("eager")


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
def _hetero_devices():
    return [
        _device(VARIANTS["eager"](), profile=NEXUS),
        _device(VARIANTS["eager"](), profile=HONOR),
        _device(VARIANTS["replan"]()),
        _device(DualPolicy(capacity_mah=CAPACITY_MAH)),
    ]


def test_run_sharded_matches_run_rowwise():
    plain = FleetSpec(_hetero_devices()).build().run()
    sharded_sim = FleetSpec(_hetero_devices()).build()
    sharded = sharded_sim.run_sharded(shards=2)
    assert len(sharded) == len(plain)
    for mine, theirs in zip(sharded, plain):
        assert _frozen(mine) == _frozen(theirs)
    # Work counters come back from the worker shards.
    assert sharded_sim.table_compiles > 0


def test_run_sharded_counters_come_from_shards_only():
    """After a sharded run the work counters describe the shards' work:
    4 clones over 2 shards dedupe once per shard (2 hits, not the
    in-process 3, and never 3+2 from double-counting the parent's
    never-run drivers), and each shard solves its own tables."""
    n = 4
    solo_sim = FleetSpec(
        [_device(CapmanPolicy(capacity_mah=CAPACITY_MAH))]).build()
    solo_sim.run()

    sim = FleetSpec([_device(CapmanPolicy(capacity_mah=CAPACITY_MAH))
                     for _ in range(n)]).build()
    sim.run_sharded(shards=2)
    assert sim.trajectory_dedupe_hits == 2
    assert sim.table_compiles == 2 * solo_sim.table_compiles


def test_run_sharded_honours_env_var(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")
    plain = FleetSpec(_hetero_devices()).build().run()
    sharded = FleetSpec(_hetero_devices()).build().run_sharded()
    for mine, theirs in zip(sharded, plain):
        assert _frozen(mine) == _frozen(theirs)


def test_run_sharded_one_shard_is_in_process(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "1")
    sim = FleetSpec(_hetero_devices()).build()
    assert [_frozen(r) for r in sim.run_sharded()] == \
        [_frozen(r) for r in FleetSpec(_hetero_devices()).build().run()]


def test_sweep_fleet_backend_honours_shards_env(monkeypatch):
    spec = SweepSpec(
        policies={"capman": CapmanPolicy(capacity_mah=CAPACITY_MAH),
                  "dual": DualPolicy(capacity_mah=CAPACITY_MAH)},
        traces={"video": _TRACE},
        profiles={"Nexus": NEXUS, "Honor": HONOR},
        control_dts=(CONTROL_DT,),
        max_duration_s=MAX_DURATION_S,
    )
    scalar = ScenarioRunner(workers=1).run(spec)
    monkeypatch.setenv(SHARDS_ENV, "2")
    fleet = ScenarioRunner(workers=1, backend="fleet").run(spec)
    assert len(fleet.results) == len(scalar.results) == 4
    for mine, theirs in zip(fleet.results, scalar.results):
        assert _frozen(mine) == _frozen(theirs)


# ----------------------------------------------------------------------
# Obs counters
# ----------------------------------------------------------------------
def test_counters_surface_in_obs_registry():
    """With obs enabled, a fleet run exports its driver-mix and CAPMAN
    work counters -- and the results are still bit-identical."""
    obs.configure(enabled=True)
    try:
        sim = FleetSpec([
            _device(VARIANTS["eager"]()),
            _device(VARIANTS["eager-twin"]()),
            _device(DualPolicy(capacity_mah=CAPACITY_MAH)),
        ]).build()
        results = sim.run()
        values = obs.session().registry.counter_values()
    finally:
        obs.disable()

    assert values["fleet.rows_vectorised"] == 3
    assert values["fleet.rows_adapted"] == 0
    assert values["fleet.trajectory_dedupe_hits"] == 1
    assert values["fleet.table_compiles"] == sim.table_compiles >= 1
    assert values["fleet.fallback_steps"] == sim.fallback_steps
    for mine in results[:2]:
        assert _frozen(mine) == _solo_frozen("eager")


def test_counters_export_once_per_run():
    """Calling run() twice (second call is a cached no-op loop) must
    not double-export into the registry."""
    obs.configure(enabled=True)
    try:
        sim = FleetSpec([_device(VARIANTS["eager"]())]).build()
        sim.run()
        sim.run()
        values = obs.session().registry.counter_values()
    finally:
        obs.disable()
    assert values["fleet.rows_vectorised"] == 1
