"""Tests for metrics recording."""

import pytest

from repro.sim.metrics import MetricsRecorder, TimeSeries


class TestTimeSeries:
    def test_append_and_last(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.last == (2.0, 20.0)
        assert len(ts) == 2

    def test_decimation_caps_memory(self):
        ts = TimeSeries(max_points=100)
        for i in range(1000):
            ts.append(float(i), float(i))
        assert len(ts) <= 100

    def test_decimation_preserves_span(self):
        ts = TimeSeries(max_points=64)
        for i in range(500):
            ts.append(float(i), float(i))
        assert ts.times[0] == 0.0
        assert ts.times[-1] >= 490.0

    def test_mean_and_max(self):
        ts = TimeSeries()
        for v in (1.0, 2.0, 3.0):
            ts.append(v, v)
        assert ts.mean() == pytest.approx(2.0)
        assert ts.maximum() == 3.0

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(1.0, 10.0)   # 10 over 1s
        ts.append(11.0, 0.0)   # 0 over 10s
        assert ts.time_weighted_mean() == pytest.approx(10.0 / 11.0)

    def test_empty_series_behaviour(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        with pytest.raises(IndexError):
            _ = ts.last
        with pytest.raises(ValueError):
            ts.maximum()

    def test_statistics_pinned_across_decimation_boundary(self):
        """Pin mean/max/time-weighted-mean across a decimation.

        Contract (module docstring): exceeding ``max_points`` keeps
        every other sample (indices 0, 2, 4, ...), so statistics are
        computed over exactly that retained subset -- reproduced here
        with a plain list oracle.
        """
        ts = TimeSeries(max_points=8)
        samples = [(float(i), float(i * i)) for i in range(11)]
        for (t, v) in samples:
            ts.append(t, v)
        # Oracle: replay the historical list implementation.
        kept_t, kept_v = [], []
        for t, v in samples:
            kept_t.append(t)
            kept_v.append(v)
            if len(kept_t) > 8:
                kept_t = kept_t[::2]
                kept_v = kept_v[::2]

        assert list(ts.times) == kept_t
        assert list(ts.values) == kept_v
        # One decimation at the 9th append: the retained prefix has
        # doubled spacing, the post-decimation tail keeps unit spacing.
        assert kept_t == [0.0, 2.0, 4.0, 6.0, 8.0, 9.0, 10.0]

        assert ts.mean() == pytest.approx(sum(kept_v) / len(kept_v))
        assert ts.maximum() == max(kept_v)
        expected_twm = sum(
            kept_v[i] * (kept_t[i] - kept_t[i - 1])
            for i in range(1, len(kept_t))
        ) / (kept_t[-1] - kept_t[0])
        assert ts.time_weighted_mean() == pytest.approx(expected_twm)

    def test_uniform_signal_immune_to_decimation(self):
        """A constant signal keeps its statistics through decimations."""
        ts = TimeSeries(max_points=16)
        for i in range(100):
            ts.append(float(i), 7.5)
        assert ts.mean() == pytest.approx(7.5)
        assert ts.maximum() == 7.5
        assert ts.time_weighted_mean() == pytest.approx(7.5)

    def test_pickle_roundtrip(self):
        import pickle

        ts = TimeSeries(max_points=8)
        for i in range(12):
            ts.append(float(i), float(i) * 2.0)
        clone = pickle.loads(pickle.dumps(ts))
        assert list(clone.times) == list(ts.times)
        assert list(clone.values) == list(ts.values)
        clone.append(99.0, 1.0)  # buffer still usable after restore
        assert clone.last == (99.0, 1.0)


class TestMetricsRecorder:
    def test_record_and_fetch(self):
        m = MetricsRecorder()
        m.record("soc", 1.0, 0.9)
        assert m.series("soc").last == (1.0, 0.9)
        assert m.has_series("soc")
        assert not m.has_series("nope")

    def test_counters(self):
        m = MetricsRecorder()
        m.bump("switches")
        m.bump("switches", 2.0)
        assert m.counter("switches") == 3.0
        assert m.counter("missing") == 0.0

    def test_series_names(self):
        m = MetricsRecorder()
        m.record("a", 0.0, 1.0)
        m.record("b", 0.0, 1.0)
        assert set(m.series_names) == {"a", "b"}

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            MetricsRecorder().series("none")
