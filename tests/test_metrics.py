"""Tests for metrics recording."""

import pytest

from repro.sim.metrics import MetricsRecorder, TimeSeries


class TestTimeSeries:
    def test_append_and_last(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.last == (2.0, 20.0)
        assert len(ts) == 2

    def test_decimation_caps_memory(self):
        ts = TimeSeries(max_points=100)
        for i in range(1000):
            ts.append(float(i), float(i))
        assert len(ts) <= 100

    def test_decimation_preserves_span(self):
        ts = TimeSeries(max_points=64)
        for i in range(500):
            ts.append(float(i), float(i))
        assert ts.times[0] == 0.0
        assert ts.times[-1] >= 490.0

    def test_mean_and_max(self):
        ts = TimeSeries()
        for v in (1.0, 2.0, 3.0):
            ts.append(v, v)
        assert ts.mean() == pytest.approx(2.0)
        assert ts.maximum() == 3.0

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(1.0, 10.0)   # 10 over 1s
        ts.append(11.0, 0.0)   # 0 over 10s
        assert ts.time_weighted_mean() == pytest.approx(10.0 / 11.0)

    def test_empty_series_behaviour(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        with pytest.raises(IndexError):
            _ = ts.last
        with pytest.raises(ValueError):
            ts.maximum()


class TestMetricsRecorder:
    def test_record_and_fetch(self):
        m = MetricsRecorder()
        m.record("soc", 1.0, 0.9)
        assert m.series("soc").last == (1.0, 0.9)
        assert m.has_series("soc")
        assert not m.has_series("nope")

    def test_counters(self):
        m = MetricsRecorder()
        m.bump("switches")
        m.bump("switches", 2.0)
        assert m.counter("switches") == 3.0
        assert m.counter("missing") == 0.0

    def test_series_names(self):
        m = MetricsRecorder()
        m.record("a", 0.0, 1.0)
        m.record("b", 0.0, 1.0)
        assert set(m.series_names) == {"a", "b"}

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            MetricsRecorder().series("none")
