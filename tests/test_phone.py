"""Tests for the assembled phone plant."""

import pytest

from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.battery.chemistry import LCO
from repro.battery.switch import BatterySelection
from repro.device.phone import DemandSlice, Phone, derive_device_state
from repro.device.profiles import HONOR, NEXUS
from repro.device.states import CpuState, ScreenState, WifiState


class TestDemandSlice:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandSlice(cpu_util=120.0)
        with pytest.raises(ValueError):
            DemandSlice(wifi_kbps=-1.0)
        with pytest.raises(ValueError):
            DemandSlice(brightness=999)


class TestDeriveDeviceState:
    def test_idle_dark_is_sleep(self):
        s = derive_device_state(DemandSlice(), tec_on=False,
                                battery=BatterySelection.BIG)
        assert s.cpu is CpuState.SLEEP
        assert s.screen is ScreenState.OFF

    def test_utilisation_buckets(self):
        def cpu_of(util):
            d = DemandSlice(cpu_util=util, screen_on=True)
            return derive_device_state(d, False, BatterySelection.BIG).cpu

        assert cpu_of(10.0) is CpuState.C2
        assert cpu_of(50.0) is CpuState.C1
        assert cpu_of(90.0) is CpuState.C0

    def test_wifi_buckets(self):
        def wifi_of(kbps):
            d = DemandSlice(cpu_util=10.0, wifi_kbps=kbps)
            return derive_device_state(d, False, BatterySelection.BIG).wifi

        assert wifi_of(0.0) is WifiState.IDLE
        assert wifi_of(150.0) is WifiState.ACCESS
        assert wifi_of(400.0) is WifiState.SEND


class TestPhonePower:
    def test_sleep_demand_is_floor(self):
        phone = Phone()
        p = phone.demand_power_w(DemandSlice())
        # sleep CPU + dark panel + idle radio.
        assert p == pytest.approx((55.0 + 22.0 + 60.0) / 1000.0, rel=0.01)

    def test_busier_is_costlier(self):
        phone = Phone()
        light = phone.demand_power_w(DemandSlice(cpu_util=10.0, screen_on=True))
        heavy = phone.demand_power_w(
            DemandSlice(cpu_util=95.0, freq_index=2, screen_on=True, wifi_kbps=300.0)
        )
        assert heavy > light * 2

    def test_profile_scales_power(self):
        d = DemandSlice(cpu_util=50.0, screen_on=True)
        nexus = Phone(profile=NEXUS).demand_power_w(d)
        honor = Phone(profile=HONOR).demand_power_w(d)
        assert honor < nexus  # Honor's table is scaled by 0.92


class TestPhoneStep:
    def test_step_consumes_energy(self):
        phone = Phone(pack=BigLittlePack.from_chemistries(
            *_pair(), capacity_mah=500.0))
        before = phone.pack.state_of_charge
        out = phone.step(DemandSlice(cpu_util=80.0, screen_on=True), 10.0)
        assert out.energy_j > 0.0
        assert phone.pack.state_of_charge < before

    def test_step_advances_clock(self):
        phone = Phone()
        phone.step(DemandSlice(), 5.0)
        assert phone.clock_s == 5.0

    def test_heavy_load_heats_cpu(self):
        phone = Phone()
        for _ in range(200):
            phone.step(DemandSlice(cpu_util=100.0, freq_index=2, screen_on=True), 10.0)
        assert phone.cpu_temp_c > 40.0

    def test_tec_cools_the_die(self):
        hot = Phone()
        cooled = Phone()
        cooled.set_tec(True)
        demand = DemandSlice(cpu_util=100.0, freq_index=2, screen_on=True)
        for _ in range(200):
            hot.step(demand, 10.0)
            cooled.step(demand, 10.0)
        assert cooled.cpu_temp_c < hot.cpu_temp_c - 2.0

    def test_battery_selection_routes_demand(self):
        phone = Phone(pack=BigLittlePack.from_chemistries(
            *_pair(), capacity_mah=500.0))
        phone.select_battery(BatterySelection.LITTLE)
        out = phone.step(DemandSlice(cpu_util=50.0, screen_on=True), 2.0)
        assert out.served_by is BatterySelection.LITTLE

    def test_single_pack_has_no_selection(self):
        phone = Phone(pack=SingleBatteryPack.from_chemistry(LCO, 500.0))
        assert phone.active_battery is None
        assert not phone.select_battery(BatterySelection.LITTLE)

    def test_device_state_exposed(self):
        phone = Phone()
        out = phone.step(DemandSlice(cpu_util=90.0, screen_on=True), 1.0)
        assert out.device_state.cpu is CpuState.C0
        assert phone.last_device_state == out.device_state

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            Phone().step(DemandSlice(), 0.0)


def _pair():
    from repro.battery.chemistry import pick_big_little

    return pick_big_little()
