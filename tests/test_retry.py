"""Tests for RetryPolicy and its wiring into the sweep engine."""

import pytest

from repro import obs
from repro.sim.executors import ExecutionContext
from repro.sim.retry import DEFAULT_RETRY, RetryPolicy
from repro.sim.sweep import ScenarioRunner, SimStats


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy.from_retries(-1)

    def test_allows_caps_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0)
        assert policy.allows(2)
        assert not policy.allows(3)

    def test_legacy_retries_round_trip(self):
        policy = RetryPolicy.from_retries(4)
        assert policy.max_attempts == 5
        assert policy.retries == 4

    def test_default_is_historic_behaviour(self):
        # One immediate retry, zero wait: exactly the old retries=1.
        assert DEFAULT_RETRY.max_attempts == 2
        assert DEFAULT_RETRY.wait_s(1, "anything") == 0.0

    def test_wait_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=10, backoff_base_s=1.0,
                             backoff_factor=2.0, backoff_max_s=5.0)
        assert policy.wait_s(1) == 1.0
        assert policy.wait_s(2) == 2.0
        assert policy.wait_s(3) == 4.0
        assert policy.wait_s(4) == 5.0  # capped
        assert policy.wait_s(0) == 0.0  # nothing failed yet

    def test_jitter_is_deterministic_and_decorrelated(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                             jitter=0.5, seed=7)
        a1 = policy.wait_s(1, token="cell-a")
        a2 = policy.wait_s(1, token="cell-a")
        b = policy.wait_s(1, token="cell-b")
        assert a1 == a2  # same (seed, token, attempt): same wait
        assert a1 != b  # different token: different wait
        assert 0.5 <= a1 <= 1.0  # full jitter downward only
        other_seed = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                                 jitter=0.5, seed=8)
        assert other_seed.wait_s(1, token="cell-a") != a1

    def test_sleep_uses_injected_sleeper_and_skips_zero(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.25)
        wait = policy.sleep(1, token="x", sleeper=slept.append)
        assert wait == 0.25 and slept == [0.25]
        slept.clear()
        assert DEFAULT_RETRY.sleep(1, sleeper=slept.append) == 0.0
        assert slept == []  # zero wait never calls the sleeper


class TestRunnerWiring:
    def test_runner_default_matches_legacy_retries(self):
        runner = ScenarioRunner(retries=3)
        assert runner.retry == RetryPolicy.from_retries(3)
        assert runner.retries == 3

    def test_explicit_policy_wins(self):
        policy = RetryPolicy(max_attempts=7, backoff_base_s=0.5)
        runner = ScenarioRunner(retries=1, retry=policy)
        assert runner.retry is policy
        assert runner.retries == 6

    def test_count_retry_updates_stats_and_obs(self):
        stats = SimStats()
        ctx = ExecutionContext(stats=stats)
        obs.configure(enabled=True)
        try:
            ctx.count_retry(0.75)
            ctx.count_retry(0.0)
            reg = obs.session().registry
            assert reg.counter("sweep.retries").value == 2
            assert reg.counter("sweep.backoff_wait_s").value == 0.75
        finally:
            obs.disable()
        assert stats.cell_retries == 2
        assert stats.backoff_wait_s == 0.75

    def test_count_retry_without_session_touches_stats_only(self):
        stats = SimStats()
        ctx = ExecutionContext(stats=stats)
        assert obs.session() is None
        ctx.count_retry(0.5)
        assert stats.cell_retries == 1
        assert stats.backoff_wait_s == 0.5
