"""Tests for RetryPolicy, CircuitBreaker and their wiring into the
sweep engine."""

import pytest

from repro import obs
from repro.sim.distributed import SweepCoordinator
from repro.sim.executors import CellFailure, ExecutionContext
from repro.sim.retry import DEFAULT_RETRY, CircuitBreaker, RetryPolicy
from repro.sim.sweep import ScenarioRunner, SimStats


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy.from_retries(-1)

    def test_allows_caps_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0)
        assert policy.allows(2)
        assert not policy.allows(3)

    def test_legacy_retries_round_trip(self):
        policy = RetryPolicy.from_retries(4)
        assert policy.max_attempts == 5
        assert policy.retries == 4

    def test_default_is_historic_behaviour(self):
        # One immediate retry, zero wait: exactly the old retries=1.
        assert DEFAULT_RETRY.max_attempts == 2
        assert DEFAULT_RETRY.wait_s(1, "anything") == 0.0

    def test_wait_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=10, backoff_base_s=1.0,
                             backoff_factor=2.0, backoff_max_s=5.0)
        assert policy.wait_s(1) == 1.0
        assert policy.wait_s(2) == 2.0
        assert policy.wait_s(3) == 4.0
        assert policy.wait_s(4) == 5.0  # capped
        assert policy.wait_s(0) == 0.0  # nothing failed yet

    def test_jitter_is_deterministic_and_decorrelated(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                             jitter=0.5, seed=7)
        a1 = policy.wait_s(1, token="cell-a")
        a2 = policy.wait_s(1, token="cell-a")
        b = policy.wait_s(1, token="cell-b")
        assert a1 == a2  # same (seed, token, attempt): same wait
        assert a1 != b  # different token: different wait
        assert 0.5 <= a1 <= 1.0  # full jitter downward only
        other_seed = RetryPolicy(max_attempts=5, backoff_base_s=1.0,
                                 jitter=0.5, seed=8)
        assert other_seed.wait_s(1, token="cell-a") != a1

    def test_sleep_uses_injected_sleeper_and_skips_zero(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.25)
        wait = policy.sleep(1, token="x", sleeper=slept.append)
        assert wait == 0.25 and slept == [0.25]
        slept.clear()
        assert DEFAULT_RETRY.sleep(1, sleeper=slept.append) == 0.0
        assert slept == []  # zero wait never calls the sleeper


class _FakeCell:
    """Just enough cell for coordinator dispatch accounting."""

    def __init__(self, index, label=None):
        self.index = index
        self.label = label or f"cell-{index}"


def _manual_clock():
    now = [0.0]
    return now, (lambda: now[0])


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1.0)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.closed  # streak below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.stats.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.closed  # the streak must be *consecutive*

    def test_open_short_circuits_until_reset_timeout(self):
        now, clock = _manual_clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()  # inside the window: refused
        assert not breaker.allow()
        assert breaker.stats.short_circuits == 2
        now[0] = 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.stats.probes == 1

    def test_half_open_probe_success_closes(self):
        now, clock = _manual_clock()
        breaker = CircuitBreaker(reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.closed
        assert breaker.stats.closes == 1

    def test_half_open_probe_failure_rearms_full_window(self):
        now, clock = _manual_clock()
        breaker = CircuitBreaker(reset_timeout_s=5.0, clock=clock)
        breaker.record_failure()  # opens at t=0
        now[0] = 5.0
        assert breaker.allow()  # probe at t=5
        breaker.record_failure()  # probe failed: re-open
        assert breaker.state == CircuitBreaker.OPEN
        now[0] = 9.9
        assert not breaker.allow()  # window restarted at t=5, not t=0
        now[0] = 10.0
        assert breaker.allow()
        # The re-open is not a fresh trip: one outage, one trip.
        assert breaker.stats.trips == 1

    def test_concurrent_callers_during_probe_are_refused(self):
        now, clock = _manual_clock()
        breaker = CircuitBreaker(reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        now[0] = 2.0
        assert breaker.allow()  # first caller becomes the probe
        assert not breaker.allow()  # second caller: no thundering herd
        assert breaker.stats.probes == 1
        assert breaker.stats.short_circuits == 1


class TestExhaustionPaths:
    """Satellite: RetryPolicy budgets actually running out, observably."""

    def test_lease_reclaim_exhausts_the_budget_to_a_failure(self):
        # Two journalled-but-uncommitted grants from a dead coordinator
        # against a 2-attempt budget: the restarted coordinator must
        # finally fail the cell instead of re-dispatching a third time.
        committed = []
        ctx = ExecutionContext(
            retry=RetryPolicy(max_attempts=2),
            on_final=lambda index, outcome: committed.append((index, outcome)),
            replayed_grants={0: 2})
        coordinator = SweepCoordinator([_FakeCell(0)], ctx)
        assert coordinator.finished  # failed terminally, never served
        (index, outcome), = committed
        assert index == 0
        assert isinstance(outcome, CellFailure)
        assert outcome.error_type == "LeaseExpiredError"
        assert outcome.attempts == 2
        assert coordinator.stats.recovered_leases == 2
        assert coordinator.stats.retries == 0

    def test_lease_reclaim_within_budget_requeues_with_backoff(self):
        committed = []
        ctx = ExecutionContext(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.2,
                              jitter=0.5, seed=11),
            on_final=lambda index, outcome: committed.append((index, outcome)),
            replayed_grants={0: 1})
        coordinator = SweepCoordinator([_FakeCell(0)], ctx)
        assert not committed  # still dispatchable
        assert coordinator.stats.recovered_leases == 1
        assert coordinator.stats.retries == 1
        assert coordinator.stats.backoff_wait_s == ctx.retry.wait_s(
            1, token="cell-0")  # the deterministic jittered wait, exactly

    def test_worker_reconnect_schedule_is_seeded_and_deterministic(self):
        from repro.sim.distributed import SweepWorker
        same_a = SweepWorker(("127.0.0.1", 1), worker_id="w-a")
        same_b = SweepWorker(("127.0.0.1", 1), worker_id="w-a")
        other = SweepWorker(("127.0.0.1", 1), worker_id="w-b")
        schedule = [same_a.reconnect_retry.wait_s(n, token="reconnect")
                    for n in range(1, 8)]
        assert schedule == [same_b.reconnect_retry.wait_s(n, token="reconnect")
                            for n in range(1, 8)]  # reproducible
        if other.reconnect_retry.seed != same_a.reconnect_retry.seed:
            # Distinct seeds (the overwhelmingly common case; the seed
            # is a 16-bit fold of the worker id) give distinct waits.
            assert schedule != [
                other.reconnect_retry.wait_s(n, token="reconnect")
                for n in range(1, 8)]
        assert all(w <= 1.0 for w in schedule)  # saturates at the ceiling

    def test_reconnect_budget_is_effectively_unbounded(self):
        # The reconnect window is bounded by wall clock, not attempts:
        # the policy itself must never run dry mid-outage.
        from repro.sim.distributed import SweepWorker
        worker = SweepWorker(("127.0.0.1", 1), worker_id="w")
        assert worker.reconnect_retry.allows(10_000_000)


class TestRunnerWiring:
    def test_runner_default_matches_legacy_retries(self):
        runner = ScenarioRunner(retries=3)
        assert runner.retry == RetryPolicy.from_retries(3)
        assert runner.retries == 3

    def test_explicit_policy_wins(self):
        policy = RetryPolicy(max_attempts=7, backoff_base_s=0.5)
        runner = ScenarioRunner(retries=1, retry=policy)
        assert runner.retry is policy
        assert runner.retries == 6

    def test_count_retry_updates_stats_and_obs(self):
        stats = SimStats()
        ctx = ExecutionContext(stats=stats)
        obs.configure(enabled=True)
        try:
            ctx.count_retry(0.75)
            ctx.count_retry(0.0)
            reg = obs.session().registry
            assert reg.counter("sweep.retries").value == 2
            assert reg.counter("sweep.backoff_wait_s").value == 0.75
        finally:
            obs.disable()
        assert stats.cell_retries == 2
        assert stats.backoff_wait_s == 0.75

    def test_count_retry_without_session_touches_stats_only(self):
        stats = SimStats()
        ctx = ExecutionContext(stats=stats)
        assert obs.session() is None
        ctx.count_retry(0.5)
        assert stats.cell_retries == 1
        assert stats.backoff_wait_s == 0.5
