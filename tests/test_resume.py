"""Crash-resume integration tests for the journalled sweep engine.

The headline test SIGKILLs a live sweep subprocess mid-grid -- the
same failure a preempted batch node or OOM kill delivers -- and then
resumes from the write-ahead journal in this process, asserting the
two durability guarantees end to end:

* zero committed cells are recomputed, and
* the resumed :class:`SweepResult` is byte-identical (per cell) to an
  uninterrupted run of the same spec.
"""

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.durability.journal import JournalError, RunJournal
from repro.sim.sweep import ScenarioRunner

import resume_helper

_SRC = str(Path(repro.__file__).resolve().parents[1])
_TESTS = str(Path(__file__).resolve().parent)


def _child_env() -> dict:
    env = dict(os.environ)
    extra = os.pathsep.join([_SRC, _TESTS])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{current}" if current else extra
    return env


def _commit_count(journal: Path) -> int:
    try:
        text = journal.read_text(errors="replace")
    except FileNotFoundError:
        return 0
    return text.count('"type":"cell_commit"')


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every resumed run must reproduce."""
    return ScenarioRunner(workers=1).run(resume_helper.build_spec())


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="POSIX only")
class TestKill9Resume:
    def test_sigkilled_sweep_resumes_without_recomputation(self, tmp_path,
                                                           reference):
        journal = tmp_path / "sweep.journal"
        child = subprocess.Popen(
            [sys.executable, "-c",
             "import sys, resume_helper; resume_helper.main(sys.argv[1])",
             str(journal)],
            env=_child_env())
        try:
            # Let at least one commit become durable, then kill -9.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if _commit_count(journal) >= 1 or child.poll() is not None:
                    break
                time.sleep(0.02)
            assert _commit_count(journal) >= 1, "no commit before timeout"
        finally:
            child.kill()
            child.wait()

        committed = sum(1 for r in RunJournal.replay(journal)
                        if r["type"] == "cell_commit")
        total = len(resume_helper.build_spec())
        # The per-cell delay makes finishing before the kill impossible.
        assert 1 <= committed < total

        resumed = ScenarioRunner(workers=1, journal=journal).resume()

        assert resumed.stats.cells_resumed == committed
        assert resumed.stats.cells_computed == total - committed
        assert not resumed.failures
        assert _cell_bytes(resumed) == _cell_bytes(reference)

        # The journal now holds every commit: a second resume is a
        # pure replay that computes nothing.
        replayed = ScenarioRunner(workers=1, journal=journal).resume()
        assert replayed.stats.cells_resumed == total
        assert replayed.stats.cells_computed == 0
        assert _cell_bytes(replayed) == _cell_bytes(reference)


class TestJournalledRun:
    def test_journalled_run_matches_plain(self, tmp_path, reference):
        journal = tmp_path / "sweep.journal"
        spec = resume_helper.build_spec()
        result = ScenarioRunner(workers=1, journal=journal).run(spec)
        assert _cell_bytes(result) == _cell_bytes(reference)
        types = [r["type"] for r in RunJournal.replay(journal)]
        assert types[0] == "sweep_start"
        assert types.count("cell_commit") == len(spec)

    def test_run_refuses_populated_journal(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        spec = resume_helper.build_spec()
        ScenarioRunner(workers=1, journal=journal).run(spec)
        with pytest.raises(JournalError, match="resume"):
            ScenarioRunner(workers=1, journal=journal).run(spec)

    def test_torn_tail_recovered_on_resume(self, tmp_path, reference):
        journal = tmp_path / "sweep.journal"
        spec = resume_helper.build_spec()
        ScenarioRunner(workers=1, journal=journal).run(spec)
        # Keep the header + the first two commits, then simulate a
        # write torn mid-record by a crash.
        kept, commits = [], 0
        for line in journal.read_bytes().splitlines(keepends=True):
            kept.append(line)
            if b'"type":"cell_commit"' in line:
                commits += 1
                if commits == 2:
                    break
        journal.write_bytes(b"".join(kept) + b'{"seq":99,"type":"cell_co')

        resumed = ScenarioRunner(workers=1, journal=journal).resume()
        assert resumed.stats.cells_resumed == 2
        assert resumed.stats.cells_computed == len(spec) - 2
        assert _cell_bytes(resumed) == _cell_bytes(reference)

    def test_resume_without_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            ScenarioRunner(workers=1).resume()
        with pytest.raises(JournalError):
            ScenarioRunner(workers=1).resume(tmp_path / "absent.journal")
