"""Tests for the runtime calibration (rho sweep of Figure 16)."""

import pytest

from repro.capman.calibration import RuntimeCalibrator
from repro.core.mdp import random_mdp


@pytest.fixture(scope="module")
def mdp():
    return random_mdp(10, 3, branching=2, seed=51)


class TestMeasurement:
    def test_point_fields(self, mdp):
        point = RuntimeCalibrator(mdp).measure(0.5, n_decisions=16)
        assert point.rho == 0.5
        assert point.mean_latency_us > 0.0
        assert point.p95_latency_us >= point.mean_latency_us * 0.5
        assert point.sweeps_per_decision >= 1

    def test_overhead_grows_with_rho(self, mdp):
        """The Figure 16 trend: steep growth as rho approaches 1."""
        cal = RuntimeCalibrator(mdp)
        low = cal.measure(0.2, n_decisions=24)
        high = cal.measure(0.99, n_decisions=24)
        assert high.sweeps_per_decision > 10 * low.sweeps_per_decision
        assert high.mean_latency_us > low.mean_latency_us

    def test_faster_device_has_lower_overhead(self, mdp):
        """Nexus vs Honor vs Lenovo separation in Figure 16."""
        nexus = RuntimeCalibrator(mdp, compute_speed=1.0).measure(0.95, 24)
        lenovo = RuntimeCalibrator(mdp, compute_speed=1.7).measure(0.95, 24)
        assert lenovo.sweeps_per_decision < nexus.sweeps_per_decision

    def test_sweep_covers_requested_rhos(self, mdp):
        rhos = (0.1, 0.5, 0.9)
        points = RuntimeCalibrator(mdp).sweep(rhos, n_decisions=8)
        assert [p.rho for p in points] == list(rhos)


class TestRecommendation:
    def test_recommends_largest_rho_in_budget(self, mdp):
        cal = RuntimeCalibrator(mdp)
        sweep = cal.sweep((0.1, 0.9), n_decisions=16)
        generous = max(p.mean_latency_us for p in sweep) * 10.0
        rec = cal.recommend(generous, rhos=(0.1, 0.9), n_decisions=16)
        assert rec is not None
        assert rec.rho == 0.9

    def test_impossible_budget_returns_none(self, mdp):
        cal = RuntimeCalibrator(mdp)
        assert cal.recommend(1e-9, rhos=(0.5,), n_decisions=8) is None
