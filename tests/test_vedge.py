"""Tests for the V-edge analysis (paper Figure 3)."""

import pytest

from repro.battery.cell import Cell
from repro.battery.chemistry import LMO, NCA
from repro.battery.vedge import analyze_vedge, simulate_step_response


def _trace(chem, power=3.0, step=30.0, rest=120.0):
    return simulate_step_response(Cell(chem), power, step, rest, dt=0.1)


class TestStepResponse:
    def test_trace_spans_step_and_rest(self):
        tr = _trace(NCA)
        assert tr.times[-1] == pytest.approx(150.0, abs=0.2)
        assert len(tr.times) == len(tr.voltages)

    def test_voltage_drops_on_step(self):
        tr = _trace(NCA)
        assert min(tr.voltages) < tr.initial_voltage

    def test_vedge_shape_recovers_below_initial(self):
        """The defining V-edge: recovery settles below the start."""
        tr = _trace(NCA)
        final = tr.voltages[-1]
        lowest = min(tr.voltages)
        assert lowest < final <= tr.initial_voltage + 1e-6

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            simulate_step_response(Cell(NCA), 1.0, 10.0, 10.0, dt=0.0)


class TestAnalysis:
    def test_areas_nonnegative(self):
        a = analyze_vedge(_trace(NCA))
        assert a.d1 >= 0.0
        assert a.d2 >= 0.0
        assert a.d3 >= 0.0

    def test_little_minimises_d1(self):
        """The LITTLE battery sags less on the step (smaller D1)."""
        a_big = analyze_vedge(_trace(NCA))
        a_little = analyze_vedge(_trace(LMO))
        assert a_little.d1 < a_big.d1

    def test_big_maximises_d3(self):
        """The big battery has the deeper, longer recovery (larger D3)."""
        a_big = analyze_vedge(_trace(NCA))
        a_little = analyze_vedge(_trace(LMO))
        assert a_big.d3 > a_little.d3

    def test_saving_potential_is_d3_minus_d1(self):
        a = analyze_vedge(_trace(NCA))
        assert a.saving_potential == pytest.approx(a.d3 - a.d1)

    def test_no_rest_gives_zero_d3(self):
        tr = simulate_step_response(Cell(NCA), 2.0, 20.0, 0.0, dt=0.1)
        a = analyze_vedge(tr)
        assert a.d3 == 0.0
