"""Child-process entry point for the coordinator SIGKILL-failover tests.

The parent test (or ``scripts/dist_chaos_smoke.py --kill-coordinator``)
launches this module in a subprocess.  The child runs a journalled
*distributed* sweep -- coordinator in-process, worker subprocesses
attached over TCP -- via ``run_or_resume``, so the very same command
line works for both incarnations:

1. the first child starts the sweep and spawns workers; the parent
   waits until the journal shows committed cells *and* in-flight lease
   grants, then SIGKILLs the child (the coordinator) while the workers
   live on;
2. the second child resumes from the journal on the same port with
   ``spawn_workers=0``: committed cells replay without recomputation,
   orphaned grants are reclaimed through the retry policy, and the
   surviving workers -- still probing the address -- re-attach and
   deliver the results they computed across the outage.

The child publishes its spawned workers' PIDs to ``worker_pids.json``
in the run directory (the parent needs them to verify survival and to
clean up), and on completion writes ``result.pkl`` (per-cell pickle
bytes, the byte-identity artifact) plus ``stats.json``.

The policy classes live in :mod:`repro.testing` -- importable under
the same canonical name from every process -- so the spec pickled into
the journal's ``sweep_start`` record unpickles cleanly in whichever
incarnation reads it.
"""

import json
import pickle
import threading
import time
from pathlib import Path

from repro.sim.distributed import DistributedExecutor
from repro.sim.retry import RetryPolicy
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.testing import SlowDualPolicy
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


def build_spec(delay_s: float = 0.4,
               mahs=(30, 40, 50, 60, 70, 80)) -> SweepSpec:
    """The sweep grid every incarnation (and the serial reference) uses.

    ``delay_s`` burns wall time only (physics untouched), keeping
    cells in flight long enough for the SIGKILL to land mid-sweep.
    """
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    policies = {
        f"Dual{mah}": SlowDualPolicy(capacity_mah=float(mah),
                                     delay_s=delay_s)
        for mah in mahs
    }
    return SweepSpec(policies=policies, traces={"Video": trace},
                     max_duration_s=900.0)


def _publish_worker_pids(executor: DistributedExecutor,
                         path: Path, expected: int) -> None:
    """Write the spawned workers' PIDs as soon as they all exist."""
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        pids = executor.worker_pids()
        if len(pids) >= expected:
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(sorted(pids)))
            tmp.replace(path)
            return
        time.sleep(0.05)


def main(run_dir: str, port: int, spawn_workers: int,
         delay_s: float = 0.4) -> None:
    run = Path(run_dir)
    run.mkdir(parents=True, exist_ok=True)
    spec = build_spec(delay_s=delay_s)
    executor = DistributedExecutor(
        host="127.0.0.1", port=port,
        lease_timeout_s=2.0,
        spawn_workers=spawn_workers,
        workers_grace_s=8.0,
    )
    if spawn_workers:
        threading.Thread(
            target=_publish_worker_pids,
            args=(executor, run / "worker_pids.json", spawn_workers),
            daemon=True).start()
    runner = ScenarioRunner(
        executor=executor,
        journal=run / "run.journal",
        salt="failover-drill",
        retry=RetryPolicy(max_attempts=4, backoff_base_s=0.05,
                          jitter=0.5, seed=1),
    )
    result = runner.run_or_resume(spec)
    (run / "result.pkl").write_bytes(pickle.dumps(
        [pickle.dumps(r) for r in result.results], protocol=4))
    stats = dict(result.stats.as_dict())
    stats.update({f"dist_{k}": v
                  for k, v in executor.stats.as_dict().items()})
    (run / "stats.json").write_text(json.dumps(stats, sort_keys=True))


if __name__ == "__main__":
    import sys

    # Re-import under the canonical module name so pickled objects
    # reference ``dist_failover_helper``, not ``__main__``.
    import dist_failover_helper

    dist_failover_helper.main(
        sys.argv[1], int(sys.argv[2]), int(sys.argv[3]),
        float(sys.argv[4]) if len(sys.argv) > 4 else 0.4)
