"""Tests for the Table II power models and the Table III state table."""

import pytest

from repro.battery.switch import BatterySelection
from repro.device.power import (
    CpuPowerModel,
    PAPER_STATE_POWER_MW,
    ScreenPowerModel,
    StatePowerTable,
    WifiPowerModel,
)
from repro.device.states import (
    CpuState,
    DeviceState,
    ScreenState,
    TecState,
    WifiState,
)


class TestCpuModel:
    def test_linear_in_utilisation(self):
        m = CpuPowerModel(gamma_by_freq=(2.0,), constant_mw=50.0)
        assert m.power_mw(0.0) == 50.0
        assert m.power_mw(100.0) == 250.0
        assert m.power_mw(50.0) == pytest.approx(150.0)

    def test_higher_frequency_costs_more(self):
        m = CpuPowerModel()
        assert m.power_mw(80.0, m.n_freqs - 1) > m.power_mw(80.0, 0)

    def test_utilisation_bounds(self):
        m = CpuPowerModel()
        with pytest.raises(ValueError):
            m.power_mw(-1.0)
        with pytest.raises(ValueError):
            m.power_mw(101.0)

    def test_freq_index_bounds(self):
        m = CpuPowerModel()
        with pytest.raises(ValueError):
            m.power_mw(10.0, m.n_freqs)


class TestScreenModel:
    def test_off_costs_constant(self):
        m = ScreenPowerModel()
        assert m.power_mw(200, on=False) == m.constant_mw

    def test_brighter_costs_more(self):
        m = ScreenPowerModel()
        assert m.power_mw(255) > m.power_mw(50)

    def test_full_brightness_near_table_iii(self):
        """Slope anchored so max brightness lands near 790 mW."""
        m = ScreenPowerModel()
        assert m.power_mw(255) == pytest.approx(
            PAPER_STATE_POWER_MW["screen"]["on"], rel=0.05
        )

    def test_brightness_bounds(self):
        with pytest.raises(ValueError):
            ScreenPowerModel().power_mw(300)


class TestWifiModel:
    def test_idle_power(self):
        m = WifiPowerModel()
        assert m.power_mw(0.0) == pytest.approx(
            PAPER_STATE_POWER_MW["wifi"]["idle"]
        )

    def test_piecewise_regimes(self):
        m = WifiPowerModel()
        below = m.power_mw(m.threshold_kbps * 0.99)
        above = m.power_mw(m.threshold_kbps * 1.5)
        assert above > below

    def test_high_regime_reaches_access_power(self):
        m = WifiPowerModel()
        assert m.power_mw(200.0) == pytest.approx(
            PAPER_STATE_POWER_MW["wifi"]["access"], rel=0.02
        )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            WifiPowerModel().power_mw(-1.0)


class TestStateTable:
    def test_table_iii_values(self):
        t = StatePowerTable()
        assert t.cpu_mw[CpuState.C0] == 612.0
        assert t.cpu_mw[CpuState.SLEEP] == 55.0
        assert t.screen_mw[ScreenState.ON] == 790.0
        assert t.wifi_mw[WifiState.SEND] == 1548.0
        assert t.tec_mw[TecState.ON] == pytest.approx(29.17)

    def test_state_power_sums_components(self):
        t = StatePowerTable()
        s = DeviceState(CpuState.C0, ScreenState.ON, WifiState.SEND,
                        TecState.ON, BatterySelection.BIG)
        assert t.state_power_mw(s) == pytest.approx(612.0 + 790.0 + 1548.0 + 29.17)
        assert t.state_power_w(s) == pytest.approx(2.97917)

    def test_scaled_copy(self):
        t = StatePowerTable().scaled(0.5)
        assert t.cpu_mw[CpuState.C0] == pytest.approx(306.0)
        # TEC power is device-independent hardware, not scaled.
        assert t.tec_mw[TecState.ON] == pytest.approx(29.17)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            StatePowerTable().scaled(0.0)

    def test_paper_max_system_power(self):
        """Full-tilt system lands near the paper's ~2300+ mW regime."""
        t = StatePowerTable()
        s = DeviceState(CpuState.C0, ScreenState.ON, WifiState.ACCESS,
                        TecState.ON, BatterySelection.BIG)
        assert t.state_power_mw(s) > 2300.0
