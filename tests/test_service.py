"""End-to-end tests of the sweep service (tentpole of the service PR).

The service boots *in-process* on an ephemeral port -- handler and
job-runner code runs under coverage -- and every assertion is against
the public HTTP surface:

* a submitted grid's results are byte-identical to running the same
  spec directly through :class:`ScenarioRunner`;
* resubmitting the identical grid returns the same content-hash job
  ID without recomputing anything;
* an overlapping-but-different grid dedupes cell-wise through the
  shared result cache;
* progress/events/metrics expose the job as it moves through the
  lifecycle.
"""

import base64
import http.client
import json
import pickle

import pytest

from repro.service import CapmanService, job_id_for, parse_spec
from repro.sim.sweep import ScenarioRunner

from service_client import api, small_grid, wait_for_job


@pytest.fixture()
def service(tmp_path, monkeypatch):
    monkeypatch.delenv("CAPMAN_DIST_SECRET", raising=False)
    monkeypatch.delenv("CAPMAN_DIST_WORKERS", raising=False)
    svc = CapmanService(tmp_path / "state", cell_workers=1,
                        job_runners=1).start()
    yield svc
    svc.close()


@pytest.fixture()
def base(service):
    host, port = service.address
    return f"http://{host}:{port}"


class TestEndToEnd:
    def test_submitted_job_matches_direct_runner_byte_for_byte(self, base):
        grid = small_grid()
        code, ack = api(base, "POST", "/jobs", body=grid)
        assert code == 201 and ack["created"] and ack["cells"] == 2
        status = wait_for_job(base, ack["job_id"])
        assert status["state"] == "done"
        assert status["progress"]["finished"]
        assert status["progress"]["done"] == 2

        code, results = api(base, "GET", f"/jobs/{ack['job_id']}/results")
        assert code == 200 and results["count"] == 2
        served = [base64.b64decode(cell) for cell in results["cells"]]

        direct = ScenarioRunner().run(parse_spec(grid))
        assert [pickle.dumps(r, protocol=4) for r in direct.results] \
            == served

    def test_job_id_is_content_hash_of_the_grid(self, base):
        grid = small_grid()
        code, ack = api(base, "POST", "/jobs", body=grid)
        assert code == 201
        assert ack["job_id"] == job_id_for(parse_spec(grid))

    def test_duplicate_submission_is_a_pure_dedupe(self, base):
        grid = small_grid(capacities=(35.0,))
        code, first = api(base, "POST", "/jobs", body=grid)
        assert code == 201 and first["created"]
        done = wait_for_job(base, first["job_id"])
        computed = done["stats"]["cells_computed"]

        code, again = api(base, "POST", "/jobs", body=grid)
        assert code == 200
        assert not again["created"]
        assert again["job_id"] == first["job_id"]
        # Zero recomputation: the job record (and its stats) are the
        # original's, and the dedupe is visible on /metrics.
        code, status = api(base, "GET", f"/jobs/{first['job_id']}")
        assert status["stats"]["cells_computed"] == computed
        code, metrics = api(base, "GET", "/metrics")
        assert metrics["counters"]["jobs.deduped"] == 1.0

    def test_overlapping_grid_hits_the_shared_cache(self, base):
        code, first = api(base, "POST", "/jobs",
                          body=small_grid(capacities=(30.0, 40.0)))
        wait_for_job(base, first["job_id"])

        # Two of these three cells were computed by the first job.
        code, second = api(base, "POST", "/jobs",
                           body=small_grid(capacities=(30.0, 40.0, 50.0)))
        assert code == 201 and second["job_id"] != first["job_id"]
        status = wait_for_job(base, second["job_id"])
        assert status["state"] == "done"
        assert status["stats"]["cache_hits"] == 2
        assert status["stats"]["cells_computed"] == 1

    def test_events_stream_is_ndjson_until_terminal(self, service, base):
        code, ack = api(base, "POST", "/jobs", body=small_grid())
        host, port = service.address
        conn = http.client.HTTPConnection(host, port, timeout=120)
        conn.request("GET", f"/jobs/{ack['job_id']}/events")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line)
                 for line in resp.read().decode().strip().splitlines()]
        conn.close()
        assert lines, "stream must carry at least one snapshot"
        assert lines[-1]["state"] == "done"
        for snapshot in lines:
            assert snapshot["job_id"] == ack["job_id"]
            assert snapshot["state"] in ("queued", "running", "done")

    def test_metrics_expose_requests_jobs_and_spans(self, base):
        code, ack = api(base, "POST", "/jobs", body=small_grid())
        wait_for_job(base, ack["job_id"])
        code, metrics = api(base, "GET", "/metrics")
        assert code == 200
        counters = metrics["counters"]
        assert counters["http.jobs.submit.requests"] >= 1.0
        assert counters["http.jobs.submit.status.201"] >= 1.0
        assert counters["jobs.submitted"] == 1.0
        assert counters["jobs.completed"] == 1.0
        assert metrics["histograms"]["http.jobs.submit.latency_s"]["count"] \
            >= 1
        assert metrics["histograms"]["job.queue_wait_s"]["count"] == 1
        assert metrics["histograms"]["job.exec_s"]["count"] == 1
        assert metrics["spans"]["job.exec"]["count"] == 1
        assert metrics["spans"]["job.queue_wait"]["count"] == 1
        assert metrics["jobs"]["done"] == 1

    def test_results_before_completion_is_a_structured_409(self, base,
                                                           service):
        # A job that cannot have finished yet: query a fresh submit
        # immediately.  If the runner already won the race, skip.
        code, ack = api(base, "POST", "/jobs",
                        body=small_grid(capacities=(30.0, 40.0, 50.0,
                                                    60.0)))
        code, body = api(base, "GET", f"/jobs/{ack['job_id']}/results")
        if code == 200:  # pragma: no cover - runner outran the request
            pytest.skip("job finished before the results request landed")
        assert code == 409
        assert body["error"]["code"] == "job_not_done"
        wait_for_job(base, ack["job_id"])

    def test_healthz_is_open_and_truthful(self, base):
        assert api(base, "GET", "/healthz") == (200, {"ok": True})
