"""Tests for the supervision layer: sensor guards, degraded modes,
detection of actuation failures, and recovery."""

import math

import pytest

from repro.battery.switch import BatterySelection
from repro.capman.controller import CapmanPolicy
from repro.device.phone import DemandSlice
from repro.faults import (
    EventLog,
    FaultEvent,
    FaultSchedule,
    FaultTrigger,
    RecoveryEvent,
    SensorGuard,
    SupervisedPolicy,
    Supervisor,
    SupervisorConfig,
    SwitchFault,
    TecFault,
    MODE_NORMAL,
    MODE_SAFE,
    MODE_SINGLE_BATTERY,
    MODE_THERMAL_FALLBACK,
)
from repro.sim.discharge import run_discharge_cycle
from repro.workload.generators import GeekbenchWorkload
from repro.workload.traces import record_trace

BIG = BatterySelection.BIG
LITTLE = BatterySelection.LITTLE


class TestSensorGuard:
    def _guard(self):
        return SensorGuard("t", -20.0, 130.0, 10.0, EventLog())

    def test_plausible_passes_through(self):
        g = self._guard()
        assert g.clean(36.5, 0.0) == 36.5
        assert g.rejected == 0

    def test_nan_replaced_by_last_good(self):
        g = self._guard()
        g.clean(40.0, 0.0)
        assert g.clean(float("nan"), 1.0) == 40.0
        assert g.rejected == 1

    def test_out_of_range_rejected(self):
        g = self._guard()
        g.clean(40.0, 0.0)
        assert g.clean(500.0, 1.0) == 40.0
        assert g.clean(-100.0, 2.0) == 40.0

    def test_rate_limit_rejected(self):
        g = self._guard()
        g.clean(40.0, 0.0)
        # +50 K in one second is beyond the 10 K/s credible slew.
        assert g.clean(90.0, 1.0) == 40.0
        # A gradual change passes.
        assert g.clean(45.0, 2.0) == 45.0

    def test_nan_before_any_good_value_clamps(self):
        g = self._guard()
        out = g.clean(float("nan"), 0.0)
        assert math.isfinite(out)

    def test_streak_logged_once(self):
        log = EventLog()
        g = SensorGuard("t", -20.0, 130.0, 10.0, log)
        g.clean(40.0, 0.0)
        for i in range(5):
            g.clean(float("nan"), 1.0 + i)
        assert log.fault_count == 1        # streak start only
        g.clean(41.0, 10.0)
        assert log.recovery_count == 1     # streak end


class TestModes:
    def _sup(self, **overrides):
        cfg = SupervisorConfig(**overrides)
        return Supervisor(cfg)

    def test_starts_normal(self):
        sup = self._sup()
        assert sup.mode == MODE_NORMAL
        assert not sup.switch_locked and not sup.tec_locked

    def test_switch_misses_enter_single_battery(self):
        sup = self._sup(switch_retry_limit=3)
        for i in range(3):
            sup.verify_switch(BIG, LITTLE, False, float(i))
        assert sup.mode == MODE_SINGLE_BATTERY
        assert sup.switch_locked
        assert sup.mode_transitions == 1
        kinds = [e.kind for e in sup.log.events if isinstance(e, FaultEvent)]
        assert "mode-enter:single-battery" in kinds

    def test_depleted_request_excused(self):
        sup = self._sup(switch_retry_limit=2)
        for i in range(10):
            sup.verify_switch(BIG, LITTLE, True, float(i))
        assert sup.mode == MODE_NORMAL

    def test_committed_request_counts_as_honoured(self):
        sup = self._sup(switch_retry_limit=2)
        for i in range(10):
            # Rail observed elsewhere, but the switch did commit the
            # event (protective failover moved it afterwards).
            sup.verify_switch(BIG, LITTLE, False, float(i), committed=True)
        assert sup.mode == MODE_NORMAL

    def test_match_resets_miss_streak(self):
        sup = self._sup(switch_retry_limit=3)
        sup.verify_switch(BIG, LITTLE, False, 0.0)
        sup.verify_switch(BIG, LITTLE, False, 1.0)
        sup.verify_switch(LITTLE, LITTLE, False, 2.0)  # honoured
        sup.verify_switch(BIG, LITTLE, False, 3.0)
        sup.verify_switch(BIG, LITTLE, False, 4.0)
        assert sup.mode == MODE_NORMAL

    def test_probe_recovery(self):
        sup = self._sup(switch_retry_limit=2, switch_probe_interval_s=60.0)
        sup.verify_switch(BIG, LITTLE, False, 0.0)
        sup.verify_switch(BIG, LITTLE, False, 1.0)
        assert sup.switch_locked
        # Probe budget: one probe per interval.
        assert sup.switch_probe_due(100.0)
        assert not sup.switch_probe_due(110.0)
        # The probe is honoured: mode recovers with a RecoveryEvent.
        sup.verify_switch(LITTLE, LITTLE, False, 101.0)
        assert sup.mode == MODE_NORMAL
        assert any(isinstance(e, RecoveryEvent) and e.kind == "mode-exit:single-battery"
                   for e in sup.log.events)

    def test_tec_commanded_but_off_strikes_into_fallback(self):
        sup = self._sup(tec_strike_limit=3)
        for i in range(3):
            sup.verify_tec(True, False, 46.0, float(i))
        assert sup.mode == MODE_THERMAL_FALLBACK
        assert sup.tec_locked

    def test_tec_ineffective_cooling_strikes(self):
        sup = self._sup(tec_strike_limit=2, tec_check_window_s=10.0,
                        tec_temp_rise_margin_c=1.0)
        # Commanded on, observed on, but the hot spot keeps climbing.
        sup.verify_tec(True, True, 45.0, 0.0)
        sup.verify_tec(True, True, 47.0, 11.0)   # strike 1
        sup.verify_tec(True, True, 49.0, 22.0)   # strike 2
        assert sup.mode == MODE_THERMAL_FALLBACK

    def test_tec_recovery_after_good_streak(self):
        sup = self._sup(tec_strike_limit=2)
        sup.verify_tec(True, False, 46.0, 0.0)
        sup.verify_tec(True, False, 46.0, 1.0)
        assert sup.tec_locked
        for i in range(2, 5):
            sup.verify_tec(True, True, 40.0, float(i))
        assert sup.mode == MODE_NORMAL

    def test_safe_mode_when_both_locked(self):
        sup = self._sup(switch_retry_limit=1, tec_strike_limit=1)
        sup.verify_switch(BIG, LITTLE, False, 0.0)
        sup.verify_tec(True, False, 46.0, 0.0)
        assert sup.mode == MODE_SAFE
        assert sup.mode_transitions == 2


class TestThrottle:
    def test_no_throttle_in_normal_mode(self):
        sup = Supervisor()
        d = DemandSlice(cpu_util=95.0, freq_index=3)
        assert sup.throttle(d, 50.0) is d

    def test_throttles_when_tec_locked_and_hot(self):
        cfg = SupervisorConfig(tec_strike_limit=1, throttle_freq_index=0,
                               throttle_cpu_util=60.0)
        sup = Supervisor(cfg)
        sup.verify_tec(True, False, 46.0, 0.0)
        d = DemandSlice(cpu_util=95.0, freq_index=3)
        out = sup.throttle(d, 46.0)
        assert out.freq_index == 0
        assert out.cpu_util == 60.0
        # Other fields untouched.
        assert out.screen_on == d.screen_on

    def test_no_throttle_when_cool(self):
        cfg = SupervisorConfig(tec_strike_limit=1)
        sup = Supervisor(cfg)
        sup.verify_tec(True, False, 46.0, 0.0)
        d = DemandSlice(cpu_util=95.0, freq_index=3)
        assert sup.throttle(d, 30.0) is d


class TestSupervisedRuns:
    """End-to-end: injected faults drive the expected degraded modes."""

    @pytest.fixture(scope="class")
    def hot_trace(self):
        return record_trace(GeekbenchWorkload(seed=2), 600.0)

    def test_stuck_switch_enters_single_battery(self, hot_trace):
        sched = FaultSchedule(
            faults=(SwitchFault(trigger=FaultTrigger(start_s=60.0),
                                stuck=True),),
            seed=1, name="switch-stuck")
        policy = SupervisedPolicy(inner=CapmanPolicy(), schedule=sched)
        res = run_discharge_cycle(policy, hot_trace, max_duration_s=1800.0)
        assert res.final_mode == MODE_SINGLE_BATTERY
        assert res.mode_transitions >= 1
        assert any(e.kind == "mode-enter:single-battery"
                   for e in res.fault_events if isinstance(e, FaultEvent))

    def test_dead_tec_enters_thermal_fallback(self, hot_trace):
        sched = FaultSchedule(
            faults=(TecFault(trigger=FaultTrigger(start_s=60.0),
                             stuck_off=True),),
            seed=1, name="tec-dead")
        policy = SupervisedPolicy(inner=CapmanPolicy(), schedule=sched)
        res = run_discharge_cycle(policy, hot_trace, max_duration_s=1800.0)
        assert res.final_mode == MODE_THERMAL_FALLBACK
        assert any(e.kind == "mode-enter:thermal-fallback"
                   for e in res.fault_events if isinstance(e, FaultEvent))

    def test_unsupervised_wrapper_reports_normal(self, hot_trace):
        sched = FaultSchedule(
            faults=(TecFault(trigger=FaultTrigger(start_s=60.0),
                             stuck_off=True),),
            seed=1, name="tec-dead")
        policy = SupervisedPolicy(inner=CapmanPolicy(), schedule=sched,
                                  supervise=False)
        res = run_discharge_cycle(policy, hot_trace, max_duration_s=900.0)
        # Faults still injected (events logged) but no mode machinery.
        assert res.final_mode == MODE_NORMAL
        assert res.mode_transitions == 0
        assert any(e.source == "tec" for e in res.fault_events)
