"""Tests for the bipartite MDP graph."""

import pytest

from repro.core.graph import ActionNode, MDPGraph
from repro.core.mdp import MDP, random_mdp


def _mdp():
    return MDP(
        states=["u", "v", "w"],
        actions=["a", "b"],
        transitions={
            ("u", "a"): {"v": 0.5, "w": 0.5},
            ("u", "b"): {"w": 1.0},
            ("v", "a"): {"w": 1.0},
        },
        rewards={
            ("u", "a", "v"): 1.0,
            ("u", "a", "w"): 0.0,
            ("v", "a", "w"): 0.5,
        },
    )


class TestGraphStructure:
    def test_node_counts(self):
        g = MDPGraph(_mdp())
        assert g.n_state_nodes == 3
        assert g.n_action_nodes == 3

    def test_decision_edges(self):
        g = MDPGraph(_mdp())
        names = {(n.state, n.action) for n in g.out_actions("u")}
        assert names == {("u", "a"), ("u", "b")}

    def test_transition_distribution(self):
        g = MDPGraph(_mdp())
        node = ActionNode("u", "a")
        assert g.successor_dist(node) == {"v": 0.5, "w": 0.5}

    def test_mean_reward(self):
        g = MDPGraph(_mdp())
        assert g.mean_reward(ActionNode("u", "a")) == pytest.approx(0.5)

    def test_absorbing_states(self):
        g = MDPGraph(_mdp())
        assert g.absorbing_states == ["w"]
        assert g.is_absorbing("w")
        assert not g.is_absorbing("u")

    def test_out_degrees(self):
        g = MDPGraph(_mdp())
        assert g.max_action_out_degree() == 2  # ("u","a") has 2 successors
        assert g.max_state_out_degree() == 2  # u has 2 actions

    def test_indices_are_dense(self):
        g = MDPGraph(_mdp())
        assert sorted(g.state_index(s) for s in g.state_nodes) == [0, 1, 2]
        assert sorted(g.action_index(n) for n in g.action_nodes) == [0, 1, 2]


class TestActionFilter:
    def test_filter_prunes_action_nodes(self):
        # Keep only action nodes that can reach state "w".
        g = MDPGraph(_mdp(), action_filter=lambda s, a, dist: "w" in dist)
        assert g.n_action_nodes == 3
        g2 = MDPGraph(_mdp(), action_filter=lambda s, a, dist: "v" in dist)
        assert g2.n_action_nodes == 1

    def test_filtered_state_keeps_no_decisions(self):
        g = MDPGraph(_mdp(), action_filter=lambda s, a, dist: False)
        assert g.n_action_nodes == 0
        # All states become absorbing in the pruned view.
        assert len(g.absorbing_states) == 3

    def test_one_to_one_with_mdp(self):
        mdp = random_mdp(6, 3, seed=9)
        g = MDPGraph(mdp)
        assert g.n_action_nodes == len(mdp.transitions)
        for node in g.action_nodes:
            assert g.successor_dist(node) == mdp.successors(node.state, node.action)
