"""Tests for the control-step slicing engine."""

import pytest

from repro.device.phone import DemandSlice
from repro.sim.engine import iter_control_steps
from repro.workload.base import Segment


def _segments():
    return [
        Segment(DemandSlice(cpu_util=10.0), 2.5),
        Segment(DemandSlice(cpu_util=90.0), 1.0),
    ]


class TestSlicing:
    def test_slices_respect_control_dt(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.dt for s in steps] == [1.0, 1.0, 0.5, 1.0]

    def test_times_are_cumulative(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.start_s for s in steps] == [0.0, 1.0, 2.0, 2.5]

    def test_segment_start_flag(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.segment_start for s in steps] == [True, False, False, True]

    def test_syscall_only_on_first_step(self):
        from repro.device.syscalls import default_vocabulary, SyscallClass

        vocab = default_vocabulary()
        call = vocab.representative(SyscallClass.WAKE_UP)
        segs = [Segment(DemandSlice(cpu_util=10.0), 3.0, call)]
        steps = list(iter_control_steps(segs, control_dt=1.0))
        assert steps[0].syscall is call
        assert all(s.syscall is None for s in steps[1:])

    def test_max_duration_truncates(self):
        steps = list(iter_control_steps(_segments(), 1.0, max_duration_s=1.5))
        assert sum(s.dt for s in steps) == pytest.approx(1.5)

    def test_large_control_dt_keeps_segment_boundaries(self):
        steps = list(iter_control_steps(_segments(), control_dt=100.0))
        assert [s.dt for s in steps] == [2.5, 1.0]

    def test_invalid_control_dt(self):
        with pytest.raises(ValueError):
            list(iter_control_steps(_segments(), control_dt=0.0))

    def test_demand_carried_through(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert steps[0].segment.demand.cpu_util == 10.0
        assert steps[-1].segment.demand.cpu_util == 90.0


class TestFloatDrift:
    """Regressions for the ``now += dt`` accumulation drift.

    The old loop advanced time by repeated addition; over an hour of
    0.1 s steps the rounding residue exceeded the 1e-9 tail threshold
    and a spurious ~2e-9 s step appeared at the segment boundary.
    """

    def test_one_hour_at_100ms_has_exact_step_count(self):
        segs = [Segment(DemandSlice(cpu_util=10.0), 3600.0)]
        steps = list(iter_control_steps(segs, control_dt=0.1))
        assert len(steps) == 36000
        assert min(s.dt for s in steps) > 1e-6

    def test_24h_trace_has_no_spurious_steps(self):
        segs = [Segment(DemandSlice(cpu_util=10.0), 3600.0) for _ in range(24)]
        steps = list(iter_control_steps(segs, control_dt=0.1))
        assert len(steps) == 24 * 36000
        assert min(s.dt for s in steps) > 1e-6
        assert steps[-1].start_s + steps[-1].dt == pytest.approx(86400.0, abs=1e-6)

    def test_many_irregular_segments_do_not_drift(self):
        segs = [Segment(DemandSlice(cpu_util=10.0), 7.3) for _ in range(13000)]
        steps = list(iter_control_steps(segs, 1.0, max_duration_s=86400.0))
        assert all(s.dt > 1e-6 for s in steps)
        assert sum(s.dt for s in steps) == pytest.approx(86400.0, abs=1e-6)
        starts = [s.start_s for s in steps if s.segment_start]
        # Segment bases follow the compensated sum, not drifted floats.
        assert starts[-1] == pytest.approx(7.3 * (len(starts) - 1), abs=1e-6)

    def test_max_duration_never_emits_sliver_step(self):
        segs = [Segment(DemandSlice(cpu_util=10.0), 10.0)]
        steps = list(iter_control_steps(segs, 0.1, max_duration_s=3.0))
        assert sum(s.dt for s in steps) == pytest.approx(3.0)
        assert all(s.dt > 1e-6 for s in steps)
