"""Tests for the control-step slicing engine."""

import pytest

from repro.device.phone import DemandSlice
from repro.sim.engine import iter_control_steps
from repro.workload.base import Segment


def _segments():
    return [
        Segment(DemandSlice(cpu_util=10.0), 2.5),
        Segment(DemandSlice(cpu_util=90.0), 1.0),
    ]


class TestSlicing:
    def test_slices_respect_control_dt(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.dt for s in steps] == [1.0, 1.0, 0.5, 1.0]

    def test_times_are_cumulative(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.start_s for s in steps] == [0.0, 1.0, 2.0, 2.5]

    def test_segment_start_flag(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert [s.segment_start for s in steps] == [True, False, False, True]

    def test_syscall_only_on_first_step(self):
        from repro.device.syscalls import default_vocabulary, SyscallClass

        vocab = default_vocabulary()
        call = vocab.representative(SyscallClass.WAKE_UP)
        segs = [Segment(DemandSlice(cpu_util=10.0), 3.0, call)]
        steps = list(iter_control_steps(segs, control_dt=1.0))
        assert steps[0].syscall is call
        assert all(s.syscall is None for s in steps[1:])

    def test_max_duration_truncates(self):
        steps = list(iter_control_steps(_segments(), 1.0, max_duration_s=1.5))
        assert sum(s.dt for s in steps) == pytest.approx(1.5)

    def test_large_control_dt_keeps_segment_boundaries(self):
        steps = list(iter_control_steps(_segments(), control_dt=100.0))
        assert [s.dt for s in steps] == [2.5, 1.0]

    def test_invalid_control_dt(self):
        with pytest.raises(ValueError):
            list(iter_control_steps(_segments(), control_dt=0.0))

    def test_demand_carried_through(self):
        steps = list(iter_control_steps(_segments(), control_dt=1.0))
        assert steps[0].segment.demand.cpu_util == 10.0
        assert steps[-1].segment.demand.cpu_util == 90.0
