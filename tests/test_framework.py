"""Tests for the Capman real-time facade."""

import pytest

from repro.battery.chemistry import LCO
from repro.battery.pack import SingleBatteryPack
from repro.battery.switch import BatterySelection
from repro.capman.framework import Capman
from repro.device.phone import DemandSlice, Phone
from repro.device.syscalls import SyscallClass, default_vocabulary


@pytest.fixture
def capman():
    return Capman.create(capacity_mah=300.0)


class TestConstruction:
    def test_create_builds_pack(self, capman):
        assert capman.state_of_charge == pytest.approx(1.0)
        assert not capman.depleted

    def test_rejects_single_battery_phone(self):
        phone = Phone(pack=SingleBatteryPack.from_chemistry(LCO, 300.0))
        with pytest.raises(TypeError):
            Capman(phone)


class TestTicks:
    def test_tick_advances_physics(self, capman):
        tick = capman.tick(DemandSlice(cpu_util=50.0, screen_on=True), 2.0)
        assert tick.outcome.energy_j > 0.0
        assert capman.phone.clock_s == 2.0
        assert capman.state_of_charge < 1.0

    def test_burst_routes_to_little(self, capman):
        burst = DemandSlice(cpu_util=95.0, freq_index=2, screen_on=True,
                            wifi_kbps=400.0)
        vocab = default_vocabulary()
        wake = vocab.representative(SyscallClass.WAKE_UP)
        tick = capman.tick(burst, 2.0, syscall=wake)
        assert tick.selection is BatterySelection.LITTLE

    def test_gentle_routes_to_big(self, capman):
        gentle = DemandSlice(cpu_util=5.0, screen_on=True)
        tick = capman.tick(gentle, 2.0)
        assert tick.selection is BatterySelection.BIG

    def test_learning_accumulates_online(self, capman):
        vocab = default_vocabulary()
        wake = vocab.representative(SyscallClass.WAKE_UP)
        suspend = vocab.representative(SyscallClass.SUSPEND)
        busy = DemandSlice(cpu_util=90.0, freq_index=2, screen_on=True)
        idle = DemandSlice()
        for i in range(40):
            if i % 2:
                capman.tick(busy, 2.0, syscall=wake)
            else:
                capman.tick(idle, 2.0, syscall=suspend)
        assert capman.policy.profiler.n_observations >= 20
        assert capman.policy.scheduler is not None

    def test_tec_engages_when_hot(self, capman):
        capman.phone.thermal.set_temperature("cpu", 46.0)
        tick = capman.tick(DemandSlice(cpu_util=90.0, screen_on=True), 2.0)
        assert tick.tec_on

    def test_control_signal_grows_with_switches(self, capman):
        burst = DemandSlice(cpu_util=95.0, freq_index=2, screen_on=True,
                            wifi_kbps=400.0)
        gentle = DemandSlice(cpu_util=5.0, screen_on=True)
        for i in range(10):
            capman.tick(burst if i % 2 else gentle, 2.0)
        signal = capman.control_signal()
        assert len(signal) >= 2
        assert {v for _, v in signal} <= {3.5, 0.3}

    def test_runs_to_depletion(self):
        capman = Capman.create(capacity_mah=8.0)
        demand = DemandSlice(cpu_util=60.0, screen_on=True)
        steps = 0
        while not capman.depleted and steps < 20_000:
            capman.tick(demand, 5.0)
            steps += 1
        assert capman.state_of_charge < 0.05
