"""Tests for the system-call vocabulary (MDP actions)."""

import pytest

from repro.device.states import CpuState, DeviceState, ScreenState, WifiState
from repro.device.syscalls import (
    SyscallClass,
    SyscallVocabulary,
    default_vocabulary,
)


class TestVocabulary:
    def test_paper_scale(self):
        """The paper records over 200 system calls."""
        assert len(default_vocabulary()) > 200

    def test_unique_names(self):
        vocab = default_vocabulary()
        names = [c.name for c in vocab]
        assert len(names) == len(set(names))

    def test_lookup(self):
        vocab = default_vocabulary()
        call = vocab.lookup("input_event")
        assert call.klass is SyscallClass.WAKE_UP

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            default_vocabulary().lookup("not_a_call")

    def test_every_class_has_calls(self):
        vocab = default_vocabulary()
        for klass in SyscallClass:
            assert vocab.calls_of(klass)

    def test_representative_is_stable(self):
        vocab = default_vocabulary()
        a = vocab.representative(SyscallClass.WAKE_UP)
        b = vocab.representative(SyscallClass.WAKE_UP)
        assert a == b

    def test_variant_scaling(self):
        small = SyscallVocabulary(variants_per_name=1)
        big = SyscallVocabulary(variants_per_name=4)
        assert len(big) == 4 * len(small)

    def test_invalid_variants_rejected(self):
        with pytest.raises(ValueError):
            SyscallVocabulary(variants_per_name=0)


class TestEffects:
    def test_wake_up_effect(self):
        vocab = default_vocabulary()
        asleep = DeviceState()
        awake = vocab.apply(vocab.representative(SyscallClass.WAKE_UP), asleep)
        assert awake.cpu is CpuState.C0
        assert awake.screen is ScreenState.ON

    def test_suspend_effect(self):
        vocab = default_vocabulary()
        busy = DeviceState(CpuState.C0, ScreenState.ON, WifiState.SEND)
        idle = vocab.apply(vocab.representative(SyscallClass.SUSPEND), busy)
        assert idle.cpu is CpuState.SLEEP
        assert idle.screen is ScreenState.OFF
        assert idle.wifi is WifiState.IDLE

    def test_timer_is_noop(self):
        vocab = default_vocabulary()
        s = DeviceState(CpuState.C1, ScreenState.ON)
        assert vocab.apply(vocab.representative(SyscallClass.TIMER), s) == s

    def test_net_send_only_touches_wifi(self):
        vocab = default_vocabulary()
        s = DeviceState(CpuState.C1, ScreenState.ON, WifiState.ACCESS)
        out = vocab.apply(vocab.representative(SyscallClass.NET_SEND), s)
        assert out.wifi is WifiState.SEND
        assert out.cpu is s.cpu
        assert out.screen is s.screen

    def test_battery_untouched_by_syscalls(self):
        vocab = default_vocabulary()
        s = DeviceState()
        for klass in SyscallClass:
            out = vocab.apply(vocab.representative(klass), s)
            assert out.battery is s.battery
