"""Tests for the parallel scenario-sweep engine."""

import os
import pickle
import signal
import threading
import time

import pytest

from repro.battery.aging import AgingModel
from repro.capman.baselines import DualPolicy, PracticePolicy
from repro.sim.daily import MultiDayResult
from repro.sim.sweep import (
    CellFailure,
    CellTimeoutError,
    ScenarioRunner,
    SweepCache,
    SweepSpec,
    cell_key,
)
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


class RaisingPolicy(DualPolicy):
    """A policy whose cell deterministically raises inside the simulator."""

    def build_pack(self):
        raise RuntimeError("synthetic cell failure")


class WorkerKillerPolicy(DualPolicy):
    """A policy that kills its worker process outright (OOM-kill stand-in).

    Only safe under process fan-out -- running it serially would kill
    the test process itself.
    """

    def build_pack(self):
        os.kill(os.getpid(), signal.SIGKILL)


class SlowPolicy(DualPolicy):
    """A policy that hangs long enough to blow a short per-cell timeout."""

    def build_pack(self):
        time.sleep(30.0)
        return super().build_pack()


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


def _spec(trace, capacity=40.0, **kwargs):
    defaults = dict(
        policies={
            "Dual": DualPolicy(capacity_mah=capacity),
            "Practice": PracticePolicy(capacity_mah=2 * capacity),
        },
        traces={"Video": trace},
        max_duration_s=900.0,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


class TestSpec:
    def test_expand_is_deterministic_and_ordered(self, trace):
        spec = _spec(trace, control_dts=(1.0, 2.0), ambients_c=(20.0, 30.0))
        cells_a = spec.expand()
        cells_b = spec.expand()
        assert [c.label for c in cells_a] == [c.label for c in cells_b]
        assert [c.index for c in cells_a] == list(range(len(spec)))
        assert len(cells_a) == 2 * 1 * 1 * 2 * 2

    def test_rejects_empty_axes(self, trace):
        with pytest.raises(ValueError):
            SweepSpec(policies={}, traces={"Video": trace})

    def test_rejects_unknown_kind(self, trace):
        with pytest.raises(ValueError):
            _spec(trace, kind="nope")

    def test_keys_distinct_per_cell(self, trace):
        spec = _spec(trace, control_dts=(1.0, 2.0))
        keys = {cell_key(c, salt="s") for c in spec.expand()}
        assert len(keys) == len(spec)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", [2, os.cpu_count() or 1])
    def test_results_identical_to_serial(self, trace, workers):
        spec = _spec(trace)
        serial = ScenarioRunner(workers=1).run(spec)
        parallel = ScenarioRunner(workers=workers).run(spec)
        assert _cell_bytes(serial) == _cell_bytes(parallel)
        assert [c.label for c in serial.cells] == [c.label for c in parallel.cells]

    def test_serial_repeat_identical(self, trace):
        spec = _spec(trace)
        a = ScenarioRunner(workers=1).run(spec)
        b = ScenarioRunner(workers=1).run(spec)
        assert _cell_bytes(a) == _cell_bytes(b)

    def test_policy_template_not_mutated(self, trace):
        spec = _spec(trace)
        before = pickle.dumps(spec.policies["Dual"])
        ScenarioRunner(workers=1).run(spec)
        assert pickle.dumps(spec.policies["Dual"]) == before


class TestCache:
    def test_hit_on_identical_spec(self, trace, tmp_path):
        spec = _spec(trace)
        cold = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        warm = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == len(spec)
        assert warm.stats.cache_hits == len(spec)
        assert warm.stats.cells_computed == 0
        assert _cell_bytes(cold) == _cell_bytes(warm)

    def test_miss_on_changed_policy_parameter(self, trace, tmp_path):
        ScenarioRunner(workers=1, cache=tmp_path).run(_spec(trace))
        changed = _spec(trace, capacity=44.0)
        rerun = ScenarioRunner(workers=1, cache=tmp_path).run(changed)
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.cache_misses == len(changed)

    def test_miss_on_changed_code_salt(self, trace, tmp_path):
        spec = _spec(trace)
        ScenarioRunner(workers=1, cache=tmp_path, salt="v1").run(spec)
        rerun = ScenarioRunner(workers=1, cache=tmp_path, salt="v2").run(spec)
        assert rerun.stats.cache_hits == 0

    def test_corrupted_entry_recovers(self, trace, tmp_path):
        spec = _spec(trace)
        good = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        # Corrupt every cache entry on disk.
        entries = list(tmp_path.glob("*.pkl"))
        assert entries
        for path in entries:
            path.write_bytes(b"not a pickle")
        recovered = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        assert recovered.stats.cache_hits == 0
        assert recovered.stats.cache_misses == len(spec)
        assert _cell_bytes(recovered) == _cell_bytes(good)
        # And the cache is healthy again afterwards.
        warm = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        assert warm.stats.cache_hits == len(spec)

    def test_cache_object_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("missing") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert len(cache) == 1


class TestStats:
    def test_throughput_accounting(self, trace):
        spec = _spec(trace)
        out = ScenarioRunner(workers=1).run(spec)
        stats = out.stats
        assert stats.cells_total == len(spec) == stats.cells_computed
        assert stats.steps_total > 0
        assert stats.steps_per_sec > 0
        assert stats.total_wall_s > 0
        assert stats.compute_wall_s > 0
        d = stats.as_dict()
        assert d["steps_total"] == stats.steps_total
        assert "steps_per_sec" in d

    def test_results_have_deterministic_wall_time(self, trace):
        out = ScenarioRunner(workers=1).run(_spec(trace))
        assert all(r.wall_time_s == 0.0 for r in out.results)
        assert all(r.step_count > 0 for r in out.results)


class TestLookup:
    def test_get_and_by_policy(self, trace):
        out = ScenarioRunner(workers=1).run(_spec(trace))
        dual = out.get(policy="Dual")
        assert dual.policy_name == "Dual"
        by = out.by_policy(trace="Video")
        assert set(by) == {"Dual", "Practice"}
        with pytest.raises(KeyError):
            out.get(policy="nope")
        with pytest.raises(KeyError):
            out.get(bogus_axis="x")

    def test_get_rejects_ambiguous(self, trace):
        out = ScenarioRunner(workers=1).run(_spec(trace))
        with pytest.raises(KeyError):
            out.get(trace="Video")  # two policies match


class TestFailureContainment:
    """One broken scenario must never abort (or poison) the grid."""

    def _mixed_spec(self, trace, bad_policy, capacity=40.0):
        return SweepSpec(
            policies={
                "Good": DualPolicy(capacity_mah=capacity),
                "Bad": bad_policy,
                "AlsoGood": PracticePolicy(capacity_mah=2 * capacity),
            },
            traces={"Video": trace},
            max_duration_s=900.0,
        )

    def test_raising_cell_reported_not_raised(self, trace):
        spec = self._mixed_spec(trace, RaisingPolicy(capacity_mah=40.0))
        out = ScenarioRunner(workers=1).run(spec)
        assert out.stats.cells_failed == 1
        failures = out.failures
        assert len(failures) == 1
        cell, failure = failures[0]
        assert cell.policy_key == "Bad"
        assert failure.error_type == "RuntimeError"
        assert "synthetic cell failure" in failure.message
        assert "build_pack" in failure.traceback
        assert str(failure).startswith(cell.label)
        # The healthy cells produced real results.
        assert len(out.succeeded) == 2
        assert all(r.service_time_s > 0 for _, r in out.succeeded)

    def test_raising_cell_matches_healthy_serial_results(self, trace):
        spec = self._mixed_spec(trace, RaisingPolicy(capacity_mah=40.0))
        healthy = SweepSpec(
            policies={"Good": DualPolicy(capacity_mah=40.0)},
            traces={"Video": trace}, max_duration_s=900.0)
        mixed = ScenarioRunner(workers=1).run(spec)
        alone = ScenarioRunner(workers=1).run(healthy)
        assert (pickle.dumps(mixed.get(policy="Good"))
                == pickle.dumps(alone.get(policy="Good")))

    def test_raising_cell_parallel_identical_to_serial(self, trace):
        spec = self._mixed_spec(trace, RaisingPolicy(capacity_mah=40.0))
        serial = ScenarioRunner(workers=1).run(spec)
        parallel = ScenarioRunner(workers=2).run(spec)
        assert _cell_bytes(serial) == _cell_bytes(parallel)

    def test_killed_worker_contained_and_healthy_cells_survive(self, trace):
        spec = self._mixed_spec(trace, WorkerKillerPolicy(capacity_mah=40.0))
        out = ScenarioRunner(workers=2, retries=1).run(spec)
        assert out.stats.cells_failed == 1
        [(cell, failure)] = out.failures
        assert cell.policy_key == "Bad"
        assert failure.attempts == 2       # initial try + 1 retry
        assert out.stats.cell_retries >= 1
        # Healthy cells completed with valid, byte-stable results.
        healthy = SweepSpec(
            policies={"Good": DualPolicy(capacity_mah=40.0),
                      "AlsoGood": PracticePolicy(capacity_mah=80.0)},
            traces={"Video": trace}, max_duration_s=900.0)
        alone = ScenarioRunner(workers=1).run(healthy)
        assert (pickle.dumps(out.get(policy="Good"))
                == pickle.dumps(alone.get(policy="Good")))
        assert (pickle.dumps(out.get(policy="AlsoGood"))
                == pickle.dumps(alone.get(policy="AlsoGood")))

    def test_cell_timeout_reported(self, trace):
        spec = self._mixed_spec(trace, SlowPolicy(capacity_mah=40.0))
        out = ScenarioRunner(workers=1, cell_timeout_s=1.0).run(spec)
        [(cell, failure)] = out.failures
        assert cell.policy_key == "Bad"
        assert failure.error_type == "CellTimeoutError"
        assert len(out.succeeded) == 2

    def test_failures_never_cached(self, trace, tmp_path):
        spec = self._mixed_spec(trace, RaisingPolicy(capacity_mah=40.0))
        first = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        assert first.stats.cells_failed == 1
        second = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        # Healthy cells hit; the failed cell is recomputed every run.
        assert second.stats.cache_hits == 2
        assert second.stats.cache_misses == 1
        assert second.stats.cells_failed == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ScenarioRunner(retries=-1)

    def test_failure_str_and_outcome_split(self, trace):
        spec = self._mixed_spec(trace, RaisingPolicy(capacity_mah=40.0))
        out = ScenarioRunner(workers=1).run(spec)
        bad = out.get(policy="Bad")
        assert isinstance(bad, CellFailure)
        assert "RuntimeError" in str(bad)


class TestDailyKind:
    def test_daily_cells_run_and_cache(self, trace, tmp_path):
        spec = SweepSpec(
            policies={"Dual": DualPolicy(capacity_mah=60.0)},
            traces={"Video": trace},
            kind="daily",
            max_duration_s=6 * 3600.0,
            extra={"n_days": 2, "aging": AgingModel(rate_stress_weight=2.0)},
        )
        cold = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        res = cold.get(policy="Dual")
        assert isinstance(res, MultiDayResult)
        assert len(res.days) == 2
        assert res.step_count > 0 and res.wall_time_s == 0.0
        warm = ScenarioRunner(workers=1, cache=tmp_path).run(spec)
        assert warm.stats.cache_hits == 1
        assert pickle.dumps(warm.results[0]) == pickle.dumps(cold.results[0])


class TestProgress:
    """The thread-safe mid-run progress snapshot (service poller API)."""

    def test_completed_run_reports_every_cell_done(self, trace):
        runner = ScenarioRunner(workers=1)
        assert runner.progress().total == 0  # empty before any run
        runner.run(_spec(trace))
        progress = runner.progress()
        assert progress.finished
        assert progress.total == progress.done == 2
        assert progress.queued == progress.running == progress.failed == 0
        assert set(progress.cells.values()) == {"done"}
        assert set(progress.labels) == set(progress.cells)

    def test_snapshot_is_pollable_from_another_thread_mid_run(self, trace):
        from repro.testing import SlowDualPolicy

        spec = SweepSpec(
            policies={f"S{i}": SlowDualPolicy(capacity_mah=30.0 + i,
                                              delay_s=0.5)
                      for i in range(2)},
            traces={"Video": trace},
            max_duration_s=900.0,
        )
        runner = ScenarioRunner(workers=1)
        box = {}
        thread = threading.Thread(target=lambda: box.update(
            result=runner.run(spec)))
        thread.start()
        try:
            # Wait for the grid to expand, then catch it in flight:
            # with two 0.5 s cells the window is wide.
            deadline = time.monotonic() + 30.0
            saw_running = False
            while time.monotonic() < deadline:
                progress = runner.progress()
                if progress.total == 2 and not progress.finished:
                    counted = (progress.queued + progress.running
                               + progress.done + progress.failed)
                    assert counted == progress.total
                    saw_running = saw_running or progress.running >= 1
                if progress.total == 2 and progress.finished:
                    break
                time.sleep(0.005)
            assert saw_running, "never observed a cell in 'running'"
        finally:
            thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert runner.progress().finished
        assert len(box["result"].results) == 2

    def test_cache_hits_and_failures_are_distinct_states(self, trace,
                                                         tmp_path):
        spec = SweepSpec(
            policies={"Dual": DualPolicy(capacity_mah=40.0),
                      "Bad": RaisingPolicy(capacity_mah=40.0)},
            traces={"Video": trace},
            max_duration_s=900.0,
        )
        runner = ScenarioRunner(workers=1, cache=tmp_path)
        runner.run(spec)
        first = runner.progress()
        assert first.done == 1 and first.failed == 1
        assert sorted(first.cells.values()) == ["done", "failed"]

        again = ScenarioRunner(workers=1, cache=tmp_path)
        again.run(spec)
        second = again.progress()
        # The good cell is a cache hit; the failure was never cached.
        assert second.cells[first_index_of(second, "cached")] == "cached"
        assert sorted(second.cells.values()) == ["cached", "failed"]
        assert second.done == 1 and second.failed == 1

    def test_as_dict_is_json_shaped(self, trace):
        runner = ScenarioRunner(workers=1)
        runner.run(_spec(trace))
        payload = runner.progress().as_dict()
        assert payload["finished"] is True
        assert payload["cells"] == {"0": "done", "1": "done"}
        import json

        json.dumps(payload)  # must be serialisable as-is


def first_index_of(progress, state):
    """The lowest cell index currently in ``state``."""
    return min(i for i, s in progress.cells.items() if s == state)
