"""Unit tests for the shared physics kernels (satellite of the fleet PR).

The fleet's bit-for-bit contract rests on two pillars, each pinned
here:

1. **Invocation-shape invariance.**  Every kernel produces identical
   bits whether called with Python floats or with ``(N,)`` float64
   arrays -- the scalar object graph and the fleet batch literally
   share the arithmetic.
2. **Delegation.**  The scalar classes (:class:`Cell`,
   :class:`Supercapacitor`, :class:`ThermalNetwork`) actually route
   through these kernels, so there is exactly one copy of the maths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.battery import kinetics as K
from repro.battery.cell import Cell
from repro.battery.chemistry import pick_big_little
from repro.battery.supercap import Supercapacitor
from repro.thermal.conduction import (euler_conduction, stable_substep,
                                      substep_count)
from repro.thermal.rc_network import phone_thermal_network

RNG = np.random.default_rng(20260808)


def bits(x: float) -> int:
    return np.float64(x).view(np.uint64).item()


def assert_scalar_matches_array(fn, columns, n=64):
    """``fn`` elementwise over arrays == ``fn`` per scalar, bitwise."""
    arrays = [np.asarray(col, dtype=np.float64) for col in columns]
    batched = fn(*arrays)
    if not isinstance(batched, tuple):
        batched = (batched,)
    for i in range(len(arrays[0])):
        scalar = fn(*(float(col[i]) for col in arrays))
        if not isinstance(scalar, tuple):
            scalar = (scalar,)
        for out_s, out_a in zip(scalar, batched):
            assert bits(out_s) == bits(float(out_a[i])), (
                f"row {i}: scalar {out_s!r} != array {out_a[i]!r}")


# ----------------------------------------------------------------------
# Dispatch helpers
# ----------------------------------------------------------------------
def test_np_exp_is_invocation_shape_invariant():
    """The fleet's exp convention: one np.exp element == scalar np.exp."""
    xs = np.concatenate([RNG.uniform(-30.0, 5.0, 512), [0.0, -0.0, -24.0]])
    vec = np.exp(xs)
    for i, x in enumerate(xs):
        assert bits(float(np.exp(float(x)))) == bits(float(vec[i]))


def test_pymax_pymin_match_python_builtins_including_signed_zero():
    pairs = [(-0.0, 0.0), (0.0, -0.0), (1.0, 1.0), (2.0, 3.0), (3.0, 2.0),
             (-1.5, -1.5)]
    for a, b in pairs:
        assert bits(K.pymax(a, b)) == bits(max(a, b))
        assert bits(K.pymin(a, b)) == bits(min(a, b))
    a = np.array([p[0] for p in pairs])
    b = np.array([p[1] for p in pairs])
    vmax, vmin = K.pymax(a, b), K.pymin(a, b)
    for i, (x, y) in enumerate(pairs):
        assert bits(float(vmax[i])) == bits(max(x, y))
        assert bits(float(vmin[i])) == bits(min(x, y))


def test_sqrt_scalar_and_array_agree():
    xs = RNG.uniform(0.0, 50.0, 256)
    vec = np.sqrt(xs)
    for i, x in enumerate(xs):
        assert bits(math.sqrt(float(x))) == bits(float(vec[i]))


# ----------------------------------------------------------------------
# Electrical kernels: scalar call == array call, bitwise
# ----------------------------------------------------------------------
def test_state_of_charge_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.state_of_charge,
        [RNG.uniform(0.0, 900.0, n), RNG.uniform(0.0, 900.0, n),
         RNG.uniform(100.0, 2000.0, n)])


def test_ocv_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.ocv, [RNG.uniform(0.0, 1.0, n), np.full(n, 2.5), np.full(n, 3.65)])


def test_internal_resistance_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.internal_resistance,
        [RNG.uniform(0.0, 1.0, n), RNG.uniform(-5.0, 60.0, n),
         RNG.uniform(0.01, 0.3, n), np.full(n, 0.006)])


def test_current_for_power_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.current_for_power,
        [RNG.uniform(-0.5, 12.0, n), RNG.uniform(2.0, 4.2, n),
         RNG.uniform(0.02, 0.4, n)])


def test_max_power_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.max_power,
        [RNG.uniform(2.0, 4.2, n), RNG.uniform(0.02, 0.4, n),
         RNG.uniform(0.5, 8.0, n)])


def test_rate_loss_shape_invariant():
    n = 128
    i_sus = RNG.uniform(0.0, 2.0, n)
    i_sus[:8] = 0.0  # strained branch
    assert_scalar_matches_array(
        K.rate_loss,
        [RNG.uniform(-0.1, 3.0, n), i_sus, RNG.uniform(0.0, 0.4, n)])


def test_step_transient_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.step_transient,
        [RNG.uniform(-0.05, 0.2, n), RNG.uniform(0.0, 3.0, n),
         RNG.uniform(0.01, 0.2, n), RNG.uniform(0.1, 0.999, n)])


def test_supercap_smooth_shape_invariant():
    n = 128
    assert_scalar_matches_array(
        K.supercap_smooth,
        [RNG.uniform(0.0, 6.0, n), np.full(n, 2.0),
         RNG.uniform(1.0, 4.2, n), np.full(n, 5.0), np.full(n, 4.2),
         np.full(n, 0.02), np.full(n, 1.5)])


def test_step_wells_shape_invariant():
    n = 64
    y1 = RNG.uniform(0.0, 500.0, n)
    y2 = RNG.uniform(0.0, 800.0, n)
    cur = RNG.uniform(0.0, 3.0, n)
    h = np.full(n, 0.5)
    c = np.full(n, 0.5)
    k = np.full(n, 0.002)
    a1, a2 = K.step_wells(y1, y2, cur, h, 4, c, k)
    for i in range(n):
        s1, s2 = K.step_wells(float(y1[i]), float(y2[i]), float(cur[i]),
                              0.5, 4, 0.5, 0.002)
        assert bits(s1) == bits(float(a1[i]))
        assert bits(s2) == bits(float(a2[i]))


def test_well_substeps_array_matches_scalar():
    dts = RNG.uniform(0.05, 900.0, 256)
    cs = RNG.uniform(0.2, 0.8, 256)
    ks = RNG.uniform(1e-5, 0.5, 256)
    vec = K.well_substeps_array(dts, cs, ks)
    for i in range(len(dts)):
        assert K.well_substeps(float(dts[i]), float(cs[i]), float(ks[i])) \
            == int(vec[i])


def test_transient_alpha_is_np_exp_and_memoised():
    assert bits(K.transient_alpha(2.0, 37.0)) \
        == bits(float(np.exp(np.float64(-2.0 / 37.0))))
    assert K.transient_alpha(2.0, 37.0) is K.transient_alpha(2.0, 37.0) \
        or K.transient_alpha(2.0, 37.0) == K.transient_alpha(2.0, 37.0)


# ----------------------------------------------------------------------
# Conduction kernel
# ----------------------------------------------------------------------
def test_substep_count_matches_array_formula():
    sub = 13.3
    for dt in (0.1, 1.0, 2.0, 13.3, 40.0, 1e7):
        vec = int(np.minimum(np.maximum(np.ceil(np.float64(dt) / sub), 1.0),
                             100_000.0))
        assert substep_count(dt, sub) == vec


def test_euler_conduction_float_vs_array_columns():
    links = [(0, 2, 0.023), (0, 1, 0.008), (1, 2, 0.05), (2, 3, 0.35)]
    active = [(0, 12.0), (1, 60.0), (2, 90.0)]
    n = 32
    temps = [RNG.uniform(20.0, 60.0, n) for _ in range(4)]
    inj = [RNG.uniform(-1.0, 3.0, n) for _ in range(3)] + [0.0]
    out = euler_conduction([t.copy() for t in temps], inj, links, active,
                           3, np.full(n, 0.7))
    for i in range(n):
        scalar = euler_conduction(
            [float(t[i]) for t in temps],
            [float(c[i]) if isinstance(c, np.ndarray) else c for c in inj],
            links, active, 3, 0.7)
        for node in range(4):
            assert bits(scalar[node]) == bits(float(out[node][i]))


def test_stable_substep_matches_network():
    net = phone_thermal_network()
    names, links, active, sub = net.compiled_topology()
    caps = {"cpu": 12.0, "battery": 60.0, "surface": 90.0,
            "ambient": math.inf}
    raw_links = [("cpu", "surface", 0.023), ("cpu", "battery", 0.008),
                 ("battery", "surface", 0.05), ("surface", "ambient", 0.35)]
    assert sub == stable_substep(caps, raw_links)
    assert names == ["cpu", "battery", "surface", "ambient"]


# ----------------------------------------------------------------------
# Delegation: the scalar objects route through the kernels
# ----------------------------------------------------------------------
def test_cell_observations_delegate_to_kernels():
    big_chem, _ = pick_big_little()
    cell = Cell(big_chem, capacity_mah=120.0)
    cell.draw_power(1.2, 5.0)  # perturb state off the initial point
    soc = cell.state_of_charge
    assert bits(soc) == bits(K.state_of_charge(
        cell._available, cell._bound, cell.capacity_amp_s))
    assert bits(cell.open_circuit_voltage()) == bits(K.ocv(
        soc, big_chem.cutoff_voltage, big_chem.full_voltage))
    assert bits(cell.internal_resistance()) == bits(K.internal_resistance(
        soc, cell.temperature_c, big_chem.internal_resistance,
        big_chem.resistance_temp_coeff))
    veff = cell.open_circuit_voltage() - cell._v_transient
    assert bits(cell.max_power_w()) == bits(K.max_power(
        veff, cell.internal_resistance(), cell.max_current))
    assert bits(cell.sustainable_current()) == bits(K.sustainable_current(
        cell._bound, big_chem.kibam_c, big_chem.kibam_k))


def test_supercap_smooth_delegates_to_kernel():
    cap = Supercapacitor()
    v0 = cap.voltage
    expect = K.supercap_smooth(4.0, 2.0, v0, cap.capacitance_f,
                               cap.rated_voltage, cap.esr_ohm,
                               cap.refill_power_w)
    got = cap.smooth(4.0, 2.0)
    assert bits(got.battery_power_w) == bits(expect[0])
    assert bits(got.capacitor_energy_j) == bits(expect[1])
    assert bits(got.heat_j) == bits(expect[2])
    assert bits(cap.voltage) == bits(expect[3])


def test_thermal_network_step_matches_conduction_kernel():
    net = phone_thermal_network()
    names, links, active, sub = net.compiled_topology()
    pre = [net.temperature(name) for name in names]
    inj = {"cpu": 1.5, "battery": 0.2, "surface": 0.4}
    steps = substep_count(2.0, sub)
    expect = euler_conduction(pre, [inj.get(name, 0.0) for name in names],
                              links, active, steps, 2.0 / steps)
    net.step(2.0, inj)
    for i, name in enumerate(names):
        assert bits(net.temperature(name)) == bits(expect[i])


def test_well_integration_conserves_charge_without_draw():
    y1, y2 = K.step_wells(100.0, 300.0, 0.0, 0.5, 200, 0.4, 0.01)
    assert y1 + y2 == pytest.approx(400.0, rel=1e-9)
    assert y1 > 100.0  # recovery effect: bound charge migrates back
