"""Tests for the Hausdorff distance helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hausdorff import directed_hausdorff, hausdorff


def _abs_dist(a, b):
    return abs(a - b)


class TestDirectedHausdorff:
    def test_subset_is_zero(self):
        assert directed_hausdorff([1.0, 2.0], [0.0, 1.0, 2.0, 3.0], _abs_dist) == 0.0

    def test_superset_is_not_zero(self):
        assert directed_hausdorff([0.0, 5.0], [0.0], _abs_dist) == 5.0

    def test_empty_a(self):
        assert directed_hausdorff([], [1.0], _abs_dist) == 0.0

    def test_empty_b_with_nonempty_a(self):
        assert directed_hausdorff([1.0], [], _abs_dist) == 1.0


class TestHausdorff:
    def test_symmetric(self):
        a, b = [0.0, 1.0], [0.5, 3.0]
        assert hausdorff(a, b, _abs_dist) == hausdorff(b, a, _abs_dist)

    def test_identical_sets(self):
        assert hausdorff([1.0, 2.0], [2.0, 1.0], _abs_dist) == 0.0

    def test_known_value(self):
        # h([0,1] -> [0]) = 1; h([0] -> [0,1]) = 0 -> max 1.
        assert hausdorff([0.0, 1.0], [0.0], _abs_dist) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=6),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=6),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=6),
    )
    def test_triangle_inequality(self, a, b, c):
        ab = hausdorff(a, b, _abs_dist)
        bc = hausdorff(b, c, _abs_dist)
        ac = hausdorff(a, c, _abs_dist)
        assert ac <= ab + bc + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6),
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6),
    )
    def test_bounded_by_max_pointwise_distance(self, a, b):
        h = hausdorff(a, b, _abs_dist)
        worst = max(_abs_dist(x, y) for x in a for y in b)
        assert h <= worst + 1e-9
