"""Tests for device power states (paper Figure 7)."""

from repro.battery.switch import BatterySelection
from repro.device.states import (
    CpuState,
    DeviceState,
    ScreenState,
    TecState,
    WifiState,
    enumerate_states,
)


class TestDeviceState:
    def test_default_is_asleep(self):
        s = DeviceState()
        assert s.cpu is CpuState.SLEEP
        assert not s.is_awake

    def test_with_replaces(self):
        s = DeviceState().with_(cpu=CpuState.C0, screen=ScreenState.ON)
        assert s.cpu is CpuState.C0
        assert s.screen is ScreenState.ON
        # Original is untouched (frozen dataclass).
        assert DeviceState().cpu is CpuState.SLEEP

    def test_hashable(self):
        assert len({DeviceState(), DeviceState()}) == 1

    def test_label_roundtrip_components(self):
        s = DeviceState(CpuState.C0, ScreenState.ON, WifiState.SEND,
                        TecState.ON, BatterySelection.LITTLE)
        assert s.label == "C0/on/send/on/LITTLE"
        assert s.component_tuple() == ("C0", "on", "send", "on", "LITTLE")

    def test_awake_when_screen_on(self):
        s = DeviceState(cpu=CpuState.SLEEP, screen=ScreenState.ON)
        assert s.is_awake

    def test_cpu_activity(self):
        assert CpuState.C0.is_active
        assert CpuState.C2.is_active
        assert not CpuState.SLEEP.is_active


class TestEnumeration:
    def test_full_space_size(self):
        states = list(enumerate_states())
        # 4 cpu * 2 screen * 3 wifi * 2 tec * 2 battery = 96
        assert len(states) == 96
        assert len(set(states)) == 96

    def test_battery_fixed_halves_space(self):
        states = list(enumerate_states(include_battery=False))
        assert len(states) == 48
        assert all(s.battery is BatterySelection.BIG for s in states)
