"""Fuzz tests for the CD1 frame layer.

Satellite of the failover PR: seeded random, truncated, tampered and
oversized byte streams fed into ``recv_msg`` must surface as
:class:`ProtocolError` within the read deadline -- never a hang, an
over-allocation, or (worst) a successfully unpickled frame.
"""

import random
import socket
import struct
import threading
import time

import pytest

from repro.sim.distributed import (
    AuthenticationError,
    ProtocolError,
    recv_msg,
    send_msg,
)

_HEADER = struct.Struct(">3sI8s")
#: Generous bound for "raises promptly": every fuzz case sets a 0.5 s
#: read deadline, so anything past this is a hang, not a slow CI box.
_PROMPT_S = 5.0


def _pair():
    left, right = socket.socketpair()
    left.settimeout(_PROMPT_S)
    right.settimeout(_PROMPT_S)
    return left, right


def _valid_frame(message=None, secret=b"") -> bytes:
    """The exact bytes ``send_msg`` would put on the wire."""
    left, right = _pair()
    try:
        send_msg(left, message or {"op": "attach", "worker": "w"},
                 secret=secret)
        left.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = right.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
    finally:
        left.close()
        right.close()


def _recv_raises(raw: bytes, expected=ProtocolError, **kwargs):
    """Feed ``raw`` into recv_msg (writer kept open) and time the raise.

    Keeping the writer open is the adversarial case: a peer that sent
    garbage and then went silent.  Only the read deadline can save the
    handler thread, so the raise must land within it.
    """
    kwargs.setdefault("deadline_s", 0.5)
    kwargs.setdefault("secret", b"")
    left, right = _pair()
    try:
        if raw:
            left.sendall(raw)
        started = time.monotonic()
        with pytest.raises(expected):
            recv_msg(right, **kwargs)
        elapsed = time.monotonic() - started
        assert elapsed < _PROMPT_S, f"raised only after {elapsed:.1f}s"
    finally:
        left.close()
        right.close()


class TestFrameFuzz:
    def test_seeded_random_garbage_never_hangs(self):
        for seed in range(50):
            rng = random.Random(seed)
            raw = bytes(rng.randrange(256)
                        for _ in range(rng.randrange(0, 200)))
            _recv_raises(raw)

    def test_truncated_valid_frames_trip_the_deadline(self):
        frame = _valid_frame()
        # Every prefix of a real frame, sampled plus all header cuts:
        # the peer sent part of a legitimate message and stalled.
        cuts = sorted(set(range(0, _HEADER.size + 1))
                      | {len(frame) // 2, len(frame) - 1})
        for cut in cuts:
            _recv_raises(frame[:cut])

    def test_flipped_byte_fuzz_is_rejected_not_unpickled(self):
        frame = _valid_frame()
        for seed in range(50):
            rng = random.Random(1000 + seed)
            pos = rng.randrange(len(frame))
            tampered = bytearray(frame)
            tampered[pos] ^= 1 << rng.randrange(8)
            _recv_raises(bytes(tampered))

    def test_oversized_length_rejected_before_allocation(self):
        # A 4 GiB length field with only the header on the wire: the
        # cap check must fire on the header alone, before any payload
        # buffer exists or a single payload byte is awaited.
        raw = _HEADER.pack(b"CD1", 0xFFFFFFFF, b"\0" * 8)
        started = time.monotonic()
        _recv_raises(raw, deadline_s=30.0)
        assert time.monotonic() - started < 1.0  # cap, not deadline

    def test_small_max_frame_is_enforced(self):
        frame = _valid_frame()
        left, right = _pair()
        try:
            left.sendall(frame)
            with pytest.raises(ProtocolError):
                recv_msg(right, secret=b"", deadline_s=0.5, max_frame=4)
        finally:
            left.close()
            right.close()

    def test_slow_drip_trips_the_read_deadline(self):
        # Slowloris: one byte of a valid frame per 50 ms holds the
        # socket "live" forever; the absolute deadline must still cut
        # the read off on schedule.
        frame = _valid_frame()
        left, right = _pair()
        stop = threading.Event()

        def drip():
            for byte in frame:
                if stop.is_set():
                    return
                try:
                    left.sendall(bytes([byte]))
                except OSError:
                    return
                time.sleep(0.05)

        thread = threading.Thread(target=drip, daemon=True)
        thread.start()
        try:
            started = time.monotonic()
            with pytest.raises(ProtocolError):
                recv_msg(right, secret=b"", deadline_s=0.4)
            elapsed = time.monotonic() - started
            assert 0.3 < elapsed < _PROMPT_S
        finally:
            stop.set()
            left.close()
            right.close()
            thread.join(timeout=5.0)

    def test_message_must_be_a_protocol_dict(self):
        # A well-formed frame around a non-message payload is still a
        # protocol error -- handlers only ever see {op: ...} dicts.
        frame = _valid_frame(message={"not-op": 1})
        _recv_raises(frame)


class TestFrameAuth:
    def test_round_trip_with_shared_secret(self):
        frame = _valid_frame(secret=b"hunter2")
        left, right = _pair()
        try:
            left.sendall(frame)
            message = recv_msg(right, secret=b"hunter2", deadline_s=1.0)
            assert message["op"] == "attach"
        finally:
            left.close()
            right.close()

    def test_unauthenticated_frame_is_an_auth_failure(self):
        # Intact plain-checksummed frame against a secret-holding
        # receiver: distinguished from line noise so operators can
        # tell "misconfigured fleet" from "flaky network".
        frame = _valid_frame(secret=b"")
        _recv_raises(frame, expected=AuthenticationError,
                     secret=b"hunter2")

    def test_wrong_secret_is_rejected(self):
        frame = _valid_frame(secret=b"wrong")
        _recv_raises(frame, expected=ProtocolError, secret=b"hunter2")

    def test_tampered_authenticated_frame_is_rejected(self):
        frame = bytearray(_valid_frame(secret=b"hunter2"))
        frame[-1] ^= 0x01  # flip a payload byte, keep the tag
        _recv_raises(bytes(frame), expected=ProtocolError,
                     secret=b"hunter2")
