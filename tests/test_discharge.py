"""Tests for the discharge-cycle experiment harness."""

import pytest

from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.battery.chemistry import LCO, pick_big_little
from repro.battery.switch import BatterySelection
from repro.sim.discharge import (
    DischargeResult,
    PolicyContext,
    SchedulingPolicy,
    run_discharge_cycle,
)
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


class TinyDual(SchedulingPolicy):
    """LITTLE-first policy on a tiny pack for fast cycles."""

    name = "tiny-dual"
    uses_tec = False

    def __init__(self, mah=40.0):
        self.mah = mah

    def build_pack(self):
        big, little = pick_big_little()
        return BigLittlePack.from_chemistries(big, little, self.mah)

    def decide_battery(self, ctx: PolicyContext):
        if ctx.soc_little > 0.02:
            return BatterySelection.LITTLE
        return BatterySelection.BIG


class TinySingle(SchedulingPolicy):
    name = "tiny-single"
    uses_tec = False

    def __init__(self, mah=80.0):
        self.mah = mah

    def build_pack(self):
        return SingleBatteryPack.from_chemistry(LCO, self.mah)

    def decide_battery(self, ctx):
        return None


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 240.0)


class TestRunDischargeCycle:
    def test_cycle_terminates_before_cap(self, trace):
        res = run_discharge_cycle(TinyDual(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0)
        assert res.service_time_s < 8 * 3600.0
        assert res.energy_delivered_j > 0.0

    def test_result_fields_consistent(self, trace):
        res = run_discharge_cycle(TinyDual(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0)
        assert isinstance(res, DischargeResult)
        assert res.workload_name == "Video"
        assert res.policy_name == "tiny-dual"
        assert res.big_time_s + res.little_time_s <= res.service_time_s + 2.0
        assert 0.0 <= res.little_ratio <= 1.0
        assert res.mean_power_w > 0.0

    def test_metrics_recorded(self, trace):
        res = run_discharge_cycle(TinyDual(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0)
        for name in ("soc", "cpu_temp_c", "power_w", "voltage_v"):
            assert res.metrics.has_series(name)
        socs = res.metrics.series("soc").values
        assert socs[0] > socs[-1]

    def test_little_first_policy_reflected(self, trace):
        res = run_discharge_cycle(TinyDual(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0)
        assert res.little_ratio > 0.3
        assert res.switch_count >= 1

    def test_single_pack_counts_no_switches(self, trace):
        res = run_discharge_cycle(TinySingle(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0)
        assert res.switch_count == 0
        assert res.little_ratio == 0.0

    def test_max_duration_respected(self, trace):
        res = run_discharge_cycle(TinyDual(mah=5000.0), trace, control_dt=2.0,
                                  max_duration_s=120.0)
        assert res.service_time_s == pytest.approx(120.0, abs=4.0)

    def test_brownout_limit_configurable(self, trace):
        strict = run_discharge_cycle(TinySingle(), trace, control_dt=2.0,
                                     max_duration_s=8 * 3600.0, brownout_limit=1)
        lax = run_discharge_cycle(TinySingle(), trace, control_dt=2.0,
                                  max_duration_s=8 * 3600.0, brownout_limit=30)
        assert strict.service_time_s <= lax.service_time_s

    def test_dual_outlasts_single_of_same_capacity(self, trace):
        dual = run_discharge_cycle(TinyDual(mah=40.0), trace, control_dt=2.0,
                                   max_duration_s=12 * 3600.0)
        single = run_discharge_cycle(TinySingle(mah=80.0), trace, control_dt=2.0,
                                     max_duration_s=12 * 3600.0)
        assert dual.service_time_s > single.service_time_s
