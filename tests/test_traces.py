"""Tests for trace recording, serialisation and replay."""

import pytest

from repro.device.phone import DemandSlice
from repro.workload.base import Segment
from repro.workload.generators import VideoWorkload
from repro.workload.traces import Trace, TraceWorkload, record_trace


class TestRecordTrace:
    def test_exact_duration(self):
        trace = record_trace(VideoWorkload(seed=1), 100.0)
        assert trace.duration_s == pytest.approx(100.0)

    def test_name_from_workload(self):
        assert record_trace(VideoWorkload(seed=1), 50.0).name == "Video"

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            record_trace(VideoWorkload(), 0.0)

    def test_deterministic(self):
        a = record_trace(VideoWorkload(seed=9), 120.0)
        b = record_trace(VideoWorkload(seed=9), 120.0)
        assert [s.duration_s for s in a] == [s.duration_s for s in b]


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace([])

    def test_mean_power_proxy(self):
        segs = [
            Segment(DemandSlice(cpu_util=100.0), 1.0),
            Segment(DemandSlice(cpu_util=0.0), 3.0),
        ]
        assert Trace(segs).mean_power_proxy == pytest.approx(25.0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = record_trace(VideoWorkload(seed=2), 60.0)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.duration_s == pytest.approx(b.duration_s)
            assert a.demand == b.demand
            assert (a.syscall is None) == (b.syscall is None)
            if a.syscall is not None:
                assert a.syscall.name == b.syscall.name


class TestTraceWorkload:
    def test_replay_matches_trace(self):
        trace = record_trace(VideoWorkload(seed=3), 60.0)
        replayed = list(TraceWorkload(trace).segments())
        assert len(replayed) == len(trace)

    def test_non_looping_ends(self):
        trace = record_trace(VideoWorkload(seed=3), 30.0)
        segs = list(TraceWorkload(trace, loop=False).segments())
        assert len(segs) == len(trace)

    def test_looping_repeats(self):
        import itertools

        trace = record_trace(VideoWorkload(seed=3), 30.0)
        segs = list(itertools.islice(TraceWorkload(trace, loop=True).segments(),
                                     2 * len(trace)))
        assert len(segs) == 2 * len(trace)
