"""Property-based tests (hypothesis) on the KiBaM cell invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.cell import Cell
from repro.battery.chemistry import CHEMISTRIES, LMO, NCA

_CHEM = st.sampled_from(list(CHEMISTRIES.values()))


class TestChargeConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        chem=_CHEM,
        power=st.floats(0.0, 4.0),
        dt=st.floats(0.1, 120.0),
    )
    def test_charge_never_negative(self, chem, power, dt):
        cell = Cell(chem, capacity_mah=100.0)
        cell.draw_power(power, dt)
        assert cell.available_amp_s >= -1e-9
        assert cell.charge_amp_s >= -1e-9

    @settings(max_examples=60, deadline=None)
    @given(chem=_CHEM, dt=st.floats(0.1, 3600.0))
    def test_rest_conserves_charge(self, chem, dt):
        cell = Cell(chem, capacity_mah=100.0)
        cell.draw_power(1.0, 30.0)
        before = cell.charge_amp_s
        cell.rest(dt)
        assert cell.charge_amp_s == pytest.approx(before, rel=1e-9, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        chem=_CHEM,
        power=st.floats(0.1, 3.0),
        dt=st.floats(1.0, 60.0),
    )
    def test_charge_drawn_at_least_delivered(self, chem, power, dt):
        """Coulombic losses mean wells lose >= the delivered charge."""
        cell = Cell(chem, capacity_mah=200.0)
        before = cell.charge_amp_s
        res = cell.draw_power(power, dt)
        drawn = before - cell.charge_amp_s
        delivered = res.current_a * dt
        assert drawn >= delivered * 0.999

    @settings(max_examples=40, deadline=None)
    @given(chem=_CHEM, power=st.floats(0.0, 5.0), dt=st.floats(0.1, 100.0))
    def test_soc_in_unit_interval(self, chem, power, dt):
        cell = Cell(chem, capacity_mah=50.0)
        for _ in range(5):
            cell.draw_power(power, dt)
        assert 0.0 <= cell.state_of_charge <= 1.0


class TestVoltageProperties:
    @settings(max_examples=40, deadline=None)
    @given(soc=st.floats(0.0, 1.0), chem=_CHEM)
    def test_ocv_within_window(self, soc, chem):
        v = Cell(chem, soc=soc).open_circuit_voltage()
        assert chem.cutoff_voltage - 1e-9 <= v <= chem.full_voltage + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(power=st.floats(0.01, 5.0))
    def test_power_solve_consistent(self, power):
        cell = Cell(NCA)
        i = cell.current_for_power(power)
        assert i >= 0.0
        if i < cell.open_circuit_voltage() / (2 * cell.internal_resistance()) - 1e-9:
            assert i * cell.terminal_voltage(i) == pytest.approx(power, rel=1e-5)


class TestEnergyProperties:
    @settings(max_examples=40, deadline=None)
    @given(power=st.floats(0.1, 2.0), dt=st.floats(0.5, 30.0))
    def test_energy_never_exceeds_demand(self, power, dt):
        cell = Cell(LMO, capacity_mah=100.0)
        res = cell.draw_power(power, dt)
        assert res.energy_j <= power * dt + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(power=st.floats(0.1, 2.0))
    def test_heat_nonnegative(self, power):
        res = Cell(NCA).draw_power(power, 10.0)
        assert res.heat_j >= 0.0
