"""Child-process entry point for the kill-9 sweep-resume tests.

The parent test launches this module in a subprocess (with ``src`` and
this directory on ``PYTHONPATH``), waits for the journal to accumulate
at least one committed cell, and SIGKILLs it mid-sweep.  The policy
classes live here -- at module level, importable under the same name
from both sides -- so the spec pickled into the journal's
``sweep_start`` record unpickles cleanly in the resuming parent.

Run as::

    python -c "import sys, resume_helper; resume_helper.main(sys.argv[1])" <journal>
"""

import time
from dataclasses import dataclass

from repro.capman.baselines import DualPolicy
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@dataclass
class SlowDualPolicy(DualPolicy):
    """A :class:`DualPolicy` with an artificial per-cell delay.

    The delay guarantees the parent's SIGKILL lands *between* commits,
    not after the sweep already finished; it costs wall time only, so
    results stay identical to an undelayed run of the same spec.
    """

    delay_s: float = 0.5

    def build_pack(self):
        time.sleep(self.delay_s)
        return super().build_pack()


def build_spec(delay_s: float = 0.5) -> SweepSpec:
    """The 4-cell grid both the child and the reference run use."""
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    policies = {
        f"Dual{mah}": SlowDualPolicy(capacity_mah=float(mah), delay_s=delay_s)
        for mah in (30, 40, 50, 60)
    }
    return SweepSpec(policies=policies, traces={"Video": trace},
                     max_duration_s=900.0)


def main(journal_path: str) -> None:
    runner = ScenarioRunner(workers=1, journal=journal_path,
                            checkpoint_every_steps=25)
    runner.run(build_spec())


if __name__ == "__main__":
    import sys

    # Re-import under the canonical module name so pickled objects
    # reference ``resume_helper``, not ``__main__``.
    import resume_helper

    resume_helper.main(sys.argv[1])
