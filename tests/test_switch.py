"""Tests for the battery switch facility (paper Figures 9/11)."""

import pytest

from repro.battery.switch import BatterySelection, BatterySwitch, ttl_signal


class TestSelection:
    def test_other(self):
        assert BatterySelection.BIG.other() is BatterySelection.LITTLE
        assert BatterySelection.LITTLE.other() is BatterySelection.BIG


class TestSwitch:
    def test_initial_state(self):
        sw = BatterySwitch()
        assert sw.active is BatterySelection.BIG
        assert sw.switch_count == 0

    def test_switch_commits(self):
        sw = BatterySwitch()
        assert sw.request(BatterySelection.LITTLE, 1.0)
        assert sw.active is BatterySelection.LITTLE
        assert sw.switch_count == 1

    def test_noop_request(self):
        sw = BatterySwitch()
        assert not sw.request(BatterySelection.BIG, 1.0)
        assert sw.switch_count == 0

    def test_costs_charged_per_switch(self):
        sw = BatterySwitch(switch_energy_j=0.2, switch_heat_j=0.1)
        sw.request(BatterySelection.LITTLE, 0.0)
        sw.request(BatterySelection.BIG, 1.0)
        assert sw.energy_spent_j == pytest.approx(0.4)
        assert sw.heat_emitted_j == pytest.approx(0.2)

    def test_take_heat_drains(self):
        sw = BatterySwitch(switch_heat_j=0.1)
        sw.request(BatterySelection.LITTLE, 0.0)
        assert sw.take_heat_j() == pytest.approx(0.1)
        assert sw.take_heat_j() == 0.0

    def test_dwell_guard(self):
        sw = BatterySwitch(min_dwell_s=5.0)
        assert sw.request(BatterySelection.LITTLE, 0.0)
        assert not sw.request(BatterySelection.BIG, 2.0)  # too soon
        assert sw.active is BatterySelection.LITTLE
        assert sw.request(BatterySelection.BIG, 6.0)

    def test_event_log_ordered(self):
        sw = BatterySwitch()
        sw.request(BatterySelection.LITTLE, 1.0)
        sw.request(BatterySelection.BIG, 2.0)
        times = [e.time_s for e in sw.events]
        assert times == [1.0, 2.0]

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            BatterySwitch(switch_energy_j=-0.1)


class TestTtlSignal:
    def test_flat_signal_without_events(self):
        points = ttl_signal((), t_end=10.0)
        assert points == [(0.0, 3.5), (10.0, 3.5)]

    def test_flips_encode_selections(self):
        sw = BatterySwitch()
        sw.request(BatterySelection.LITTLE, 2.0)
        sw.request(BatterySelection.BIG, 5.0)
        points = ttl_signal(sw.events, t_end=8.0)
        # Starts high (BIG), drops at 2.0, rises at 5.0.
        levels = [v for _, v in points]
        assert levels[0] == 3.5
        assert 0.3 in levels
        assert points[-1] == (8.0, 3.5)

    def test_number_of_breakpoints(self):
        sw = BatterySwitch()
        for i, sel in enumerate(
            [BatterySelection.LITTLE, BatterySelection.BIG, BatterySelection.LITTLE]
        ):
            sw.request(sel, float(i + 1))
        points = ttl_signal(sw.events, t_end=10.0)
        # 1 start + 2 per event + 1 end.
        assert len(points) == 1 + 2 * 3 + 1
