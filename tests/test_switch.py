"""Tests for the battery switch facility (paper Figures 9/11)."""

import pytest

from repro.battery.switch import BatterySelection, BatterySwitch, ttl_signal


class TestSelection:
    def test_other(self):
        assert BatterySelection.BIG.other() is BatterySelection.LITTLE
        assert BatterySelection.LITTLE.other() is BatterySelection.BIG


class TestSwitch:
    def test_initial_state(self):
        sw = BatterySwitch()
        assert sw.active is BatterySelection.BIG
        assert sw.switch_count == 0

    def test_switch_commits(self):
        sw = BatterySwitch()
        assert sw.request(BatterySelection.LITTLE, 1.0)
        assert sw.active is BatterySelection.LITTLE
        assert sw.switch_count == 1

    def test_noop_request(self):
        sw = BatterySwitch()
        assert not sw.request(BatterySelection.BIG, 1.0)
        assert sw.switch_count == 0

    def test_costs_charged_per_switch(self):
        sw = BatterySwitch(switch_energy_j=0.2, switch_heat_j=0.1)
        sw.request(BatterySelection.LITTLE, 0.0)
        sw.request(BatterySelection.BIG, 1.0)
        assert sw.energy_spent_j == pytest.approx(0.4)
        assert sw.heat_emitted_j == pytest.approx(0.2)

    def test_take_heat_drains(self):
        sw = BatterySwitch(switch_heat_j=0.1)
        sw.request(BatterySelection.LITTLE, 0.0)
        assert sw.take_heat_j() == pytest.approx(0.1)
        assert sw.take_heat_j() == 0.0

    def test_dwell_guard(self):
        sw = BatterySwitch(min_dwell_s=5.0)
        assert sw.request(BatterySelection.LITTLE, 0.0)
        assert not sw.request(BatterySelection.BIG, 2.0)  # too soon
        assert sw.active is BatterySelection.LITTLE
        assert sw.request(BatterySelection.BIG, 6.0)

    def test_event_log_ordered(self):
        sw = BatterySwitch()
        sw.request(BatterySelection.LITTLE, 1.0)
        sw.request(BatterySelection.BIG, 2.0)
        times = [e.time_s for e in sw.events]
        assert times == [1.0, 2.0]

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            BatterySwitch(switch_energy_j=-0.1)


class TestRapidOscillation:
    """Noisy chatter against the debounce: the dwell guard must hold and
    the cost accounting must stay exactly per-committed-event."""

    def _flood(self, sw, period_s, n):
        """Alternate targets every ``period_s`` seconds, ``n`` times."""
        committed = 0
        for i in range(n):
            target = (BatterySelection.LITTLE if i % 2 == 0
                      else BatterySelection.BIG)
            if sw.request(target, i * period_s):
                committed += 1
        return committed

    def test_min_dwell_spaces_committed_events(self):
        sw = BatterySwitch(min_dwell_s=5.0)
        self._flood(sw, period_s=0.5, n=200)
        times = [e.time_s for e in sw.events]
        assert times, "some switches must commit"
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 5.0 for gap in gaps)

    def test_chatter_is_bounded_by_dwell(self):
        sw = BatterySwitch(min_dwell_s=5.0)
        self._flood(sw, period_s=0.5, n=200)
        # 100 s of chatter with a 5 s dwell: at most ~21 commits.
        assert sw.switch_count <= (200 * 0.5) / 5.0 + 1

    def test_energy_tracks_switch_count_exactly(self):
        sw = BatterySwitch(min_dwell_s=2.0, switch_energy_j=0.1,
                           switch_heat_j=0.08)
        self._flood(sw, period_s=0.7, n=500)
        assert sw.energy_spent_j == pytest.approx(0.1 * sw.switch_count)
        assert sw.switch_count == len(sw.events)

    def test_rejected_requests_cost_nothing(self):
        sw = BatterySwitch(min_dwell_s=1e9, switch_energy_j=0.1)
        assert sw.request(BatterySelection.LITTLE, 0.0)
        energy_after_first = sw.energy_spent_j
        for i in range(100):
            assert not sw.request(
                BatterySelection.BIG if i % 2 == 0 else BatterySelection.LITTLE,
                1.0 + i)
        assert sw.energy_spent_j == energy_after_first
        assert sw.switch_count == 1

    def test_take_energy_consistent_under_chatter(self):
        sw = BatterySwitch(min_dwell_s=2.0, switch_energy_j=0.1)
        drained = 0.0
        for i in range(300):
            target = (BatterySelection.LITTLE if i % 2 == 0
                      else BatterySelection.BIG)
            sw.request(target, i * 0.5)
            drained += sw.take_energy_j()
        assert drained == pytest.approx(sw.energy_spent_j)
        assert sw.take_energy_j() == 0.0

    def test_zero_dwell_commits_every_alternation(self):
        sw = BatterySwitch(min_dwell_s=0.0)
        committed = self._flood(sw, period_s=0.5, n=50)
        assert committed == 50 == sw.switch_count


class TestTtlSignal:
    def test_flat_signal_without_events(self):
        points = ttl_signal((), t_end=10.0)
        assert points == [(0.0, 3.5), (10.0, 3.5)]

    def test_flips_encode_selections(self):
        sw = BatterySwitch()
        sw.request(BatterySelection.LITTLE, 2.0)
        sw.request(BatterySelection.BIG, 5.0)
        points = ttl_signal(sw.events, t_end=8.0)
        # Starts high (BIG), drops at 2.0, rises at 5.0.
        levels = [v for _, v in points]
        assert levels[0] == 3.5
        assert 0.3 in levels
        assert points[-1] == (8.0, 3.5)

    def test_number_of_breakpoints(self):
        sw = BatterySwitch()
        for i, sel in enumerate(
            [BatterySelection.LITTLE, BatterySelection.BIG, BatterySelection.LITTLE]
        ):
            sw.request(sel, float(i + 1))
        points = ttl_signal(sw.events, t_end=10.0)
        # 1 start + 2 per event + 1 end.
        assert len(points) == 1 + 2 * 3 + 1
