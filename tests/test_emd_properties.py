"""Property-based tests for the EMD layer (hypothesis).

EMD over a metric ground is itself a metric on distributions with a
shared support; these tests pin the axioms on 1-D supports (where
``|x - y|`` is a true metric) plus the invariances ``emd_dicts``
promises: key order and total-mass rescaling must not matter.  The
dense transport kernel behind the fast path is also held to the
reference solver's optimum on random instances.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emd import emd, emd_dicts
from repro.core.minflow import transport, transport_dense


def _line_ground(positions):
    return [[abs(a - b) for b in positions] for a in positions]


#: Non-degenerate weight vectors (at least some mass, no negatives).
def _weights(k):
    return st.lists(
        st.floats(0.0, 10.0, allow_nan=False), min_size=k, max_size=k
    ).filter(lambda w: sum(w) > 1e-6)


def _positions(k):
    return st.lists(
        st.floats(-50.0, 50.0, allow_nan=False),
        min_size=k,
        max_size=k,
        unique=True,
    )


class TestMetricAxioms:
    """EMD on a shared support with metric ground costs is a metric."""

    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(2, 5), data=st.data())
    def test_non_negative(self, k, data):
        pos = data.draw(_positions(k))
        p = data.draw(_weights(k))
        q = data.draw(_weights(k))
        assert emd(p, q, _line_ground(pos)) >= -1e-12

    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(2, 5), data=st.data())
    def test_symmetric(self, k, data):
        pos = data.draw(_positions(k))
        p = data.draw(_weights(k))
        q = data.draw(_weights(k))
        ground = _line_ground(pos)
        assert emd(p, q, ground) == pytest.approx(emd(q, p, ground), abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(2, 5), data=st.data())
    def test_identity_of_indiscernibles(self, k, data):
        pos = data.draw(_positions(k))
        p = data.draw(_weights(k))
        assert emd(p, p, _line_ground(pos)) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(2, 4), data=st.data())
    def test_triangle_inequality(self, k, data):
        pos = data.draw(_positions(k))
        p = data.draw(_weights(k))
        q = data.draw(_weights(k))
        r = data.draw(_weights(k))
        ground = _line_ground(pos)
        d_pq = emd(p, q, ground)
        d_qr = emd(q, r, ground)
        d_pr = emd(p, r, ground)
        assert d_pr <= d_pq + d_qr + 1e-8


class TestDictInvariances:
    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(2, 5), data=st.data())
    def test_key_order_irrelevant(self, k, data):
        keys = data.draw(
            st.lists(st.integers(0, 100), min_size=k, max_size=k, unique=True)
        )
        p_w = data.draw(_weights(k))
        q_w = data.draw(_weights(k))
        p = dict(zip(keys, p_w))
        q = dict(zip(keys, q_w))
        p_rev = dict(zip(reversed(keys), reversed(p_w)))
        q_rev = dict(zip(reversed(keys), reversed(q_w)))
        dist = lambda a, b: abs(a - b)  # noqa: E731
        assert emd_dicts(p, q, dist) == pytest.approx(
            emd_dicts(p_rev, q_rev, dist), abs=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(2, 5),
        scale_p=st.floats(0.1, 100.0),
        scale_q=st.floats(0.1, 100.0),
        data=st.data(),
    )
    def test_mass_rescaling_irrelevant(self, k, scale_p, scale_q, data):
        keys = data.draw(
            st.lists(st.integers(0, 100), min_size=k, max_size=k, unique=True)
        )
        p_w = data.draw(_weights(k))
        q_w = data.draw(_weights(k))
        dist = lambda a, b: abs(a - b)  # noqa: E731
        baseline = emd_dicts(dict(zip(keys, p_w)), dict(zip(keys, q_w)), dist)
        scaled = emd_dicts(
            {key: scale_p * w for key, w in zip(keys, p_w)},
            {key: scale_q * w for key, w in zip(keys, q_w)},
            dist,
        )
        assert scaled == pytest.approx(baseline, abs=1e-8)


class TestDenseKernelAgreement:
    """transport_dense must reproduce the reference SSP optimum."""

    @settings(max_examples=80, deadline=None)
    @given(m=st.integers(1, 5), n=st.integers(1, 5), data=st.data())
    def test_matches_reference_transport(self, m, n, data):
        supply = data.draw(_weights(m))
        demand = data.draw(_weights(n))
        # Balance the totals (the transport contract requires it).
        total = sum(supply)
        factor = total / sum(demand)
        demand = [d * factor for d in demand]
        cost = data.draw(
            st.lists(
                st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
        ref = transport(supply, demand, cost)
        fast = transport_dense(supply, demand, cost)
        assert fast == pytest.approx(ref, abs=1e-7 * max(1.0, total))

    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            transport_dense([1.0], [2.0], [[0.0]])

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            transport_dense([1.0, -0.5], [0.25, 0.25], [[0.0, 1.0], [1.0, 0.0]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            transport_dense([], [1.0], [])

    def test_point_mass_exact(self):
        assert transport_dense([1.0], [1.0], [[3.5]]) == pytest.approx(3.5)

    def test_cross_shipping_beats_greedy(self):
        # A classic instance where the greedy (north-west corner) rule
        # is suboptimal; the kernel must find the true optimum 1.0.
        cost = [[0.0, 1.0], [1.0, 4.0]]
        assert transport_dense([0.5, 0.5], [0.0, 1.0], cost) == pytest.approx(2.5)
        assert transport_dense([0.5, 0.5], [1.0, 0.0], cost) == pytest.approx(0.5)
