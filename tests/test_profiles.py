"""Tests for the phone profiles (Nexus / Honor / Lenovo)."""

import pytest

from repro.device.profiles import HONOR, LENOVO, NEXUS, PHONES, PhoneProfile
from repro.device.power import CpuPowerModel, StatePowerTable
from repro.device.states import CpuState


class TestPresets:
    def test_three_phones(self):
        assert set(PHONES) == {"Nexus", "Honor", "Lenovo"}

    def test_cpu_frequencies_in_paper_range(self):
        """Paper: CPU frequencies from 1040 to 2000 MHz."""
        for phone in PHONES.values():
            assert min(phone.cpu_freqs_mhz) >= 1040
            assert max(phone.cpu_freqs_mhz) <= 2000

    def test_android_versions_in_paper_range(self):
        """Paper: Android ROM versions 5.0 - 7.1."""
        for phone in PHONES.values():
            major = float(phone.android_version.split(".")[0])
            assert 5 <= major <= 7

    def test_nexus_is_reference(self):
        assert NEXUS.compute_speed == 1.0

    def test_compute_speeds_distinct(self):
        speeds = {p.compute_speed for p in PHONES.values()}
        assert len(speeds) == 3

    def test_nexus_cpu_model_anchored_to_table_iii(self):
        """100% utilisation at each frequency reproduces C-state power."""
        m = NEXUS.cpu_model
        table = NEXUS.power_table
        assert m.power_mw(100.0, 2) == pytest.approx(table.cpu_mw[CpuState.C0], rel=0.01)
        assert m.power_mw(100.0, 1) == pytest.approx(table.cpu_mw[CpuState.C1], rel=0.01)
        assert m.power_mw(100.0, 0) == pytest.approx(table.cpu_mw[CpuState.C2], rel=0.01)


class TestValidation:
    def test_empty_freq_list_rejected(self):
        with pytest.raises(ValueError):
            PhoneProfile(
                name="bad",
                cpu_freqs_mhz=(),
                android_version="5.0",
                power_table=StatePowerTable(),
                cpu_model=CpuPowerModel(),
            )

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ValueError):
            PhoneProfile(
                name="bad",
                cpu_freqs_mhz=(1000,),
                android_version="5.0",
                power_table=StatePowerTable(),
                cpu_model=CpuPowerModel(),
                compute_speed=0.0,
            )
