"""Tests for the distributed sweep backend: frames, leases, stealing,
duplicate delivery, elastic workers and graceful degradation."""

import pickle
import socket
import threading
import time

import pytest

from repro.capman.baselines import DualPolicy
from repro.sim.distributed import (CoordinatorUnreachableError,
                                   DistributedExecutor, FrameServer,
                                   ProtocolError, SweepCoordinator,
                                   SweepWorker, recv_msg, rpc, send_msg)
from repro.sim.executors import CellFailure, ExecutionContext
from repro.sim.retry import RetryPolicy
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


def _spec(trace, mahs=(30, 40, 50, 60), **kwargs):
    defaults = dict(
        policies={f"Dual{m}": DualPolicy(capacity_mah=float(m))
                  for m in mahs},
        traces={"Video": trace},
        max_duration_s=900.0,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


class TestFrames:
    def _pair(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        client = socket.create_connection(server.getsockname())
        peer, _ = server.accept()
        server.close()
        return client, peer

    def test_round_trip(self):
        client, peer = self._pair()
        try:
            send_msg(client, {"op": "ping", "blob": b"\x00" * 1000})
            message = recv_msg(peer)
            assert message["op"] == "ping"
            assert message["blob"] == b"\x00" * 1000
        finally:
            client.close()
            peer.close()

    def test_corrupt_payload_is_detected(self):
        client, peer = self._pair()
        try:
            payload = pickle.dumps({"op": "ping"}, protocol=4)
            import hashlib
            import struct
            digest = hashlib.sha256(payload).digest()[:8]
            header = struct.Struct(">3sI8s").pack(b"CD1", len(payload),
                                                  digest)
            tampered = bytes([payload[0] ^ 0xFF]) + payload[1:]
            client.sendall(header + tampered)
            with pytest.raises(ProtocolError, match="checksum"):
                recv_msg(peer)
        finally:
            client.close()
            peer.close()

    def test_bad_magic_and_truncation(self):
        client, peer = self._pair()
        try:
            client.sendall(b"XXX" + b"\x00" * 12)
            with pytest.raises(ProtocolError, match="magic"):
                recv_msg(peer)
            client.sendall(b"CD1\x00\x00\x01\x00")  # header cut short
            client.close()
            with pytest.raises(ConnectionError):
                recv_msg(peer)
        finally:
            peer.close()


def _coordinator(trace, lease_timeout_s=0.4, **kwargs):
    cells = _spec(trace, mahs=kwargs.pop("mahs", (30, 40))).expand()
    committed = []
    ctx = ExecutionContext(
        retry=kwargs.pop("retry", RetryPolicy(max_attempts=2)),
        on_final=lambda index, outcome: committed.append((index, outcome)))
    coordinator = SweepCoordinator(cells, ctx,
                                   lease_timeout_s=lease_timeout_s, **kwargs)
    coordinator.start()
    return coordinator, cells, committed


class TestCoordinator:
    def test_grant_result_commit_cycle(self, trace):
        coordinator, cells, committed = _coordinator(trace)
        try:
            address = coordinator.address
            assert rpc(address, {"op": "attach", "worker": "w1"})["op"] == "ok"
            seen = set()
            while True:
                reply = rpc(address, {"op": "request", "worker": "w1"})
                if reply["op"] == "done":
                    break
                assert reply["op"] == "grant"
                cell = pickle.loads(reply["cell"])
                seen.add(cell.index)
                item = (cell.index, f"result-{cell.index}", 0.0, 0)
                commit = rpc(address, {
                    "op": "result", "lease": reply["lease"], "worker": "w1",
                    "payload": pickle.dumps(item)})
                assert commit["committed"] is True
            assert seen == {cell.index for cell in cells}
            assert sorted(index for index, _ in committed) == sorted(seen)
            assert coordinator.stats.remote_cells == len(cells)
        finally:
            coordinator.stop()

    def test_expired_lease_is_redispatched_then_failed(self, trace):
        coordinator, cells, committed = _coordinator(
            trace, lease_timeout_s=0.15, mahs=(30,),
            retry=RetryPolicy(max_attempts=2))
        try:
            address = coordinator.address
            first = rpc(address, {"op": "request", "worker": "w1"})
            assert first["op"] == "grant"
            time.sleep(0.2)  # let the lease lapse; never report
            second = rpc(address, {"op": "request", "worker": "w2"})
            assert second["op"] == "grant"  # same cell, re-dispatched
            assert pickle.loads(second["cell"]).index == \
                pickle.loads(first["cell"]).index
            assert coordinator.stats.lease_expiries == 1
            assert coordinator.stats.retries == 1
            time.sleep(0.2)  # second attempt lapses too: budget spent
            coordinator.reap()
            assert coordinator.finished
            index, outcome = committed[0]
            assert isinstance(outcome, CellFailure)
            assert outcome.error_type == "LeaseExpiredError"
            assert outcome.attempts == 2
        finally:
            coordinator.stop()

    def test_renewal_keeps_lease_alive(self, trace):
        coordinator, cells, _ = _coordinator(trace, lease_timeout_s=0.2,
                                             mahs=(30,))
        try:
            address = coordinator.address
            grant = rpc(address, {"op": "request", "worker": "w1"})
            for _ in range(4):
                time.sleep(0.1)
                assert rpc(address, {"op": "renew",
                                     "lease": grant["lease"]})["ok"]
            coordinator.reap()
            assert coordinator.stats.lease_expiries == 0
        finally:
            coordinator.stop()

    def test_duplicate_results_commit_once(self, trace):
        coordinator, cells, committed = _coordinator(trace, mahs=(30,))
        try:
            address = coordinator.address
            grant = rpc(address, {"op": "request", "worker": "w1"})
            cell = pickle.loads(grant["cell"])
            item = pickle.dumps((cell.index, "result", 0.0, 0))
            first = rpc(address, {"op": "result", "lease": grant["lease"],
                                  "worker": "w1", "payload": item})
            again = rpc(address, {"op": "result", "lease": grant["lease"],
                                  "worker": "w1", "payload": item})
            assert first["committed"] is True
            assert again["committed"] is False
            assert coordinator.stats.duplicate_results == 1
            assert len(committed) == 1
        finally:
            coordinator.stop()

    def test_idle_worker_steals_slow_lease(self, trace):
        coordinator, cells, committed = _coordinator(
            trace, lease_timeout_s=10.0, steal_after_s=0.1, mahs=(30,))
        try:
            address = coordinator.address
            slow = rpc(address, {"op": "request", "worker": "slow"})
            assert slow["op"] == "grant"
            time.sleep(0.15)
            thief = rpc(address, {"op": "request", "worker": "thief"})
            assert thief["op"] == "grant"  # duplicate lease on the cell
            assert pickle.loads(thief["cell"]).index == \
                pickle.loads(slow["cell"]).index
            assert coordinator.stats.steals == 1
            item = pickle.dumps((0, "stolen-result", 0.0, 0))
            fast = rpc(address, {"op": "result", "lease": thief["lease"],
                                 "worker": "thief", "payload": item})
            late = rpc(address, {"op": "result", "lease": slow["lease"],
                                 "worker": "slow", "payload": item})
            assert fast["committed"] is True
            assert late["committed"] is False
            assert len(committed) == 1
        finally:
            coordinator.stop()

    def test_chaos_duplicate_lease_delivery(self, trace):
        coordinator, cells, committed = _coordinator(trace, mahs=(30,))
        try:
            coordinator.inject_duplicate_leases(1)
            address = coordinator.address
            one = rpc(address, {"op": "request", "worker": "w1"})
            two = rpc(address, {"op": "request", "worker": "w2"})
            assert one["op"] == two["op"] == "grant"
            assert pickle.loads(one["cell"]).index == \
                pickle.loads(two["cell"]).index
            item = pickle.dumps((0, "result", 0.0, 0))
            assert rpc(address, {"op": "result", "lease": one["lease"],
                                 "worker": "w1",
                                 "payload": item})["committed"]
            assert not rpc(address, {"op": "result", "lease": two["lease"],
                                     "worker": "w2",
                                     "payload": item})["committed"]
            assert len(committed) == 1
        finally:
            coordinator.stop()


class TestAuth:
    def test_authenticated_fleet_rejects_outsiders(self, trace, monkeypatch):
        monkeypatch.setenv("CAPMAN_DIST_SECRET", "fleet-secret")
        coordinator, cells, _ = _coordinator(trace, mahs=(30,))
        try:
            address = coordinator.address
            # A peer holding the secret works normally.
            assert rpc(address, {"op": "attach", "worker": "w1"})["op"] == "ok"
            # A peer without it gets no reply -- the connection is
            # closed before the payload is ever unpickled.
            with pytest.raises(ConnectionError):
                rpc(address, {"op": "attach", "worker": "intruder"},
                    timeout_s=2.0, secret=b"")
            # A peer with a *different* secret fares no better.
            with pytest.raises(ConnectionError):
                rpc(address, {"op": "attach", "worker": "intruder"},
                    timeout_s=2.0, secret=b"wrong")
            # And neither stalls dispatch for the legitimate fleet.
            assert rpc(address, {"op": "request", "worker": "w1"})["op"] \
                == "grant"
            assert coordinator.frame_stats.auth_failures >= 1
        finally:
            coordinator.stop()

    def test_garbage_frames_do_not_stall_dispatch(self, trace, monkeypatch):
        monkeypatch.setenv("CAPMAN_DIST_SECRET", "fleet-secret")
        coordinator, cells, _ = _coordinator(trace, mahs=(30,))
        try:
            address = coordinator.address
            with socket.create_connection(address, timeout=2.0) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n\r\n")  # wrong protocol
                # Closed without a reply: either a clean EOF or a
                # reset, never protocol bytes.  (The server may have
                # reset the connection already, so even shutdown can
                # fail with ENOTCONN -- that counts as closed too.)
                try:
                    sock.shutdown(socket.SHUT_WR)
                    assert sock.recv(1) == b""
                except OSError:
                    pass
            assert rpc(address, {"op": "attach", "worker": "w1"})["op"] \
                == "ok"
            assert coordinator.frame_stats.protocol_errors >= 1
        finally:
            coordinator.stop()


class TestAdmissionControl:
    def test_excess_connections_are_shed_not_queued(self):
        entered = threading.Event()
        release = threading.Event()

        def handler(message):
            entered.set()
            release.wait(10.0)
            return {"op": "ok"}

        server = FrameServer(handler, max_connections=1,
                             read_deadline_s=15.0, name="shed-test")
        host, port = server.start()
        blocker = None
        try:
            blocker = socket.create_connection((host, port), timeout=15.0)
            send_msg(blocker, {"op": "hold"}, secret=b"")
            assert entered.wait(5.0)  # the single slot is now busy
            extra = socket.create_connection((host, port), timeout=5.0)
            try:
                with pytest.raises(ConnectionError):
                    recv_msg(extra, secret=b"", deadline_s=5.0)
            finally:
                extra.close()
            assert server.stats.connections_shed >= 1
            # The occupant was never disturbed: release it and read
            # its reply to prove shedding is per-excess-peer only.
            release.set()
            assert recv_msg(blocker, secret=b"",
                            deadline_s=5.0)["op"] == "ok"
        finally:
            release.set()
            if blocker is not None:
                blocker.close()
            server.stop()


class TestFailover:
    def test_rpc_raises_unreachable_instead_of_none(self):
        # Satellite: "coordinator gone" used to be indistinguishable
        # from a transient error (both were None).  Now a blown retry
        # budget is a typed error the run loop can ride out.
        worker = SweepWorker(("127.0.0.1", 1), worker_id="w",
                             rpc_timeout_s=0.2,
                             retry=RetryPolicy(max_attempts=2,
                                               backoff_base_s=0.01))
        with pytest.raises(CoordinatorUnreachableError):
            worker._rpc({"op": "request", "worker": "w"})

    def test_never_attached_worker_exits_cleanly(self):
        worker = SweepWorker(("127.0.0.1", 1), worker_id="w",
                             rpc_timeout_s=0.2,
                             retry=RetryPolicy(max_attempts=1))
        stats = worker.run()
        assert stats.cells == 0
        assert stats.outages_survived == 0

    def test_worker_rides_out_coordinator_restart(self, trace):
        coordinator, cells, _ = _coordinator(trace, mahs=(30, 40))
        address = coordinator.address
        worker = SweepWorker(address, worker_id="survivor",
                             rpc_timeout_s=1.0, reconnect_timeout_s=15.0,
                             retry=RetryPolicy(max_attempts=1))
        worker._rpc({"op": "attach", "worker": worker.worker_id})
        coordinator.stop()
        with pytest.raises(CoordinatorUnreachableError):
            worker._rpc({"op": "request", "worker": worker.worker_id})
        # The coordinator comes back on the same port (a restart from
        # its journal); the surviving worker must re-adopt it and
        # finish the sweep.
        coordinator2, cells2, committed2 = _coordinator(
            trace, mahs=(30, 40), port=address[1])
        try:
            assert worker._ride_out_outage()
            assert worker.stats.reattaches == 1
            assert worker.stats.outages_survived == 1
            stats = worker.run()
            assert stats.cells == len(cells2)
            coordinator2.reap()
            assert coordinator2.finished
            assert len(committed2) == len(cells2)
        finally:
            coordinator2.stop()

    def test_reconnect_gives_up_after_window(self):
        worker = SweepWorker(("127.0.0.1", 1), worker_id="w",
                             rpc_timeout_s=0.2, reconnect_timeout_s=0.3)
        started = time.monotonic()
        assert not worker._ride_out_outage()
        assert time.monotonic() - started < 10.0
        assert worker.stats.reattaches == 0


class TestExecutor:
    def test_spawned_workers_match_serial_bytes(self, trace):
        spec = _spec(trace)
        serial = ScenarioRunner(workers=1).run(spec)
        executor = DistributedExecutor(lease_timeout_s=5.0, spawn_workers=2)
        dist = ScenarioRunner(executor=executor).run(spec)
        assert _cell_bytes(dist) == _cell_bytes(serial)
        assert dist.stats.executor == "distributed"
        assert executor.stats.remote_cells == len(spec)
        assert executor.stats.worker_attaches >= 1
        assert executor.worker_pids() == []  # all reaped after the run

    def test_degrades_to_local_when_no_workers(self, trace):
        spec = _spec(trace, mahs=(30, 40))
        serial = ScenarioRunner(workers=1).run(spec)
        executor = DistributedExecutor(spawn_workers=0, workers_grace_s=0.1)
        dist = ScenarioRunner(executor=executor).run(spec)
        assert _cell_bytes(dist) == _cell_bytes(serial)
        assert executor.stats.local_fallback_cells == len(spec)
        assert executor.stats.remote_cells == 0

    def test_elastic_worker_attaches_mid_sweep(self, trace):
        spec = _spec(trace)
        serial = ScenarioRunner(workers=1).run(spec)
        executor = DistributedExecutor(
            lease_timeout_s=5.0, spawn_workers=0, local_fallback=False)
        results = {}

        def run_sweep():
            results["dist"] = ScenarioRunner(executor=executor).run(spec)

        sweeper = threading.Thread(target=run_sweep)
        sweeper.start()
        try:
            deadline = time.monotonic() + 10.0
            while executor.coordinator is None:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.2)  # the sweep is genuinely waiting for workers
            stats = SweepWorker(executor.coordinator.address,
                                worker_id="late-joiner").run()
            sweeper.join(timeout=30.0)
        finally:
            assert not sweeper.is_alive()
        assert stats.cells == len(spec)
        assert _cell_bytes(results["dist"]) == _cell_bytes(serial)
        # Attach/detach accounting is exactly paired: one pair in the
        # common case, more if a loaded host briefly reaped the worker
        # as silent and counted its return as a re-attach.
        assert executor.stats.worker_attaches >= 1
        assert (executor.stats.worker_attaches
                == executor.stats.worker_detaches)

    def test_heartbeat_reports_progress(self, trace):
        executor = DistributedExecutor(spawn_workers=0, workers_grace_s=0.05)
        beat = executor.heartbeat()
        assert beat.backend == "distributed"
        assert beat.done == 0
        ScenarioRunner(executor=executor).run(_spec(trace, mahs=(30,)))
        beat = executor.heartbeat()
        assert beat.done == 1
        assert beat.in_flight == 0
        assert beat.detail["port"] > 0
