"""Golden regression fixture for the fleet simulator.

A 10-device heterogeneous batch (three policies, both profiles, two
traces, three capacities, a deduped CAPMAN trajectory pair) is run
once and its summary statistics and a
sample SoC trajectory frozen into ``tests/data/fleet_golden.npz``.
The suite then replays the batch and compares against the fixture --
catching silent numerical drift in either the fleet path or the shared
physics kernels (the fleet is differentially pinned to the scalar
oracle, so a drift here means *both* moved).

Regenerate deliberately after an intentional physics change::

    PYTHONPATH=src python tests/test_fleet_golden.py
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.capman.baselines import DualPolicy, HeuristicPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import HONOR, NEXUS
from repro.fleet import DeviceSpec, FleetSpec
from repro.workload.generators import EtaStaticWorkload, VideoWorkload
from repro.workload.traces import record_trace

GOLDEN = pathlib.Path(__file__).parent / "data" / "fleet_golden.npz"

CONTROL_DT = 2.0
MAX_DURATION_S = 300.0


def _build():
    video = record_trace(VideoWorkload(seed=7), duration_s=120.0)
    eta = record_trace(EtaStaticWorkload(0.5, seed=1), duration_s=120.0)
    devices = [
        DeviceSpec(policy=CapmanPolicy(capacity_mah=40.0), trace=video,
                   profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=CapmanPolicy(capacity_mah=120.0), trace=video,
                   profile=HONOR, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=DualPolicy(capacity_mah=40.0), trace=video,
                   profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=DualPolicy(capacity_mah=120.0), trace=eta,
                   profile=HONOR, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=HeuristicPolicy(capacity_mah=120.0), trace=video,
                   profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=HeuristicPolicy(capacity_mah=400.0), trace=eta,
                   profile=HONOR, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=CapmanPolicy(capacity_mah=400.0), trace=eta,
                   profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=DualPolicy(capacity_mah=400.0), trace=video,
                   profile=HONOR, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        # Rows 8-9: same CAPMAN configuration as row 6 -- the three
        # share a learned trajectory, so the fixture also pins the
        # dedupe path; row 9 tightens the replan cadence to pin the
        # multi-boundary epoch machinery.
        DeviceSpec(policy=CapmanPolicy(capacity_mah=400.0), trace=eta,
                   profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
        DeviceSpec(policy=CapmanPolicy(capacity_mah=400.0,
                                       min_observations=3,
                                       replan_interval=5),
                   trace=eta, profile=NEXUS, control_dt=CONTROL_DT,
                   max_duration_s=MAX_DURATION_S),
    ]
    return FleetSpec(devices)


def _payload() -> dict:
    sim = _build().build()
    results = sim.run()
    as_vec = lambda attr: np.array([getattr(r, attr) for r in results])
    soc0 = results[0].metrics.series("soc")
    return {
        "service_time_s": as_vec("service_time_s"),
        "energy_delivered_j": as_vec("energy_delivered_j"),
        "switch_count": as_vec("switch_count").astype(np.int64),
        "step_count": as_vec("step_count").astype(np.int64),
        "max_cpu_temp_c": as_vec("max_cpu_temp_c"),
        "time_above_threshold_s": as_vec("time_above_threshold_s"),
        "big_time_s": as_vec("big_time_s"),
        "little_time_s": as_vec("little_time_s"),
        "tec_on_time_s": as_vec("tec_on_time_s"),
        "tec_energy_j": as_vec("tec_energy_j"),
        "final_avail_b": sim.state.avail_b.copy(),
        "final_avail_l": sim.state.avail_l.copy(),
        "final_cpu_temp_c": sim.state.node_temps[0].copy(),
        "soc0_times": np.asarray(soc0.times, dtype=np.float64),
        "soc0_values": np.asarray(soc0.values, dtype=np.float64),
    }


class TestFleetGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN.exists(), (
            "golden fixture missing; regenerate with "
            "`PYTHONPATH=src python tests/test_fleet_golden.py`")
        with np.load(GOLDEN) as data:
            yield {key: data[key] for key in data.files}

    @pytest.fixture(scope="class")
    def fresh(self):
        return _payload()

    def test_fixture_covers_every_key(self, golden, fresh):
        assert sorted(golden) == sorted(fresh)

    @pytest.mark.parametrize("key", [
        "service_time_s", "energy_delivered_j", "max_cpu_temp_c",
        "time_above_threshold_s", "big_time_s", "little_time_s",
        "tec_on_time_s", "tec_energy_j", "final_avail_b", "final_avail_l",
        "final_cpu_temp_c", "soc0_times", "soc0_values",
    ])
    def test_float_fields_match(self, golden, fresh, key):
        np.testing.assert_allclose(fresh[key], golden[key], atol=1e-8,
                                   err_msg=key)

    @pytest.mark.parametrize("key", ["switch_count", "step_count"])
    def test_integer_fields_match_exactly(self, golden, fresh, key):
        np.testing.assert_array_equal(fresh[key], golden[key], err_msg=key)

    def test_batch_shape(self, golden):
        assert golden["service_time_s"].shape == (10,)
        assert golden["step_count"].sum() > 0

    def test_dedupe_pair_rows_identical(self, fresh):
        """Rows 6 and 8 are identical CAPMAN configurations sharing one
        learned trajectory -- their summaries must agree exactly."""
        for key in ("service_time_s", "energy_delivered_j", "switch_count",
                    "step_count", "max_cpu_temp_c", "big_time_s",
                    "little_time_s"):
            assert fresh[key][6] == fresh[key][8], key


def _regenerate() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(GOLDEN, **_payload())
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    _regenerate()
