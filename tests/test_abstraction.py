"""Tests for similarity-driven state abstraction."""

import pytest

from repro.core.abstraction import abstract_mdp, cluster_states, lift_policy
from repro.core.graph import MDPGraph
from repro.core.mdp import MDP, random_mdp
from repro.core.similarity import StructuralSimilarity
from repro.core.solver import value_iteration


def _twin_mdp():
    """u and v are exact structural twins; w is absorbing."""
    return MDP(
        states=["u", "v", "w"],
        actions=["a"],
        transitions={("u", "a"): {"w": 1.0}, ("v", "a"): {"w": 1.0}},
        rewards={("u", "a", "w"): 0.5, ("v", "a", "w"): 0.5},
    )


def _solve_similarity(mdp, **kw):
    return StructuralSimilarity(MDPGraph(mdp), c_s=1.0, c_a=0.9, **kw).solve()


class TestClustering:
    def test_twins_merge(self):
        sim = _solve_similarity(_twin_mdp())
        clustering = cluster_states(sim, threshold=0.05)
        assert clustering.assignment["u"] == clustering.assignment["v"]
        assert clustering.n_clusters == 2  # {u, v} and {w}

    def test_zero_threshold_keeps_all(self):
        mdp = random_mdp(6, 2, seed=31, absorbing=1)
        sim = _solve_similarity(mdp)
        clustering = cluster_states(sim, threshold=0.0)
        # Only exactly-identical states merge at threshold 0; random
        # rewards make that essentially impossible.
        assert clustering.n_clusters >= mdp.n_states - 1

    def test_huge_threshold_merges_live_states(self):
        mdp = random_mdp(6, 2, seed=31, absorbing=1)
        sim = _solve_similarity(mdp)
        clustering = cluster_states(sim, threshold=1.0)
        # Absorbing and live states never merge (Eq. 3 base case).
        assert clustering.n_clusters == 2

    def test_members(self):
        sim = _solve_similarity(_twin_mdp())
        clustering = cluster_states(sim, threshold=0.05)
        rep = clustering.assignment["u"]
        assert set(clustering.members(rep)) == {"u", "v"}

    def test_negative_threshold_rejected(self):
        sim = _solve_similarity(_twin_mdp())
        with pytest.raises(ValueError):
            cluster_states(sim, threshold=-0.1)


class TestAbstractMdp:
    def test_abstract_preserves_twin_values(self):
        mdp = _twin_mdp()
        sim = _solve_similarity(mdp)
        clustering = cluster_states(sim, threshold=0.05)
        abstract = abstract_mdp(mdp, clustering)
        assert abstract.n_states == 2
        sol_abs = value_iteration(abstract, rho=0.9)
        sol_full = value_iteration(mdp, rho=0.9)
        rep = clustering.assignment["u"]
        assert sol_abs.value(rep) == pytest.approx(sol_full.value("u"), abs=1e-6)

    def test_abstract_transitions_normalised(self):
        mdp = random_mdp(8, 2, seed=37, absorbing=1)
        sim = _solve_similarity(mdp, max_iter=20)
        clustering = cluster_states(sim, threshold=0.4)
        abstract = abstract_mdp(mdp, clustering)
        abstract.validate()  # checks distributions sum to 1

    def test_lift_policy_covers_all_live_states(self):
        mdp = random_mdp(8, 2, seed=37, absorbing=1)
        sim = _solve_similarity(mdp, max_iter=20)
        clustering = cluster_states(sim, threshold=0.4)
        abstract = abstract_mdp(mdp, clustering)
        lifted = lift_policy(value_iteration(abstract, rho=0.9), clustering)
        for s in mdp.states:
            if mdp.available_actions(s):
                rep = clustering.assignment[s]
                if abstract.available_actions(rep):
                    assert s in lifted

    def test_lifted_policy_near_optimal_for_tight_threshold(self):
        mdp = random_mdp(10, 2, seed=41, absorbing=1)
        sim = _solve_similarity(mdp, max_iter=30)
        clustering = cluster_states(sim, threshold=0.02)
        abstract = abstract_mdp(mdp, clustering)
        lifted = lift_policy(value_iteration(abstract, rho=0.9), clustering)
        from repro.core.solver import policy_evaluation

        full = value_iteration(mdp, rho=0.9)
        # Only evaluate states where the lifted policy's action exists.
        usable = {s: a for s, a in lifted.items()
                  if a in mdp.available_actions(s)}
        values = policy_evaluation(mdp, usable, rho=0.9)
        for s, a in usable.items():
            # Eq. (10): loss bounded by threshold / (1 - rho), plus slack
            # for the clustering approximation.
            assert values[s] >= full.value(s) - 0.02 / (1 - 0.9) - 0.3
