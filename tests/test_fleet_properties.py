"""Property tests for the fleet batch (hypothesis).

Three structural invariants that must hold for *any* batch
composition, not just the seeded differential grid:

* **Permutation invariance** -- the device axis is pure data; shuffling
  rows shuffles results and changes nothing else.
* **Row independence** -- a device's result does not depend on who else
  is in the batch (each row equals its own batch-of-1 run).
* **Physical sanity** -- no NaN anywhere, no negative charge, no
  sub-ambient-implausible temperature, whatever the batch mix.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capman.baselines import DualPolicy, HeuristicPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import HONOR, NEXUS
from repro.fleet import DeviceSpec, FleetSpec
from repro.workload.generators import EtaStaticWorkload, VideoWorkload
from repro.workload.traces import record_trace

CONTROL_DT = 2.0
MAX_DURATION_S = 120.0
_VIDEO = record_trace(VideoWorkload(seed=7), duration_s=90.0)
_ETA = record_trace(EtaStaticWorkload(0.5, seed=1), duration_s=90.0)

#: Small heterogeneous pool the strategies index into.  Mixes policies
#: (all vector-driven: Dual, CAPMAN, Heuristic), profiles, traces and
#: capacities -- including a 40 mAh cell that depletes inside the
#: window to drag the irregular-row fallback path into the properties,
#: and a CAPMAN twin so random batches exercise trajectory dedupe.
POOL = [
    ("dual-nexus-small",
     lambda: DeviceSpec(policy=DualPolicy(capacity_mah=40.0), trace=_VIDEO,
                        profile=NEXUS, control_dt=CONTROL_DT,
                        max_duration_s=MAX_DURATION_S)),
    ("capman-honor",
     lambda: DeviceSpec(policy=CapmanPolicy(capacity_mah=120.0), trace=_VIDEO,
                        profile=HONOR, control_dt=CONTROL_DT,
                        max_duration_s=MAX_DURATION_S)),
    ("heuristic-nexus",
     lambda: DeviceSpec(policy=HeuristicPolicy(capacity_mah=120.0),
                        trace=_ETA, profile=NEXUS, control_dt=CONTROL_DT,
                        max_duration_s=MAX_DURATION_S)),
    ("dual-honor-eta",
     lambda: DeviceSpec(policy=DualPolicy(capacity_mah=400.0), trace=_ETA,
                        profile=HONOR, control_dt=CONTROL_DT,
                        max_duration_s=MAX_DURATION_S)),
    # Same configuration as capman-honor: batches drawing both rows
    # must dedupe them onto one learned trajectory and still match.
    ("capman-honor-twin",
     lambda: DeviceSpec(policy=CapmanPolicy(capacity_mah=120.0), trace=_VIDEO,
                        profile=HONOR, control_dt=CONTROL_DT,
                        max_duration_s=MAX_DURATION_S)),
]


def _frozen(result) -> bytes:
    return pickle.dumps(
        dataclasses.replace(result, wall_time_s=0.0, telemetry=None),
        protocol=4)


@functools.lru_cache(maxsize=None)
def _solo_frozen(pool_index: int) -> bytes:
    """Frozen batch-of-1 result for one pool device (cached)."""
    [result] = FleetSpec([POOL[pool_index][1]()]).build().run()
    return _frozen(result)


@settings(max_examples=10, deadline=None)
@given(order=st.permutations(range(len(POOL))))
def test_device_axis_is_permutation_invariant(order):
    sim = FleetSpec([POOL[i][1]() for i in order]).build()
    results = sim.run()
    for slot, pool_index in enumerate(order):
        assert _frozen(results[slot]) == _solo_frozen(pool_index), \
            f"{POOL[pool_index][0]} changed under ordering {order}"


@settings(max_examples=10, deadline=None)
@given(rows=st.lists(st.integers(0, len(POOL) - 1), min_size=1, max_size=6))
def test_rows_are_independent_of_batch_mates(rows):
    """Any multiset of pool devices: each row equals its solo run."""
    sim = FleetSpec([POOL[i][1]() for i in rows]).build()
    results = sim.run()
    assert len(results) == len(rows)
    for slot, pool_index in enumerate(rows):
        assert _frozen(results[slot]) == _solo_frozen(pool_index), \
            f"{POOL[pool_index][0]} contaminated by batch {rows}"


@settings(max_examples=8, deadline=None)
@given(rows=st.lists(st.integers(0, len(POOL) - 1), min_size=1, max_size=5))
def test_state_stays_physical(rows):
    """After a full run: finite everywhere, charges non-negative,
    temperatures sane, accounting monotone."""
    sim = FleetSpec([POOL[i][1]() for i in rows]).build()
    results = sim.run()
    st_ = sim.state

    for arr in (st_.avail_b, st_.bound_b, st_.avail_l, st_.bound_l,
                st_.throughput_b, st_.throughput_l, st_.energy_j,
                st_.big_time_s, st_.little_time_s, st_.hot_time_s,
                st_.tec_on_time_s, st_.tec_energy_j, st_.service_time_s,
                st_.supercap_v):
        assert np.all(np.isfinite(arr))
        assert np.all(arr >= 0.0), arr
    for temps in st_.node_temps:
        assert np.all(np.isfinite(temps))
        assert np.all(temps > -40.0) and np.all(temps < 200.0)
    assert np.all(np.isfinite(st_.cell_temp_c))
    assert np.all(st_.steps_run >= 1)
    assert np.all(st_.switch_events >= 0)
    assert np.all(st_.brownouts >= 0)

    for result in results:
        assert result.energy_delivered_j >= 0.0
        assert result.service_time_s > 0.0
        assert np.isfinite(result.max_cpu_temp_c)
        soc = result.metrics.series("soc")
        assert np.all(np.isfinite(soc.values))
        assert np.all(soc.values >= 0.0)
        assert np.all(soc.values <= 1.0 + 1e-12)
        assert np.all(np.diff(soc.times) > 0.0)  # strictly increasing time
