"""Tests for the 45 degC hot-spot thermostat."""

import pytest

from repro.thermal.hotspot import (
    HOT_SPOT_THRESHOLD_C,
    ThermostatController,
    hot_spot_fraction,
)


class TestThermostat:
    def test_paper_threshold(self):
        assert HOT_SPOT_THRESHOLD_C == 45.0
        assert ThermostatController().threshold_c == 45.0

    def test_turns_on_at_threshold(self):
        t = ThermostatController()
        assert not t.update(44.9)
        assert t.update(45.0)

    def test_hysteresis_prevents_chatter(self):
        t = ThermostatController(hysteresis_k=2.0)
        t.update(46.0)
        assert t.update(44.0)  # inside the band: stays on
        assert not t.update(42.9)  # below band: off

    def test_transitions_logged(self):
        t = ThermostatController()
        t.update(46.0, now_s=1.0)
        t.update(40.0, now_s=2.0)
        assert t.transitions == ((1.0, True), (2.0, False))

    def test_no_duplicate_transitions(self):
        t = ThermostatController()
        t.update(46.0)
        t.update(47.0)
        t.update(48.0)
        assert len(t.transitions) == 1

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            ThermostatController(hysteresis_k=-1.0)


class TestHotSpotFraction:
    def test_empty_is_zero(self):
        assert hot_spot_fraction([]) == 0.0

    def test_counts_threshold_crossings(self):
        assert hot_spot_fraction([44.0, 45.0, 46.0, 40.0]) == pytest.approx(0.5)

    def test_custom_threshold(self):
        assert hot_spot_fraction([30.0, 41.0], threshold_c=40.0) == pytest.approx(0.5)
