"""Tests for the power profiler and the battery cost model."""

import pytest

from repro.battery.chemistry import LMO, NCA
from repro.capman.profiler import BatteryCostModel, PowerProfiler, device_key_of
from repro.core.solver import value_iteration
from repro.device.phone import DemandSlice, Phone
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def observed_profiler():
    trace = record_trace(VideoWorkload(seed=11), 900.0)
    prof = PowerProfiler()
    phone = Phone()
    segs = list(trace)
    for a, b in zip(segs, segs[1:]):
        prof.observe(a, b, measured_power_w=phone.demand_power_w(b.demand))
    for seg in segs:
        prof.record_dwell(seg.demand, seg.duration_s)
    return prof


class TestDeviceKey:
    def test_key_from_demand(self):
        key = device_key_of(DemandSlice(cpu_util=90.0, screen_on=True,
                                        wifi_kbps=300.0))
        assert key == ("C0", "on", "send")

    def test_idle_key(self):
        assert device_key_of(DemandSlice()) == ("sleep", "off", "idle")


class TestCostModel:
    def test_little_cheaper_for_bursts(self):
        m = BatteryCostModel(little_reserve_per_w=0.1)
        burst = 2.8
        assert m.cost_w(burst, LMO, False) < m.cost_w(burst, NCA, False)

    def test_big_cheaper_for_gentle_load_with_reserve(self):
        m = BatteryCostModel(little_reserve_per_w=0.3)
        gentle = 0.6
        assert m.cost_w(gentle, NCA, False) < m.cost_w(gentle, LMO, False)

    def test_switching_costs_extra(self):
        m = BatteryCostModel()
        assert m.cost_w(1.0, NCA, True) > m.cost_w(1.0, NCA, False)

    def test_reward_in_unit_interval(self):
        m = BatteryCostModel()
        for p in (0.0, 0.5, 2.0, 5.0):
            for chem in (NCA, LMO):
                r = m.reward(p, chem, False)
                assert 0.0 <= r <= 1.0

    def test_reward_decreases_with_cost(self):
        m = BatteryCostModel()
        assert m.reward(0.3, NCA, False) > m.reward(3.0, NCA, False)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            BatteryCostModel().cost_w(-1.0, NCA, False)

    def test_sustainable_current_ordering(self):
        m = BatteryCostModel()
        assert m.sustainable_current_a(LMO) > m.sustainable_current_a(NCA)


class TestProfiler:
    def test_observations_counted(self, observed_profiler):
        assert observed_profiler.n_observations > 50

    def test_observed_keys_cover_video_states(self, observed_profiler):
        keys = observed_profiler.observed_device_keys
        assert ("C1", "on", "send") in keys

    def test_measured_power_preferred_over_table(self, observed_profiler):
        # Video play state measured ~0.93 W, far from the 2.5 W Table III sum.
        p = observed_profiler.state_power_w(("C1", "on", "access"))
        assert 0.7 < p < 1.2

    def test_table_fallback_for_unseen_key(self, observed_profiler):
        p = observed_profiler.state_power_w(("sleep", "off", "idle"))
        assert p == pytest.approx((55.0 + 22.0 + 60.0) / 1000.0)

    def test_reserve_price_calibration_splits_video(self, observed_profiler):
        price = observed_profiler.calibrate_reserve_price()
        big, little = NCA, LMO
        m = observed_profiler.cost_model
        import dataclasses

        m = dataclasses.replace(m, little_reserve_per_w=price)
        play = observed_profiler.state_power_w(("C1", "on", "access"))
        burst = observed_profiler.state_power_w(("C1", "on", "send"))
        # With the calibrated price, plays prefer big, bursts LITTLE.
        assert m.cost_w(play, big, False) < m.cost_w(play, little, False)
        assert m.cost_w(burst, little, False) < m.cost_w(burst, big, False)


class TestDecisionMdp:
    def test_structure(self, observed_profiler):
        mdp = observed_profiler.build_decision_mdp()
        assert set(mdp.actions) == {"use_big", "use_little"}
        assert mdp.n_states == 2 * len(observed_profiler.observed_device_keys)
        mdp.validate()

    def test_learned_policy_splits_by_burstiness(self, observed_profiler):
        mdp = observed_profiler.build_decision_mdp()
        sol = value_iteration(mdp, rho=0.9)
        play_state = (("C1", "on", "access"), "big")
        burst_state = (("C1", "on", "send"), "big")
        assert sol.policy[play_state] == "use_big"
        assert sol.policy[burst_state] == "use_little"

    def test_empty_profiler_rejected(self):
        with pytest.raises(ValueError):
            PowerProfiler().build_decision_mdp()


class TestSyscallMdp:
    def test_actions_are_class_battery_pairs(self, observed_profiler):
        mdp = observed_profiler.build_syscall_mdp()
        mdp.validate()
        assert all(isinstance(a, tuple) and len(a) == 2 for a in mdp.actions)
        battery_halves = {a[1] for a in mdp.actions}
        assert battery_halves == {"big", "LITTLE"}

    def test_solvable(self, observed_profiler):
        mdp = observed_profiler.build_syscall_mdp()
        sol = value_iteration(mdp, rho=0.8)
        assert all(v >= 0.0 for v in sol.values.values())


class TestDeviceKeyCache:
    def test_memoised_derivation_counts_hits(self):
        from repro.capman.profiler import device_key_cache_info

        demand = DemandSlice(cpu_util=42.0, screen_on=True, wifi_kbps=7.0)
        before = device_key_cache_info()
        first = device_key_of(demand)
        again = device_key_of(demand)
        after = device_key_cache_info()
        assert first == again
        assert after.hits >= before.hits + 1

    def test_threshold_is_part_of_the_key(self):
        demand = DemandSlice(cpu_util=42.0, wifi_kbps=500.0)
        low = device_key_of(demand, wifi_threshold_kbps=100.0)
        high = device_key_of(demand, wifi_threshold_kbps=1000.0)
        # 500 kbps counts as "send" under the low threshold only.
        assert low == ("C1", "off", "send")
        assert high == ("C1", "off", "access")
