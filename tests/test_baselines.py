"""Tests for the Oracle / Practice / Dual / Heuristic baselines."""

import pytest

from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.battery.switch import BatterySelection
from repro.capman.baselines import (
    DualPolicy,
    HeuristicPolicy,
    OraclePolicy,
    PracticePolicy,
)
from repro.device.phone import DemandSlice, Phone
from repro.sim.discharge import PolicyContext, run_discharge_cycle
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


def _ctx(power=1.0, util=20.0, soc_big=0.9, soc_little=0.9,
         active=BatterySelection.BIG, temp=30.0):
    return PolicyContext(
        now_s=0.0,
        demand=DemandSlice(cpu_util=util, screen_on=True),
        syscall=None,
        predicted_power_w=power,
        cpu_temp_c=temp,
        surface_temp_c=temp - 5,
        soc_big=soc_big,
        soc_little=soc_little,
        active=active,
        segment_start=True,
    )


class TestPractice:
    def test_single_pack_with_combined_capacity(self):
        pack = PracticePolicy().build_pack()
        assert isinstance(pack, SingleBatteryPack)
        assert pack.cell.capacity_mah == pytest.approx(5000.0)

    def test_never_switches(self):
        assert PracticePolicy().decide_battery(_ctx()) is None

    def test_no_tec(self):
        assert not PracticePolicy().uses_tec


class TestDual:
    def test_little_first(self):
        assert DualPolicy().decide_battery(_ctx()) is BatterySelection.LITTLE

    def test_falls_back_to_big_when_little_empty(self):
        ctx = _ctx(soc_little=0.01)
        assert DualPolicy().decide_battery(ctx) is BatterySelection.BIG

    def test_builds_big_little_pack(self):
        assert isinstance(DualPolicy().build_pack(), BigLittlePack)


class TestHeuristic:
    def test_high_utilisation_goes_little(self):
        ctx = _ctx(util=90.0)
        assert HeuristicPolicy().decide_battery(ctx) is BatterySelection.LITTLE

    def test_low_utilisation_goes_big(self):
        ctx = _ctx(util=10.0, active=BatterySelection.LITTLE)
        assert HeuristicPolicy().decide_battery(ctx) is BatterySelection.BIG

    def test_hysteresis_holds_selection(self):
        pol = HeuristicPolicy(util_threshold=70.0, util_hysteresis=12.0)
        # 65% is inside the band: stay on LITTLE.
        ctx = _ctx(util=65.0, active=BatterySelection.LITTLE)
        assert pol.decide_battery(ctx) is None

    def test_blind_to_network_power(self):
        """The paper's weakness: utilisation-based prediction misses
        radio-heavy bursts."""
        pol = HeuristicPolicy()
        ctx = _ctx(util=20.0, power=2.8)  # heavy radio, light CPU
        assert pol.decide_battery(ctx) is not BatterySelection.LITTLE


class TestOracle:
    def test_tunes_threshold_from_trace(self):
        trace = record_trace(VideoWorkload(seed=13), 240.0)
        oracle = OraclePolicy(capacity_mah=60.0, tuning_scale=0.2)
        phone = Phone(pack=oracle.build_pack())
        oracle.on_cycle_start(trace, phone)
        assert oracle._threshold_w in oracle.candidate_thresholds_w

    def test_routes_bursts_to_little(self):
        oracle = OraclePolicy()
        oracle._threshold_w = 1.6
        assert oracle.decide_battery(_ctx(power=2.5)) is BatterySelection.LITTLE
        assert oracle.decide_battery(_ctx(power=0.8)) is BatterySelection.BIG

    def test_respects_depleted_cells(self):
        oracle = OraclePolicy()
        oracle._threshold_w = 1.6
        assert (
            oracle.decide_battery(_ctx(power=2.5, soc_little=0.01))
            is BatterySelection.BIG
        )
        assert (
            oracle.decide_battery(_ctx(power=0.5, soc_big=0.01))
            is BatterySelection.LITTLE
        )

    def test_uses_tec(self):
        assert OraclePolicy().uses_tec


class TestEndToEndOrdering:
    def test_dual_beats_practice_on_video(self):
        """The core big.LITTLE claim at test scale."""
        trace = record_trace(VideoWorkload(seed=17), 240.0)
        dual = run_discharge_cycle(DualPolicy(capacity_mah=40.0), trace,
                                   control_dt=2.0, max_duration_s=10 * 3600.0)
        practice = run_discharge_cycle(PracticePolicy(capacity_mah=80.0), trace,
                                       control_dt=2.0, max_duration_s=10 * 3600.0)
        assert dual.service_time_s > practice.service_time_s
