"""Tests for value iteration / policy iteration / policy evaluation."""

import pytest

from repro.core.mdp import MDP, random_mdp
from repro.core.solver import policy_evaluation, policy_iteration, value_iteration


def _chain_mdp():
    """s0 -a-> s1 -a-> s2 (absorbing), reward 1 on the last hop."""
    return MDP(
        states=["s0", "s1", "s2"],
        actions=["a"],
        transitions={("s0", "a"): {"s1": 1.0}, ("s1", "a"): {"s2": 1.0}},
        rewards={("s1", "a", "s2"): 1.0},
    )


def _choice_mdp():
    """One state, two self-loop actions with rewards 0.2 / 0.9."""
    return MDP(
        states=["s"],
        actions=["lo", "hi"],
        transitions={("s", "lo"): {"s": 1.0}, ("s", "hi"): {"s": 1.0}},
        rewards={("s", "lo", "s"): 0.2, ("s", "hi", "s"): 0.9},
    )


class TestValueIteration:
    def test_chain_values(self):
        sol = value_iteration(_chain_mdp(), rho=0.5, tol=1e-10)
        assert sol.value("s2") == 0.0
        assert sol.value("s1") == pytest.approx(1.0)
        assert sol.value("s0") == pytest.approx(0.5)

    def test_picks_better_action(self):
        sol = value_iteration(_choice_mdp(), rho=0.9)
        assert sol.policy["s"] == "hi"
        assert sol.value("s") == pytest.approx(0.9 / (1 - 0.9), rel=1e-4)

    def test_value_bounded_by_geometric_series(self):
        mdp = random_mdp(10, 3, seed=2)
        rho = 0.8
        sol = value_iteration(mdp, rho=rho)
        vmax = 1.0 / (1.0 - rho)
        assert all(0.0 <= v <= vmax + 1e-6 for v in sol.values.values())

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            value_iteration(_chain_mdp(), rho=1.0)

    def test_residual_below_tolerance(self):
        sol = value_iteration(random_mdp(8, 2, seed=1), rho=0.9, tol=1e-9)
        assert sol.residual < 1e-9

    def test_absorbing_states_have_no_policy_entry(self):
        sol = value_iteration(_chain_mdp(), rho=0.9)
        assert sol.action("s2") is None

    def test_q_consistent_with_v(self):
        mdp = random_mdp(8, 3, seed=4)
        sol = value_iteration(mdp, rho=0.85, tol=1e-10)
        for s in mdp.states:
            acts = mdp.available_actions(s)
            if acts:
                assert sol.value(s) == pytest.approx(
                    max(sol.q_values[(s, a)] for a in acts), abs=1e-6
                )


class TestPolicyEvaluation:
    def test_matches_optimal_for_optimal_policy(self):
        mdp = random_mdp(8, 3, seed=7)
        sol = value_iteration(mdp, rho=0.9, tol=1e-10)
        values = policy_evaluation(mdp, sol.policy, rho=0.9, tol=1e-10)
        for s in mdp.states:
            assert values[s] == pytest.approx(sol.value(s), abs=1e-6)

    def test_suboptimal_policy_valued_lower(self):
        mdp = _choice_mdp()
        bad = {"s": "lo"}
        values = policy_evaluation(mdp, bad, rho=0.9, tol=1e-10)
        sol = value_iteration(mdp, rho=0.9, tol=1e-10)
        assert values["s"] < sol.value("s")


class TestPolicyIteration:
    def test_agrees_with_value_iteration(self):
        mdp = random_mdp(10, 3, seed=11)
        vi = value_iteration(mdp, rho=0.9, tol=1e-10)
        pi = policy_iteration(mdp, rho=0.9, tol=1e-10)
        for s in mdp.states:
            assert pi.value(s) == pytest.approx(vi.value(s), abs=1e-5)

    def test_policies_equally_good(self):
        mdp = random_mdp(9, 2, seed=13)
        vi = value_iteration(mdp, rho=0.85, tol=1e-10)
        pi = policy_iteration(mdp, rho=0.85, tol=1e-10)
        # The argmax may tie; compare achieved values instead.
        v_pi = policy_evaluation(mdp, pi.policy, rho=0.85, tol=1e-10)
        for s in mdp.states:
            assert v_pi[s] == pytest.approx(vi.value(s), abs=1e-5)

    def test_converges_in_few_iterations(self):
        pi = policy_iteration(random_mdp(8, 2, seed=17), rho=0.9)
        assert pi.iterations < 20
