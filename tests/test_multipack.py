"""Tests for the fully mixed N-battery pack extension."""

import pytest

from repro.battery.chemistry import LCO, LFP, LMO, NCA
from repro.battery.multipack import GreedyCellRouter, MixedPack


def _pack(mah=400.0, chems=(NCA, LMO)):
    return MixedPack.from_chemistries(chems, mah)


class TestMixedPack:
    def test_construction(self):
        pack = _pack(chems=(NCA, LMO, LFP))
        assert pack.n_cells == 3
        assert pack.state_of_charge == pytest.approx(1.0)

    def test_empty_pack_rejected(self):
        with pytest.raises(ValueError):
            MixedPack(cells=[])

    def test_select_switches(self):
        pack = _pack()
        assert pack.select(1)
        assert pack.active_index == 1
        assert not pack.select(1)  # no-op
        assert pack.switch_count == 1

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            _pack().select(5)

    def test_draw_serves_demand(self):
        pack = _pack()
        res = pack.draw(1.0, 2.0)
        assert res.energy_j == pytest.approx(2.0)
        assert not res.shortfall

    def test_switch_energy_billed(self):
        # Identical chemistries isolate the switch overhead itself.
        pack = _pack(chems=(NCA, NCA))
        before = sum(c.charge_amp_s for c in pack.cells)
        pack.draw(1.0, 2.0)
        baseline_drawn = before - sum(c.charge_amp_s for c in pack.cells)

        pack2 = _pack(chems=(NCA, NCA))
        pack2.select(1)
        before2 = sum(c.charge_amp_s for c in pack2.cells)
        pack2.draw(1.0, 2.0)
        switched_drawn = before2 - sum(c.charge_amp_s for c in pack2.cells)
        assert switched_drawn > baseline_drawn

    def test_failover_across_cells(self):
        pack = _pack(mah=100.0)
        # Exhaust cell 0's available well.
        while not pack.cells[0].depleted:
            pack.cells[0].draw_power(3.0, 10.0)
        res = pack.draw(1.0, 2.0)
        assert res.energy_j == pytest.approx(2.0, rel=0.02)
        assert pack.active_index != 0 or pack.switch_count >= 1

    def test_depletes_eventually(self):
        pack = _pack(mah=20.0)
        t = 0.0
        while not pack.depleted and t < 100_000:
            pack.draw(0.8, 10.0)
            t += 10.0
        assert pack.state_of_charge < 0.03


class TestGreedyRouter:
    def test_routes_bursts_to_high_rate_cell(self):
        pack = _pack(mah=2500.0, chems=(NCA, LMO))
        router = GreedyCellRouter(pack)
        assert router.route(3.0) == 1  # LMO for the burst

    def test_routes_gentle_to_big_cell(self):
        pack = _pack(mah=2500.0, chems=(NCA, LMO))
        router = GreedyCellRouter(pack)
        # From the big cell, a gentle load stays put (switch penalty).
        assert router.route(0.3) == 0

    def test_switch_penalty_creates_stickiness(self):
        pack = _pack(mah=2500.0, chems=(NCA, LMO))
        router = GreedyCellRouter(pack, switch_penalty_w=10.0)
        # Even a burst cannot justify an (absurd) 10 W switch penalty.
        assert router.route(3.0) == 0

    def test_step_serves_and_tracks(self):
        pack = _pack(mah=2500.0, chems=(NCA, LMO))
        router = GreedyCellRouter(pack)
        res = router.step(2.5, 2.0)
        assert res.energy_j == pytest.approx(5.0)
        shares = router.cell_shares()
        assert set(shares) == {"NCA[0]", "LMO[1]"}

    def test_three_cell_pack_orders_by_capability(self):
        """With three chemistries, the hardest pull goes to the most
        rate-capable live cell."""
        pack = _pack(mah=2500.0, chems=(LCO, NCA, LFP))
        router = GreedyCellRouter(pack)
        assert router.route(6.0) == 2  # LFP: 5-star discharge rate

    def test_router_skips_depleted_cells(self):
        pack = _pack(mah=50.0, chems=(NCA, LMO))
        while not pack.cells[1].depleted:
            pack.cells[1].draw_power(3.0, 10.0)
        router = GreedyCellRouter(pack)
        assert router.route(3.0) == 0

    def test_mixed_pack_outlasts_worst_single_cell(self):
        """Routing across 3 cells must deliver more than the same total
        capacity served naively from one chemistry at a time in a bad
        order (sanity for the N-way extension)."""
        pack = MixedPack.from_chemistries((LCO, NCA, LMO), 120.0)
        router = GreedyCellRouter(pack)
        delivered = 0.0
        steps = 0
        while not pack.depleted and steps < 30_000:
            # Alternate gentle stretches and bursts.
            power = 3.0 if steps % 10 == 0 else 0.5
            delivered += router.step(power, 5.0).energy_j
            steps += 1
        # All three cells participate.
        assert all(c.state_of_charge < 0.7 for c in pack.cells)
        assert delivered > 0.0
