"""Crash-safety drill for the service: SIGKILL mid-sweep, restart,
prove zero lost / double-committed / recomputed cells.

Pattern of ``tests/dist_failover_helper.py``, one level up the stack:
the victim here is the whole API server (``python -m repro.service``
in a subprocess), not a coordinator.  The parent

1. boots the service on an ephemeral port, submits a slow grid (the
   wall-time-burning ``slow_dual`` policy keeps cells in flight long
   enough for the kill to land mid-sweep);
2. watches the job's per-cell run journal until some -- but not all --
   cells have durable commits, then SIGKILLs the server;
3. restarts the service on the *same state root*: WAL replay must
   re-enqueue the job and resume its sweep;
4. asserts the finished job committed every cell exactly once, resumed
   (rather than recomputed) everything committed before the kill, and
   served results byte-identical to a direct in-process run.
"""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

from repro.sim.chaos import journal_commit_counts
from repro.sim.sweep import ScenarioRunner
from repro.service.schemas import parse_spec

from service_client import api, slow_grid, wait_for_job

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Grid geometry: 6 one-policy cells, each burning ~DELAY_S of wall
#: time, so the kill window after the second commit is wide.
CAPACITIES = (30, 40, 50, 60, 70, 80)
DELAY_S = 0.5


def _spawn(root: Path) -> subprocess.Popen:
    """Start ``python -m repro.service`` and wait for its port line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("CAPMAN_DIST_SECRET", None)
    env.pop("CAPMAN_DIST_WORKERS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--root", str(root),
         "--job-runners", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    line = proc.stdout.readline()
    assert line.startswith("listening on http://"), line
    proc.base_url = line.split("listening on ", 1)[1].strip()
    return proc


def _wait_for_commits(journal: Path, minimum: int,
                      deadline_s: float = 60.0) -> int:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if journal.exists():
            committed = len(journal_commit_counts(journal))
            if committed >= minimum:
                return committed
        time.sleep(0.02)
    raise AssertionError(f"no {minimum} commits in {journal} "
                         f"within {deadline_s}s")


def test_sigkilled_service_resumes_with_zero_lost_or_recomputed_cells(
        tmp_path):
    root = tmp_path / "state"
    grid = slow_grid(capacities=CAPACITIES, delay_s=DELAY_S)
    total = len(CAPACITIES)

    first = _spawn(root)
    try:
        code, ack = api(first.base_url, "POST", "/jobs", body=grid)
        assert code == 201, ack
        job_id = ack["job_id"]
        run_journal = root / "jobs" / job_id / "run.journal"

        # Kill only once real commits exist and work remains: the
        # classic torn-sweep state.
        committed_at_kill = _wait_for_commits(run_journal, minimum=2)
        first.kill()
        first.wait(timeout=30)
        assert committed_at_kill < total, \
            "kill landed after the sweep finished; slow the grid down"
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30)

    # Commits made before the kill are durable and unique already.
    pre_kill = journal_commit_counts(run_journal)
    assert pre_kill and set(pre_kill.values()) == {1}

    second = _spawn(root)
    try:
        # The WAL ack was durable: the restarted server knows the job
        # without being told.
        code, status = api(second.base_url, "GET", f"/jobs/{job_id}")
        assert code == 200, status

        status = wait_for_job(second.base_url, job_id, deadline_s=240.0)
        assert status["state"] == "done", status

        # Exactly-once accounting: every cell committed exactly once
        # across both incarnations -- zero lost, zero double-committed.
        counts = journal_commit_counts(run_journal)
        assert sorted(counts) == list(range(total))
        assert set(counts.values()) == {1}

        # Zero recomputation: everything committed before the kill
        # was replayed from the journal, and only the remainder ran.
        stats = status["stats"]
        assert stats["cells_resumed"] >= max(committed_at_kill,
                                             len(pre_kill))
        assert stats["cells_resumed"] + stats["cells_computed"] == total

        code, results = api(second.base_url, "GET",
                            f"/jobs/{job_id}/results")
        assert code == 200 and results["count"] == total
        served = results["cells"]
    finally:
        second.kill()
        second.wait(timeout=30)

    # Byte-identity: the interrupted, resumed, HTTP-served results are
    # the direct in-process run's results, bit for bit.
    import base64

    direct = ScenarioRunner().run(parse_spec(grid))
    assert [pickle.dumps(r, protocol=4) for r in direct.results] \
        == [base64.b64decode(cell) for cell in served]


def test_restart_after_clean_completion_serves_results_from_journal(
        tmp_path):
    """A done job outlives its server: the restarted process must
    rematerialise results from the run journal with zero recompute."""
    root = tmp_path / "state"
    grid = {
        "policies": {"D30": {"type": "dual", "capacity_mah": 30.0}},
        "traces": {"V": {"workload": "video", "seed": 1,
                         "duration_s": 60.0}},
        "max_duration_s": 600.0,
    }
    first = _spawn(root)
    try:
        code, ack = api(first.base_url, "POST", "/jobs", body=grid)
        job_id = ack["job_id"]
        wait_for_job(first.base_url, job_id)
        code, before = api(first.base_url, "GET",
                           f"/jobs/{job_id}/results")
        assert code == 200
    finally:
        first.kill()
        first.wait(timeout=30)

    second = _spawn(root)
    try:
        code, status = api(second.base_url, "GET", f"/jobs/{job_id}")
        assert code == 200 and status["state"] == "done"
        code, after = api(second.base_url, "GET",
                          f"/jobs/{job_id}/results")
        assert code == 200
        assert after["cells"] == before["cells"]
        # Rematerialisation replayed commits; nothing ran again.
        counts = journal_commit_counts(root / "jobs" / job_id
                                       / "run.journal")
        assert set(counts.values()) == {1}
    finally:
        second.kill()
        second.wait(timeout=30)
