"""Golden-regression tests for the Algorithm 1 fixed point.

A small hand-built MDP (two structurally identical live states, a
reward-skewed heavy state, two absorbing sinks) is solved once with the
reference solver at tight tolerance and its converged matrices are
frozen on disk.  Both solvers must keep reproducing those matrices to
1e-8, and the ``most_similar_state`` tie-breaking (lowest state index
wins) stays pinned.

Regenerate the fixture after a *deliberate* semantic change with::

    PYTHONPATH=src python tests/test_similarity_golden.py
"""

import pathlib

import numpy as np
import pytest

from repro.core.graph import MDPGraph
from repro.core.mdp import MDP
from repro.core.similarity import StructuralSimilarity

GOLDEN = pathlib.Path(__file__).parent / "data" / "similarity_golden.npz"

#: Solver constants baked into the fixture.
C_S, C_A, TOL = 0.95, 0.9, 1e-12


def canonical_mdp():
    """The frozen MDP behind the golden matrices.

    ``twin`` duplicates ``idle`` exactly (same transitions, same
    rewards) so the fixed point carries a genuine tie; ``sink1`` and
    ``sink2`` are absorbing (Eq. 3 base rows).
    """
    return MDP(
        states=["idle", "light", "heavy", "twin", "sink1", "sink2"],
        actions=["run", "halt"],
        transitions={
            ("idle", "run"): {"light": 0.6, "heavy": 0.4},
            ("idle", "halt"): {"sink1": 1.0},
            ("light", "run"): {"light": 0.5, "heavy": 0.3, "sink1": 0.2},
            ("light", "halt"): {"sink1": 0.7, "sink2": 0.3},
            ("heavy", "run"): {"heavy": 0.8, "sink2": 0.2},
            ("heavy", "halt"): {"sink2": 1.0},
            ("twin", "run"): {"light": 0.6, "heavy": 0.4},
            ("twin", "halt"): {"sink1": 1.0},
        },
        rewards={
            ("idle", "run", "light"): 0.8,
            ("idle", "run", "heavy"): 0.3,
            ("idle", "halt", "sink1"): 0.1,
            ("light", "run", "light"): 0.7,
            ("light", "run", "heavy"): 0.2,
            ("light", "run", "sink1"): 0.0,
            ("light", "halt", "sink1"): 0.2,
            ("light", "halt", "sink2"): 0.4,
            ("heavy", "run", "heavy"): 0.1,
            ("heavy", "run", "sink2"): 0.0,
            ("heavy", "halt", "sink2"): 0.9,
            ("twin", "run", "light"): 0.8,
            ("twin", "run", "heavy"): 0.3,
            ("twin", "halt", "sink1"): 0.1,
        },
    )


def _solve(fast):
    solver = StructuralSimilarity(
        MDPGraph(canonical_mdp()), c_s=C_S, c_a=C_A, tol=TOL, max_iter=500, fast=fast
    )
    return solver.solve()


class TestGoldenMatrices:
    @pytest.fixture(scope="class")
    def golden(self):
        if not GOLDEN.exists():  # pragma: no cover - fixture must be committed
            pytest.fail(f"golden fixture missing: {GOLDEN}")
        with np.load(GOLDEN) as data:
            return {k: data[k] for k in data.files}

    @pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])
    def test_solver_reproduces_golden(self, golden, fast):
        res = _solve(fast)
        np.testing.assert_allclose(res.state_sim, golden["state_sim"], atol=1e-8)
        np.testing.assert_allclose(res.action_sim, golden["action_sim"], atol=1e-8)

    def test_solvers_agree_pairwise(self):
        ref = _solve(False)
        fast = _solve(True)
        np.testing.assert_allclose(fast.state_sim, ref.state_sim, atol=1e-8)
        np.testing.assert_allclose(fast.action_sim, ref.action_sim, atol=1e-8)

    def test_twin_states_are_identical(self, golden):
        g = MDPGraph(canonical_mdp())
        sim = golden["state_sim"]
        i, j = g.state_index("idle"), g.state_index("twin")
        assert sim[i, j] == pytest.approx(C_S, abs=1e-8)


class TestTieBreaking:
    """The first maximiser (lowest state index) wins ties, always."""

    @pytest.mark.parametrize("fast", [False, True], ids=["reference", "fast"])
    def test_exact_tie_resolves_to_lowest_index(self, fast):
        res = _solve(fast)
        # "idle" and "twin" are exact copies, so "light" is equally
        # similar to both -- and they are its row maximum; argmax must
        # keep the first (lower state index).
        assert res.sigma_s("light", "idle") == res.sigma_s("light", "twin")
        assert res.sigma_s("light", "idle") > res.sigma_s("light", "heavy")
        best, _ = res.most_similar_state("light")
        assert best == "idle"

    def test_both_solvers_pick_same_surrogates(self):
        ref = _solve(False)
        fast = _solve(True)
        for state in canonical_mdp().states:
            ref_best, ref_sim = ref.most_similar_state(state)
            fast_best, fast_sim = fast.most_similar_state(state)
            assert ref_best == fast_best
            assert ref_sim == pytest.approx(fast_sim, abs=1e-8)


def _regenerate():  # pragma: no cover - manual fixture refresh
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    res = _solve(fast=False)
    np.savez(
        GOLDEN,
        state_sim=res.state_sim,
        action_sim=res.action_sim,
        c_s=np.array(C_S),
        c_a=np.array(C_A),
        tol=np.array(TOL),
    )
    print(f"wrote {GOLDEN} ({res.iterations} iterations, residual {res.residual:.2e})")


if __name__ == "__main__":
    _regenerate()
