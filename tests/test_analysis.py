"""Tests for fitting, radar analysis, and reporting."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_exponential, fit_polynomial, r_squared
from repro.analysis.radar import (
    RADAR_AXES,
    dominates,
    pair_coverage,
    pareto_front,
    radar_rows,
)
from repro.analysis.reporting import (
    comparison_table,
    format_series,
    format_table,
    gain_percent,
)
from repro.battery.chemistry import CHEMISTRIES, LMO, NCA, NMC
from repro.sim.discharge import DischargeResult
from repro.sim.metrics import MetricsRecorder


class TestFitting:
    def test_polynomial_recovers_coefficients(self):
        x = np.linspace(0, 5, 30)
        y = 2.0 * x ** 2 - 3.0 * x + 1.0
        fit = fit_polynomial(x, y, degree=2)
        assert fit.params == pytest.approx((2.0, -3.0, 1.0), abs=1e-8)
        assert fit.r2 == pytest.approx(1.0)

    def test_polynomial_predict(self):
        fit = fit_polynomial([0, 1, 2], [0, 1, 2], degree=1)
        assert fit([3.0])[0] == pytest.approx(3.0)

    def test_exponential_recovers_trend(self):
        x = np.linspace(0, 3, 40)
        y = 1.5 * np.exp(1.2 * x) + 0.1
        fit = fit_exponential(x, y)
        assert fit.r2 > 0.99

    def test_r_squared_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, y) == 1.0
        assert r_squared(y, [2.0, 2.0, 2.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_polynomial([], [], 1)
        with pytest.raises(ValueError):
            fit_exponential([0, 1], [1, 2])


class TestRadar:
    def test_rows_cover_catalogue(self):
        rows = radar_rows()
        assert set(rows) == set(CHEMISTRIES)
        for row in rows.values():
            assert set(row) == set(RADAR_AXES)

    def test_no_single_chemistry_dominates_all(self):
        """Paper observation 1: nobody covers all five dimensions."""
        front = pareto_front()
        assert len(front) >= 2

    def test_dominates_semantics(self):
        # NMC (4,4,4,3,3) dominates LMO (3,1,4,3,3).
        assert dominates(NMC, LMO)
        assert not dominates(LMO, NMC)

    def test_pair_coverage_beats_singles(self):
        """Paper observation: combining batteries covers the radar."""
        pair = pair_coverage(NCA, LMO)
        single_nca = pair_coverage(NCA, NCA)
        single_lmo = pair_coverage(LMO, LMO)
        assert pair > single_nca
        assert pair > single_lmo


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_thins_points(self):
        pts = [(float(i), float(i)) for i in range(100)]
        out = format_series("s", pts, max_points=10)
        assert out.count("(") <= 13

    def test_gain_percent(self):
        assert gain_percent(2.0, 1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            gain_percent(1.0, 0.0)

    def test_comparison_table(self):
        def result(name, t):
            return DischargeResult(
                policy_name=name, workload_name="w", service_time_s=t,
                energy_delivered_j=10.0, switch_count=1, big_time_s=t / 2,
                little_time_s=t / 2, tec_on_time_s=0.0, tec_energy_j=0.0,
                max_cpu_temp_c=40.0, time_above_threshold_s=0.0,
                metrics=MetricsRecorder(),
            )

        rows = comparison_table(
            {"Practice": result("Practice", 100.0), "CAPMAN": result("CAPMAN", 214.0)}
        )
        assert rows[0].policy == "CAPMAN"
        assert rows[0].gain_over_reference_pct == pytest.approx(114.0)

    def test_comparison_requires_reference(self):
        with pytest.raises(KeyError):
            comparison_table({})
