"""Tests for the CAPMAN actuator."""

import pytest

from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.battery.chemistry import LCO
from repro.battery.switch import BatterySelection
from repro.capman.actuator import CapmanActuator
from repro.device.phone import DemandSlice, Phone


@pytest.fixture
def phone():
    return Phone(pack=BigLittlePack.from_chemistries(
        *_pair(), capacity_mah=500.0))


def _pair():
    from repro.battery.chemistry import pick_big_little

    return pick_big_little()


class TestActuator:
    def test_requires_big_little_pack(self):
        single = Phone(pack=SingleBatteryPack.from_chemistry(LCO, 500.0))
        with pytest.raises(TypeError):
            CapmanActuator(single)

    def test_apply_switches_battery(self, phone):
        act = CapmanActuator(phone)
        assert act.apply(BatterySelection.LITTLE, 1.0)
        assert act.active is BatterySelection.LITTLE
        assert act.switch_count == 1

    def test_none_keeps_selection(self, phone):
        act = CapmanActuator(phone)
        assert not act.apply(None, 1.0)
        assert act.switch_count == 0

    def test_tec_triggered_by_temperature(self, phone):
        act = CapmanActuator(phone)
        phone.thermal.set_temperature("cpu", 46.0)
        act.apply(None, 1.0)
        assert act.tec_is_on
        assert phone.tec.is_on

    def test_tec_released_below_band(self, phone):
        act = CapmanActuator(phone)
        phone.thermal.set_temperature("cpu", 46.0)
        act.apply(None, 1.0)
        phone.thermal.set_temperature("cpu", 40.0)
        act.apply(None, 2.0)
        assert not act.tec_is_on

    def test_control_signal_reconstructed(self, phone):
        act = CapmanActuator(phone)
        act.apply(BatterySelection.LITTLE, 1.0)
        act.apply(BatterySelection.BIG, 2.0)
        signal = act.control_signal(t_end=3.0)
        levels = {v for _, v in signal}
        assert levels == {3.5, 0.3}
        assert signal[0][1] == 3.5  # starts on BIG (high)
        assert signal[-1] == (3.0, 3.5)
