"""Tests for policy objects and rollout estimation."""

import pytest

from repro.core.mdp import MDP, random_mdp
from repro.core.policy import RandomPolicy, TabularPolicy, rollout_return
from repro.core.solver import value_iteration


def _choice_mdp():
    return MDP(
        states=["s"],
        actions=["lo", "hi"],
        transitions={("s", "lo"): {"s": 1.0}, ("s", "hi"): {"s": 1.0}},
        rewards={("s", "lo", "s"): 0.1, ("s", "hi", "s"): 0.9},
    )


class TestPolicies:
    def test_tabular_lookup(self):
        p = TabularPolicy({"s": "hi"})
        assert p.action("s") == "hi"
        assert p.action("unknown") is None

    def test_random_policy_stays_in_action_set(self):
        mdp = random_mdp(6, 3, seed=2)
        p = RandomPolicy(mdp, seed=0)
        for s in mdp.states:
            a = p.action(s)
            if mdp.available_actions(s):
                assert a in mdp.available_actions(s)

    def test_random_policy_none_on_absorbing(self):
        mdp = random_mdp(5, 2, seed=2, absorbing=1)
        p = RandomPolicy(mdp, seed=0)
        absorbing = [s for s in mdp.states if mdp.is_absorbing(s)][0]
        assert p.action(absorbing) is None


class TestRollout:
    def test_rollout_matches_analytic_value(self):
        mdp = _choice_mdp()
        rho = 0.9
        est = rollout_return(mdp, TabularPolicy({"s": "hi"}), "s", rho,
                             horizon=300, n_rollouts=4, seed=1)
        assert est == pytest.approx(0.9 / (1 - rho), rel=0.01)

    def test_better_policy_rolls_out_higher(self):
        mdp = _choice_mdp()
        hi = rollout_return(mdp, TabularPolicy({"s": "hi"}), "s", 0.8)
        lo = rollout_return(mdp, TabularPolicy({"s": "lo"}), "s", 0.8)
        assert hi > lo

    def test_optimal_policy_beats_random_on_average(self):
        mdp = random_mdp(8, 3, seed=10)
        sol = value_iteration(mdp, rho=0.8)
        opt = rollout_return(mdp, TabularPolicy(sol.policy), mdp.states[0], 0.8,
                             n_rollouts=64, seed=3)
        rnd = rollout_return(mdp, RandomPolicy(mdp, seed=4), mdp.states[0], 0.8,
                             n_rollouts=64, seed=3)
        assert opt >= rnd - 0.05

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            rollout_return(_choice_mdp(), TabularPolicy({}), "s", 1.0)
