"""Failure injection: malformed inputs, pathological regimes, misuse.

The library is a simulator people will feed garbage; these tests pin
down that it fails loudly (ValueError/KeyError) rather than silently
producing wrong physics.
"""

import json

import pytest

from repro.battery.cell import Cell
from repro.battery.chemistry import NCA
from repro.battery.pack import BigLittlePack
from repro.capman.controller import CapmanPolicy
from repro.capman.profiler import PowerProfiler
from repro.device.phone import DemandSlice, Phone
from repro.sim.discharge import run_discharge_cycle
from repro.thermal.rc_network import ThermalNetwork, ThermalNode
from repro.workload.base import Segment
from repro.workload.traces import Trace
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


class TestMalformedTraces:
    def test_truncated_trace_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n{"duration_s": 1.0')
        with pytest.raises(json.JSONDecodeError):
            Trace.load(path)

    def test_unknown_syscall_in_trace(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"name": "x"}\n'
            '{"duration_s": 1.0, "syscall": "not_a_call", "cpu_util": 1.0,'
            ' "freq_index": 0, "screen_on": false, "brightness": 0,'
            ' "wifi_kbps": 0.0}\n'
        )
        with pytest.raises(KeyError):
            Trace.load(path)

    def test_invalid_demand_in_trace(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"name": "x"}\n'
            '{"duration_s": 1.0, "syscall": null, "cpu_util": 300.0,'
            ' "freq_index": 0, "screen_on": false, "brightness": 0,'
            ' "wifi_kbps": 0.0}\n'
        )
        with pytest.raises(ValueError):
            Trace.load(path)


class TestPathologicalRegimes:
    def test_zero_power_forever_is_stable(self):
        cell = Cell(NCA, capacity_mah=100.0)
        for _ in range(1000):
            cell.draw_power(0.0, 60.0)
        assert cell.state_of_charge == pytest.approx(1.0)

    def test_absurd_power_demand_does_not_go_negative(self):
        cell = Cell(NCA, capacity_mah=100.0)
        res = cell.draw_power(1e6, 1.0)
        assert res.shortfall
        assert cell.available_amp_s >= 0.0
        assert res.energy_j >= 0.0

    def test_extreme_temperature_keeps_resistance_positive(self):
        hot = Cell(NCA, temperature_c=200.0)
        cold = Cell(NCA, temperature_c=-200.0)
        assert hot.internal_resistance() > 0.0
        assert cold.internal_resistance() > 0.0

    def test_thermal_network_with_extreme_injection(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("hot", 1.0, 25.0))
        net.add_node(ThermalNode("sink", float("inf"), 25.0))
        net.link("hot", "sink", 0.5)
        net.step(1.0, {"hot": 1e6})
        # Physically absurd but numerically finite and monotone.
        assert net.temperature("hot") < 1e7

    def test_phone_survives_alternating_extremes(self):
        phone = Phone(pack=BigLittlePack.from_chemistries(
            *__import__("repro.battery.chemistry",
                        fromlist=["pick_big_little"]).pick_big_little(), 300.0))
        heavy = DemandSlice(cpu_util=100.0, freq_index=2, screen_on=True,
                            wifi_kbps=500.0)
        idle = DemandSlice()
        for i in range(200):
            out = phone.step(heavy if i % 2 else idle, 5.0)
            assert out.energy_j >= 0.0
            assert out.cpu_temp_c > 0.0


class TestNonFiniteInputs:
    """NaN/inf must be rejected loudly, not integrated into the physics."""

    def test_cell_rejects_nan_power(self):
        cell = Cell(NCA, capacity_mah=100.0)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                cell.draw_power(bad, 1.0)

    def test_cell_rejects_nan_dt(self):
        cell = Cell(NCA, capacity_mah=100.0)
        for bad in (float("nan"), float("inf"), -1.0, 0.0):
            with pytest.raises(ValueError):
                cell.draw_power(1.0, bad)

    def test_cell_rest_rejects_bad_dt(self):
        cell = Cell(NCA, capacity_mah=100.0)
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError):
                cell.rest(bad)
        cell.rest(0.0)  # zero idle time is a no-op, not an error

    def test_thermal_network_rejects_nan_dt(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("hot", 1.0, 25.0))
        for bad in (float("nan"), float("inf"), 0.0, -1.0):
            with pytest.raises(ValueError):
                net.step(bad, {})

    def test_thermal_network_rejects_nan_injection(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("hot", 1.0, 25.0))
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                net.step(1.0, {"hot": bad})
        # The state is untouched by the rejected step.
        assert net.temperature("hot") == 25.0

    def test_phone_rejects_nan_dt(self):
        phone = Phone(pack=BigLittlePack.from_chemistries(
            *__import__("repro.battery.chemistry",
                        fromlist=["pick_big_little"]).pick_big_little(), 300.0))
        for bad in (float("nan"), float("inf"), 0.0):
            with pytest.raises(ValueError):
                phone.step(DemandSlice(), bad)


class TestMisuse:
    def test_policy_without_cycle_start(self):
        with pytest.raises(RuntimeError):
            CapmanPolicy().decide_battery(None)  # type: ignore[arg-type]

    def test_profiler_dwell_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PowerProfiler().record_dwell(DemandSlice(), 0.0)

    def test_profiler_rejects_negative_power_observation(self):
        prof = PowerProfiler()
        seg = Segment(DemandSlice(), 1.0)
        with pytest.raises(ValueError):
            prof.observe(seg, seg, measured_power_w=-1.0)

    def test_discharge_rejects_bad_control_dt(self):
        from repro.capman.baselines import DualPolicy

        trace = record_trace(VideoWorkload(seed=1), 30.0)
        with pytest.raises(ValueError):
            run_discharge_cycle(DualPolicy(capacity_mah=50.0), trace,
                                control_dt=0.0)
