"""Differential harness: the fleet batch vs the scalar oracle.

The contract is *bit-for-bit*, not approximate: a fleet of one must
reproduce :func:`repro.sim.discharge.run_discharge_cycle` exactly --
``pickle.dumps`` equality on the whole :class:`DischargeResult`
(wall-clock and telemetry masked, everything else compared byte for
byte, including every metrics sample).  The same holds for every row
of a heterogeneous batch, and for sweeps routed through
``backend="fleet"``.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.capman.baselines import DualPolicy, HeuristicPolicy, PracticePolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import HONOR, NEXUS
from repro.fleet import (DeviceSpec, FleetSpec, UnsupportedDeviceError,
                         supports_policy)
from repro.sim.discharge import run_discharge_cycle
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

CONTROL_DT = 2.0
MAX_DURATION_S = 300.0
#: 40 mAh cells over a 120 s looped video trace: the pack depletes
#: inside the window, so the grid exercises partial serves, mid-step
#: failovers and death -- the fleet's irregular-row fallback path.
CAPACITY_MAH = 40.0
_TRACE = record_trace(VideoWorkload(seed=7), duration_s=120.0)

POLICIES = {
    "capman": lambda: CapmanPolicy(capacity_mah=CAPACITY_MAH),
    # Tight learning cadence at a surviving capacity: the window packs
    # many replan boundaries (first model after 3 observations, then a
    # re-solve every 5), so the compiled-table epoch machinery is
    # exercised well beyond the single warmup solve.
    "capman-replan": lambda: CapmanPolicy(capacity_mah=400.0,
                                          min_observations=3,
                                          replan_interval=5),
    "dual": lambda: DualPolicy(capacity_mah=CAPACITY_MAH),
    "heuristic": lambda: HeuristicPolicy(capacity_mah=CAPACITY_MAH),
}
PROFILES = {"nexus": NEXUS, "honor": HONOR}


def _frozen(result) -> bytes:
    """Byte-stable view: mask wall clock + telemetry, keep the rest."""
    return pickle.dumps(
        dataclasses.replace(result, wall_time_s=0.0, telemetry=None),
        protocol=4)


def _scalar(policy_key: str, profile_key: str):
    return run_discharge_cycle(
        POLICIES[policy_key](), _TRACE, profile=PROFILES[profile_key],
        control_dt=CONTROL_DT, max_duration_s=MAX_DURATION_S)


def _device(policy_key: str, profile_key: str) -> DeviceSpec:
    return DeviceSpec(
        policy=POLICIES[policy_key](), trace=_TRACE,
        profile=PROFILES[profile_key], control_dt=CONTROL_DT,
        max_duration_s=MAX_DURATION_S)


GRID = [
    pytest.param(policy, profile, id=f"{policy}-{profile}")
    for policy in POLICIES for profile in PROFILES
]


@pytest.mark.parametrize("policy,profile", GRID)
def test_batch_of_one_is_bit_identical_to_scalar(policy, profile):
    oracle = _scalar(policy, profile)
    sim = FleetSpec([_device(policy, profile)]).build()
    [mine] = sim.run()

    assert _frozen(mine) == _frozen(oracle)

    # Spot-check the fields the pickle equality already implies, so a
    # future divergence produces a readable failure instead of a blob
    # mismatch.
    assert mine.step_count == oracle.step_count
    assert mine.service_time_s == oracle.service_time_s
    assert mine.energy_delivered_j == oracle.energy_delivered_j
    assert mine.switch_count == oracle.switch_count
    assert mine.max_cpu_temp_c == oracle.max_cpu_temp_c
    for key in ("soc", "cpu_temp_c", "power_w", "voltage_v"):
        assert mine.metrics.series(key).times.tolist() == \
            oracle.metrics.series(key).times.tolist()
        assert mine.metrics.series(key).values.tolist() == \
            oracle.metrics.series(key).values.tolist()


def test_heterogeneous_batch_matches_scalar_rowwise():
    """One batch mixing both policies and both profiles: every row must
    still equal its own scalar run exactly."""
    cases = [(p, pr) for p in POLICIES for pr in PROFILES]
    sim = FleetSpec([_device(p, pr) for p, pr in cases]).build()
    results = sim.run()
    assert len(results) == len(cases)
    for (policy, profile), mine in zip(cases, results):
        assert _frozen(mine) == _frozen(_scalar(policy, profile)), \
            f"{policy}-{profile} diverged inside the batch"


def test_capman_hot_spot_lean_matches_scalar():
    """A 43 degC ambient drives the CPU past the 45 degC hot-spot
    threshold, so the vectorised LITTLE-lean mask must fire -- and the
    whole decision chain must still match the scalar oracle exactly."""
    oracle = run_discharge_cycle(
        CapmanPolicy(capacity_mah=400.0), _TRACE, profile=NEXUS,
        control_dt=CONTROL_DT, max_duration_s=MAX_DURATION_S,
        ambient_c=43.0)
    # The scenario genuinely reaches the hot-spot regime.
    assert oracle.max_cpu_temp_c >= 45.0
    sim = FleetSpec([DeviceSpec(
        policy=CapmanPolicy(capacity_mah=400.0), trace=_TRACE,
        profile=NEXUS, control_dt=CONTROL_DT,
        max_duration_s=MAX_DURATION_S, ambient_c=43.0)]).build()
    [mine] = sim.run()
    assert _frozen(mine) == _frozen(oracle)


def test_depletion_stress_exercises_fallback_rows():
    """The dual cases deplete mid-window; the simulator must have taken
    its object-replay fallback path at least once and still matched."""
    sim = FleetSpec([_device("dual", "nexus"), _device("dual", "honor")]).build()
    results = sim.run()
    assert sim.fallback_steps > 0
    for profile, mine in zip(PROFILES, results):
        assert _frozen(mine) == _frozen(_scalar("dual", profile))


# ----------------------------------------------------------------------
# Capability gate
# ----------------------------------------------------------------------
def test_unsupported_pack_raises_at_build_time():
    dev = DeviceSpec(policy=PracticePolicy(capacity_mah=80.0), trace=_TRACE,
                     control_dt=CONTROL_DT, max_duration_s=MAX_DURATION_S)
    with pytest.raises(UnsupportedDeviceError):
        FleetSpec([dev]).build()


def test_supports_policy_probe():
    assert supports_policy(DualPolicy(capacity_mah=CAPACITY_MAH))
    assert supports_policy(CapmanPolicy(capacity_mah=CAPACITY_MAH))
    assert supports_policy(HeuristicPolicy(capacity_mah=CAPACITY_MAH))
    assert not supports_policy(PracticePolicy(capacity_mah=80.0))


def test_build_does_not_mutate_caller_policies():
    """FleetSpec clones policies; the caller's instances stay pristine
    and reusable for a scalar reference run afterwards."""
    policy = CapmanPolicy(capacity_mah=CAPACITY_MAH)
    before = pickle.dumps(policy, protocol=4)
    FleetSpec([DeviceSpec(policy=policy, trace=_TRACE,
                          control_dt=CONTROL_DT,
                          max_duration_s=MAX_DURATION_S)]).build().run()
    assert pickle.dumps(policy, protocol=4) == before


# ----------------------------------------------------------------------
# Sweep routing
# ----------------------------------------------------------------------
def _sweep_spec() -> SweepSpec:
    return SweepSpec(
        policies={
            "capman": CapmanPolicy(capacity_mah=CAPACITY_MAH),
            "dual": DualPolicy(capacity_mah=CAPACITY_MAH),
            # Single-battery pack: fleet-unsupported, must silently take
            # the scalar path inside the same sweep.
            "practice": PracticePolicy(capacity_mah=2 * CAPACITY_MAH),
        },
        traces={"video": _TRACE},
        profiles={"Nexus": NEXUS, "Honor": HONOR},
        control_dts=(CONTROL_DT,),
        max_duration_s=MAX_DURATION_S,
    )


def test_sweep_fleet_backend_matches_scalar_backend():
    scalar = ScenarioRunner(workers=1).run(_sweep_spec())
    fleet = ScenarioRunner(workers=1, backend="fleet").run(_sweep_spec())

    assert len(fleet.results) == len(scalar.results) == 6
    for mine, theirs in zip(fleet.results, scalar.results):
        assert _frozen(mine) == _frozen(theirs)
    assert fleet.stats.cells_computed == scalar.stats.cells_computed
    assert fleet.stats.steps_total == scalar.stats.steps_total


def test_sweep_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        ScenarioRunner(backend="gpu")
