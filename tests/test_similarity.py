"""Tests for the Algorithm 1 structural-similarity recursion."""

import numpy as np
import pytest

from repro.core.graph import MDPGraph
from repro.core.mdp import MDP, random_mdp
from repro.core.similarity import StructuralSimilarity


def _symmetric_mdp():
    """Two structurally identical states u, v feeding an absorbing w."""
    return MDP(
        states=["u", "v", "w"],
        actions=["a"],
        transitions={("u", "a"): {"w": 1.0}, ("v", "a"): {"w": 1.0}},
        rewards={("u", "a", "w"): 0.7, ("v", "a", "w"): 0.7},
    )


def _asymmetric_mdp():
    """Same shape but very different rewards."""
    return MDP(
        states=["u", "v", "w"],
        actions=["a"],
        transitions={("u", "a"): {"w": 1.0}, ("v", "a"): {"w": 1.0}},
        rewards={("u", "a", "w"): 1.0, ("v", "a", "w"): 0.0},
    )


class TestBaseCases:
    def test_self_similarity_is_one(self):
        res = StructuralSimilarity(MDPGraph(_symmetric_mdp())).solve()
        for s in ("u", "v", "w"):
            assert res.sigma_s(s, s) == 1.0

    def test_absorbing_vs_live_is_zero(self):
        res = StructuralSimilarity(MDPGraph(_symmetric_mdp())).solve()
        assert res.sigma_s("u", "w") == 0.0
        assert res.delta_s("u", "w") == 1.0

    def test_two_absorbing_states_use_d_uv(self):
        mdp = MDP(
            states=["s", "t1", "t2"],
            actions=["a"],
            transitions={("s", "a"): {"t1": 0.5, "t2": 0.5}},
        )
        res_same = StructuralSimilarity(MDPGraph(mdp), d_absorbing=0.0).solve()
        assert res_same.sigma_s("t1", "t2") == 1.0
        res_diff = StructuralSimilarity(MDPGraph(mdp), d_absorbing=1.0).solve()
        assert res_diff.sigma_s("t1", "t2") == 0.0


class TestRecursion:
    def test_identical_states_highly_similar(self):
        res = StructuralSimilarity(
            MDPGraph(_symmetric_mdp()), c_s=1.0, c_a=0.9
        ).solve()
        assert res.sigma_s("u", "v") == pytest.approx(1.0, abs=1e-6)

    def test_different_rewards_reduce_similarity(self):
        sym = StructuralSimilarity(MDPGraph(_symmetric_mdp()), c_s=1.0, c_a=0.9).solve()
        asym = StructuralSimilarity(MDPGraph(_asymmetric_mdp()), c_s=1.0, c_a=0.9).solve()
        assert asym.sigma_s("u", "v") < sym.sigma_s("u", "v")

    def test_matrices_in_unit_interval(self):
        mdp = random_mdp(6, 2, branching=2, seed=5, absorbing=1)
        res = StructuralSimilarity(MDPGraph(mdp), c_s=0.9, c_a=0.9).solve()
        assert np.all(res.state_sim >= -1e-12)
        assert np.all(res.state_sim <= 1.0 + 1e-12)
        assert np.all(res.action_sim >= -1e-12)
        assert np.all(res.action_sim <= 1.0 + 1e-12)

    def test_symmetry_of_matrices(self):
        mdp = random_mdp(6, 2, branching=2, seed=6, absorbing=1)
        res = StructuralSimilarity(MDPGraph(mdp)).solve()
        assert np.allclose(res.state_sim, res.state_sim.T)
        assert np.allclose(res.action_sim, res.action_sim.T)

    def test_convergence_reported(self):
        mdp = random_mdp(5, 2, branching=2, seed=7, absorbing=1)
        res = StructuralSimilarity(MDPGraph(mdp), tol=1e-5, max_iter=100).solve()
        assert res.residual < 1e-5
        assert 1 <= res.iterations <= 100

    def test_termination_under_max_iter_cap(self):
        mdp = random_mdp(5, 2, branching=2, seed=8)
        res = StructuralSimilarity(MDPGraph(mdp), max_iter=2).solve()
        assert res.iterations <= 2

    def test_most_similar_state_lookup(self):
        res = StructuralSimilarity(MDPGraph(_symmetric_mdp()), c_s=1.0, c_a=0.9).solve()
        nearest, sim = res.most_similar_state("u")
        assert nearest == "v"
        assert sim == pytest.approx(1.0, abs=1e-6)

    def test_invalid_discounts_rejected(self):
        g = MDPGraph(_symmetric_mdp())
        with pytest.raises(ValueError):
            StructuralSimilarity(g, c_s=0.0)
        with pytest.raises(ValueError):
            StructuralSimilarity(g, c_a=1.5)
        with pytest.raises(ValueError):
            StructuralSimilarity(g, d_absorbing=2.0)

    def test_c_s_scales_state_similarity(self):
        half = StructuralSimilarity(MDPGraph(_symmetric_mdp()), c_s=0.5, c_a=0.9).solve()
        # identical neighbourhoods: sigma = c_s * (1 - 0) = c_s
        assert half.sigma_s("u", "v") == pytest.approx(0.5, abs=1e-6)
