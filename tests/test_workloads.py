"""Tests for the workload generators."""

import itertools

import pytest

from repro.workload.base import Segment
from repro.workload.generators import (
    EtaStaticWorkload,
    GeekbenchWorkload,
    IdleWorkload,
    PCMarkWorkload,
    SkewedBurstWorkload,
    VideoWorkload,
)
from repro.workload.onoff import ScreenToggleWorkload
from repro.device.phone import DemandSlice


def _take(workload, n=50):
    return list(itertools.islice(workload.segments(), n))


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: GeekbenchWorkload(seed=3),
            lambda: PCMarkWorkload(seed=3),
            lambda: VideoWorkload(seed=3),
            lambda: EtaStaticWorkload(0.5, seed=3),
            lambda: SkewedBurstWorkload(seed=3),
            lambda: ScreenToggleWorkload(30.0, seed=3),
            lambda: IdleWorkload(seed=3),
        ],
    )
    def test_same_seed_same_stream(self, factory):
        a = _take(factory(), 30)
        b = _take(factory(), 30)
        assert [(s.duration_s, s.demand.cpu_util) for s in a] == [
            (s.duration_s, s.demand.cpu_util) for s in b
        ]

    def test_different_seeds_differ(self):
        a = _take(PCMarkWorkload(seed=1), 30)
        b = _take(PCMarkWorkload(seed=2), 30)
        assert [s.duration_s for s in a] != [s.duration_s for s in b]


class TestGeekbench:
    def test_saturates_cpu(self):
        for seg in _take(GeekbenchWorkload(seed=0), 20):
            assert seg.demand.cpu_util > 85.0
            assert seg.demand.screen_on

    def test_top_frequency(self):
        assert all(s.demand.freq_index == 2 for s in _take(GeekbenchWorkload(), 10))


class TestPCMark:
    def test_mixes_work_and_pauses(self):
        utils = [s.demand.cpu_util for s in _take(PCMarkWorkload(seed=1), 60)]
        assert max(utils) > 70.0
        assert min(utils) < 20.0

    def test_segments_carry_syscalls(self):
        assert all(s.syscall is not None for s in _take(PCMarkWorkload(seed=1), 30))


class TestVideo:
    def test_steady_medium_compute(self):
        plays = [s for s in _take(VideoWorkload(seed=1), 40)
                 if s.demand.wifi_kbps < 100.0]
        assert plays
        for seg in plays:
            assert 20.0 < seg.demand.cpu_util < 60.0

    def test_periodic_fetch_bursts(self):
        bursts = [s for s in _take(VideoWorkload(seed=1), 40)
                  if s.demand.wifi_kbps > 200.0]
        assert len(bursts) >= 5


class TestEtaStatic:
    def test_eta_bounds(self):
        with pytest.raises(ValueError):
            EtaStaticWorkload(1.5)

    def test_name_encodes_eta(self):
        assert EtaStaticWorkload(0.8).name == "eta-80%"

    def test_eta_zero_is_video_like(self):
        segs = _take(EtaStaticWorkload(0.0, seed=4), 40)
        # Pure video mixes stay in the video utilisation band.
        assert all(s.demand.cpu_util < 60.0 for s in segs)

    def test_eta_one_contains_heavy_work(self):
        segs = _take(EtaStaticWorkload(1.0, seed=4), 40)
        assert any(s.demand.cpu_util > 70.0 for s in segs)


class TestSkewedBurst:
    def test_alternates_sleep_and_burst(self):
        segs = _take(SkewedBurstWorkload(seed=2), 20)
        sleeps = [s for s in segs if not s.demand.screen_on]
        bursts = [s for s in segs if s.demand.screen_on]
        assert sleeps and bursts

    def test_heavy_tail_gaps(self):
        segs = _take(SkewedBurstWorkload(seed=2), 400)
        gaps = [s.duration_s for s in segs if not s.demand.screen_on]
        mean = sum(gaps) / len(gaps)
        assert max(gaps) > 4 * mean  # heavy-tailed clustering

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SkewedBurstWorkload(pareto_shape=0.9)


class TestScreenToggle:
    def test_cycle_duration(self):
        segs = _take(ScreenToggleWorkload(period_s=20.0, seed=1), 3)
        assert sum(s.duration_s for s in segs) == pytest.approx(20.0)

    def test_wake_burst_first(self):
        seg = _take(ScreenToggleWorkload(period_s=20.0, seed=1), 1)[0]
        assert seg.demand.screen_on
        assert seg.demand.cpu_util > 60.0

    def test_off_fraction(self):
        segs = _take(ScreenToggleWorkload(period_s=60.0, on_fraction=0.25, seed=1), 3)
        off = [s for s in segs if not s.demand.screen_on]
        assert off[0].duration_s == pytest.approx(45.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScreenToggleWorkload(period_s=0.0)
        with pytest.raises(ValueError):
            ScreenToggleWorkload(on_fraction=1.0)


class TestSegment:
    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Segment(DemandSlice(), 0.0)
