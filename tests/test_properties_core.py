"""Property-based tests on the core MDP machinery (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import MDPGraph
from repro.core.mdp import MDP, random_mdp
from repro.core.similarity import StructuralSimilarity
from repro.core.solver import policy_evaluation, value_iteration


class TestSolverProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), rho=st.sampled_from([0.3, 0.7, 0.95]))
    def test_values_bounded_by_geometric_sum(self, seed, rho):
        mdp = random_mdp(7, 2, branching=2, seed=seed)
        sol = value_iteration(mdp, rho=rho)
        vmax = 1.0 / (1.0 - rho)
        assert all(-1e-9 <= v <= vmax + 1e-6 for v in sol.values.values())

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_optimal_policy_weakly_dominates_any_fixed_action(self, seed):
        mdp = random_mdp(6, 3, branching=2, seed=seed)
        rho = 0.8
        sol = value_iteration(mdp, rho=rho, tol=1e-10)
        for a in mdp.actions:
            fixed = {s: a for s in mdp.states if a in mdp.available_actions(s)}
            values = policy_evaluation(mdp, fixed, rho=rho, tol=1e-10)
            for s in fixed:
                assert sol.value(s) >= values[s] - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), rho=st.sampled_from([0.2, 0.6]))
    def test_discount_monotonicity(self, seed, rho):
        """Larger discounting horizon never decreases optimal values
        (all rewards are non-negative)."""
        mdp = random_mdp(6, 2, branching=2, seed=seed)
        low = value_iteration(mdp, rho=rho)
        high = value_iteration(mdp, rho=rho + 0.2)
        for s in mdp.states:
            assert high.value(s) >= low.value(s) - 1e-6

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reward_scaling_scales_values(self, seed):
        """Scaling all rewards by c scales V* by c (linearity)."""
        mdp = random_mdp(5, 2, branching=2, seed=seed)
        scaled = MDP(
            mdp.states,
            mdp.actions,
            mdp.transitions,
            {k: 0.5 * r for k, r in mdp.rewards.items()},
        )
        rho = 0.7
        a = value_iteration(mdp, rho=rho, tol=1e-10)
        b = value_iteration(scaled, rho=rho, tol=1e-10)
        for s in mdp.states:
            assert b.value(s) == pytest.approx(0.5 * a.value(s), abs=1e-6)


class TestSimilarityProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_similarity_matrices_bounded_and_symmetric(self, seed):
        import numpy as np

        mdp = random_mdp(5, 2, branching=2, seed=seed, absorbing=1)
        res = StructuralSimilarity(MDPGraph(mdp), c_s=0.9, c_a=0.9,
                                   max_iter=30).solve()
        assert np.all(res.state_sim >= -1e-9)
        assert np.all(res.state_sim <= 1.0 + 1e-9)
        assert np.allclose(res.state_sim, res.state_sim.T, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_identical_twin_states_maximally_similar(self, seed):
        """Duplicating a state yields a pair at similarity ~c_s."""
        base = random_mdp(4, 2, branching=2, seed=seed)
        # Clone state s0 as s0_twin with identical outgoing structure.
        twin = "s0_twin"
        states = list(base.states) + [twin]
        transitions = dict(base.transitions)
        rewards = dict(base.rewards)
        for a in base.available_actions("s0"):
            transitions[(twin, a)] = dict(base.transitions[("s0", a)])
            for sp, p in base.transitions[("s0", a)].items():
                rewards[(twin, a, sp)] = base.reward("s0", a, sp)
        mdp = MDP(states, base.actions, transitions, rewards)
        res = StructuralSimilarity(MDPGraph(mdp), c_s=1.0, c_a=0.9,
                                   tol=1e-5, max_iter=60).solve()
        assert res.sigma_s("s0", twin) == pytest.approx(1.0, abs=1e-3)
