"""Unit tests for the observability spine (``repro.obs``).

Covers the registry instruments, the tracer's span hierarchy and
window aggregation, the exporters, the session/scope machinery and
the monotonic-clock contract (telemetry survives a wall-clock step
backwards).
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import obs
from repro.obs.registry import LATENCY_BUCKETS_S, Counter, Gauge, Histogram


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_adds(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_raises(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)
        assert c.value == 0.0


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(4.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_unset_gauge_excluded_from_registry_view(self):
        reg = obs.MetricsRegistry()
        reg.gauge("silent")
        reg.gauge("spoken").set(1.0)
        assert reg.gauge_values() == {"spoken": 1.0}


class TestHistogram:
    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            Histogram("x", boundaries=())
        with pytest.raises(ValueError):
            Histogram("x", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", boundaries=(2.0, 1.0))

    def test_bucketing_boundary_inclusive(self):
        h = Histogram("x", boundaries=(1.0, 10.0))
        h.observe(0.5)   # <= 1.0 -> bucket 0
        h.observe(1.0)   # == boundary -> bucket 0
        h.observe(5.0)   # <= 10.0 -> bucket 1
        h.observe(10.0)  # == boundary -> bucket 1
        h.observe(11.0)  # overflow
        assert h.bucket_counts == (2, 2, 1)
        assert h.count == 5
        assert h.sum == pytest.approx(27.5)
        assert h.mean == pytest.approx(5.5)

    def test_quantiles(self):
        h = Histogram("x", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.0) <= 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_and_mean(self):
        h = Histogram("x")
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_default_layout_is_the_latency_layout(self):
        h = Histogram("x")
        assert h.boundaries == LATENCY_BUCKETS_S

    def test_as_dict_round_trips_through_merge(self):
        h = Histogram("x", boundaries=(1.0, 2.0))
        h.observe(0.5)
        h.observe(3.0)
        parts = h.as_dict()
        assert parts["count"] == 2
        other = Histogram("x", boundaries=(1.0, 2.0))
        other._merge_parts(parts["counts"], parts["sum"])
        assert other.bucket_counts == h.bucket_counts
        assert other.sum == h.sum


class TestRegistry:
    def test_instruments_are_interned(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_conflicting_histogram_layout_raises(self):
        reg = obs.MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="different"):
            reg.histogram("h", boundaries=(1.0, 3.0))

    def test_merge_semantics(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(5.0)
        a.histogram("h", boundaries=(1.0,)).observe(0.5)
        b.histogram("h", boundaries=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter_values() == {"n": 5.0}
        assert a.gauge_values() == {"g": 5.0}
        assert a.histogram("h", boundaries=(1.0,)).bucket_counts == (1, 1)

    def test_merge_layout_mismatch_raises(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.histogram("h", boundaries=(1.0,)).observe(0.5)
        b.histogram("h", boundaries=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merged_classmethod(self):
        regs = []
        for amount in (1, 2, 3):
            r = obs.MetricsRegistry()
            r.counter("n").inc(amount)
            regs.append(r)
        assert obs.MetricsRegistry.merged(regs).counter_values() == {"n": 6.0}


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_paths(self):
        tr = obs.Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        paths = ["/".join(s.path) for s in tr.finished]
        assert paths == ["outer/inner", "outer"]

    def test_durations_non_negative_and_ordered(self):
        tr = obs.Tracer()
        s = tr.start("a")
        time.sleep(0.001)
        span = s.finish()
        assert span.duration_s >= 0.001

    def test_finish_is_idempotent(self):
        tr = obs.Tracer()
        s = tr.start("a")
        assert s.finish() is not None
        assert s.finish() is None
        assert len(tr.finished) == 1

    def test_out_of_order_finish_unwinds_children(self):
        tr = obs.Tracer()
        outer = tr.start("outer")
        tr.start("leaked-child")
        outer.finish()  # child never finished explicitly
        assert tr.depth == 0
        assert [s.name for s in tr.finished] == ["outer"]

    def test_span_cap_counts_drops(self):
        tr = obs.Tracer(max_spans=2)
        for i in range(4):
            tr.start(f"s{i}").finish()
        assert len(tr.finished) == 2
        assert tr.dropped == 2

    def test_on_finish_hook(self):
        seen = []
        tr = obs.Tracer(on_finish=seen.append)
        tr.start("a").finish()
        assert [s.name for s in seen] == ["a"]

    def test_annotate(self):
        tr = obs.Tracer()
        s = tr.start("a", x=1)
        s.annotate(y=2)
        span = s.finish()
        assert dict(span.attrs) == {"x": 1, "y": 2}

    def test_window_relative_paths(self):
        tr = obs.Tracer()
        with tr.span("sweep"):
            mark = tr.mark()
            with tr.span("discharge"):
                with tr.span("solve"):
                    pass
                with tr.span("solve"):
                    pass
            win = tr.window(mark)
        assert set(win) == {"discharge", "discharge/solve"}
        assert win["discharge/solve"]["count"] == 2
        assert win["discharge/solve"]["max_s"] <= win["discharge"]["total_s"]

    def test_window_from_root_sees_full_paths(self):
        tr = obs.Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        win = tr.window((0, 0))
        assert set(win) == {"a", "a/b"}


class TestMonotonicContract:
    def test_spans_survive_wall_clock_step_backwards(self, monkeypatch):
        """A host whose wall clock steps backwards (NTP) must not
        produce negative span durations: the tracer binds
        ``time.monotonic`` at import and never reads ``time.time``."""
        walltimes = iter([1e9, 1e9 - 3600.0, 1e9 - 7200.0, 0.0, 0.0, 0.0])
        monkeypatch.setattr(time, "time", lambda: next(walltimes, 0.0))
        tr = obs.Tracer()
        with tr.span("outer"):
            time.time()  # the wall clock "steps backwards" mid-span
            with tr.span("inner"):
                time.time()
        assert all(s.duration_s >= 0.0 for s in tr.finished)

    def test_no_wall_clock_timing_in_sim_sources(self):
        """The audit satellite, pinned: no ``time.time()`` timing in
        the simulator or profiler sources."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        offenders = []
        for rel in ("sim", "capman", "obs", "core", "durability", "faults"):
            for path in (root / rel).rglob("*.py"):
                if "time.time()" in path.read_text():
                    offenders.append(str(path))
        assert offenders == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_in_memory_collects(self):
        exp = obs.InMemoryExporter()
        tr = obs.Tracer(on_finish=exp.export_span)
        tr.start("a").finish()
        exp.export_telemetry(obs.RunTelemetry(kind="k"))
        assert [s.name for s in exp.spans] == ["a"]
        assert [t.kind for t in exp.telemetries] == ["k"]

    def test_jsonl_records_are_parseable(self):
        stream = io.StringIO()
        exp = obs.JsonlExporter(stream)
        tr = obs.Tracer(on_finish=exp.export_span)
        with tr.span("phase", device="Nexus"):
            pass
        exp.export_telemetry(obs.RunTelemetry(kind="discharge", label="x"))
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert [r["type"] for r in lines] == ["span", "telemetry"]
        assert lines[0]["path"] == "phase"
        assert lines[0]["attrs"] == {"device": "Nexus"}
        assert lines[1]["kind"] == "discharge"

    def test_jsonl_owns_file(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        exp = obs.JsonlExporter(str(path))
        exp.export_telemetry(obs.RunTelemetry(kind="k"))
        exp.close()
        assert json.loads(path.read_text())["kind"] == "k"

    def test_format_table(self):
        text = obs.format_obs_table(("name", "v"), [("a", 1), ("bb", 22)],
                                    title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[-1]


# ----------------------------------------------------------------------
# Session and scopes
# ----------------------------------------------------------------------
class TestSession:
    def test_disabled_by_default(self):
        assert obs.session() is None
        assert not obs.enabled()

    def test_configure_and_disable(self):
        s = obs.configure(enabled=True)
        assert obs.session() is s
        assert obs.enabled()
        obs.disable()
        assert obs.session() is None

    def test_configure_false_is_disable(self):
        obs.configure(enabled=True)
        assert obs.configure(enabled=False) is None
        assert not obs.enabled()

    def test_scope_isolates_then_merges_up(self):
        s = obs.configure(enabled=True)
        s.registry.counter("n").inc(1)
        with s.scope("discharge", "cell-0") as scope:
            assert s.registry is scope.registry
            s.registry.counter("n").inc(5)
            blob = scope.telemetry()
        assert blob.counter("n") == 5          # scope sees only its own
        assert s.root_registry.counter("n").value == 6  # folded on close

    def test_scope_close_is_idempotent(self):
        s = obs.configure(enabled=True)
        scope = s.scope("x")
        scope.close()
        scope.close()
        assert s.registry is s.root_registry

    def test_exception_leaked_inner_scope_unwinds(self):
        s = obs.configure(enabled=True)
        outer = s.scope("outer")
        inner = s.scope("inner")
        inner.registry.counter("n").inc(3)
        outer.close()  # inner never closed (e.g. exception path)
        assert s.registry is s.root_registry
        assert s.root_registry.counter("n").value == 3

    def test_scope_telemetry_captures_spans_relative(self):
        s = obs.configure(enabled=True)
        with s.tracer.span("sweep"):
            scope = s.scope("discharge", "c")
            with s.tracer.span("discharge"):
                pass
            blob = scope.telemetry()
            scope.close()
        assert set(blob.spans) == {"discharge"}

    def test_summary_lists_everything(self):
        s = obs.configure(enabled=True)
        s.registry.counter("sim.steps").inc(7)
        s.registry.gauge("peak").set(42.0)
        s.registry.histogram("lat").observe(1e-3)
        with s.tracer.span("phase"):
            pass
        text = s.summary()
        for needle in ("sim.steps", "peak", "lat", "phase", "7"):
            assert needle in text

    def test_summary_empty(self):
        s = obs.configure(enabled=True)
        assert "no telemetry" in s.summary()

    def test_exporter_receives_harvested_telemetry(self):
        exp = obs.InMemoryExporter()
        s = obs.configure(enabled=True, exporter=exp)
        scope = s.scope("discharge", "c")
        blob = scope.telemetry()
        scope.close()
        s.export_telemetry(blob)
        assert exp.telemetries == [blob]


# ----------------------------------------------------------------------
# RunTelemetry
# ----------------------------------------------------------------------
class TestRunTelemetry:
    def test_merge_semantics(self):
        a = obs.RunTelemetry(
            kind="sweep", counters={"n": 2.0}, gauges={"g": 1.0},
            histograms={"h": {"boundaries": [1.0], "counts": [1, 0],
                              "count": 1, "sum": 0.5}},
            spans={"p": {"count": 1, "total_s": 0.5, "max_s": 0.5}})
        b = obs.RunTelemetry(
            kind="discharge", counters={"n": 3.0, "m": 1.0},
            gauges={"g": 4.0},
            histograms={"h": {"boundaries": [1.0], "counts": [0, 2],
                              "count": 2, "sum": 5.0}},
            spans={"p": {"count": 2, "total_s": 1.0, "max_s": 0.8}})
        m = a.merge(b)
        assert m.kind == "sweep"  # receiver's identity wins
        assert m.counters == {"n": 5.0, "m": 1.0}
        assert m.gauges == {"g": 4.0}
        assert m.histograms["h"]["counts"] == [1, 2]
        assert m.histograms["h"]["sum"] == pytest.approx(5.5)
        assert m.spans["p"] == {"count": 3, "total_s": 1.5, "max_s": 0.8}
        # inputs untouched
        assert a.counters == {"n": 2.0}

    def test_merge_layout_mismatch_raises(self):
        a = obs.RunTelemetry(histograms={"h": {"boundaries": [1.0],
                                               "counts": [0, 0],
                                               "count": 0, "sum": 0.0}})
        b = obs.RunTelemetry(histograms={"h": {"boundaries": [2.0],
                                               "counts": [0, 0],
                                               "count": 0, "sum": 0.0}})
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merged_skips_none(self):
        blobs = [obs.RunTelemetry(counters={"n": 1.0}), None,
                 obs.RunTelemetry(counters={"n": 2.0})]
        merged = obs.RunTelemetry.merged(blobs, kind="sweep")
        assert merged.counter("n") == 3.0
        assert merged.kind == "sweep"

    def test_as_dict_is_json_clean(self):
        blob = obs.RunTelemetry(kind="k", counters={"n": 1.0})
        assert json.loads(json.dumps(blob.as_dict()))["counters"] == {"n": 1.0}


class TestInvisibleView:
    def test_strips_telemetry_and_wall_time(self):
        from repro.sim.discharge import DischargeResult

        result = DischargeResult(
            policy_name="p", workload_name="w", service_time_s=1.0,
            energy_delivered_j=2.0, switch_count=0, big_time_s=1.0,
            little_time_s=0.0, tec_on_time_s=0.0, tec_energy_j=0.0,
            max_cpu_temp_c=30.0, time_above_threshold_s=0.0,
            wall_time_s=3.25, telemetry=obs.RunTelemetry(kind="discharge"))
        view = obs.invisible_view(result)
        assert view.telemetry is None
        assert view.wall_time_s == 0.0
        # the original is untouched; simulated fields survive
        assert result.telemetry is not None
        assert view.service_time_s == 1.0
