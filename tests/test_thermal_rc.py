"""Tests for the RC thermal network."""

import math

import pytest

from repro.thermal.rc_network import ThermalNetwork, ThermalNode, phone_thermal_network


def _two_node_net(g=0.5, c=10.0):
    net = ThermalNetwork()
    net.add_node(ThermalNode("hot", c, 25.0))
    net.add_node(ThermalNode("ambient", math.inf, 25.0))
    net.link("hot", "ambient", g)
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("a", 1.0))
        with pytest.raises(ValueError):
            net.add_node(ThermalNode("a", 1.0))

    def test_link_unknown_node_rejected(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("a", 1.0))
        with pytest.raises(KeyError):
            net.link("a", "missing", 1.0)

    def test_nonpositive_conductance_rejected(self):
        net = _two_node_net()
        with pytest.raises(ValueError):
            net.link("hot", "ambient", 0.0)

    def test_nonpositive_capacity_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ValueError):
            net.add_node(ThermalNode("bad", 0.0))


class TestDynamics:
    def test_steady_state_matches_ohms_law(self):
        """With P watts into G conductance: dT = P / G."""
        net = _two_node_net(g=0.5)
        for _ in range(400):
            net.step(10.0, {"hot": 1.0})
        assert net.temperature("hot") == pytest.approx(25.0 + 2.0, abs=0.05)

    def test_boundary_node_fixed(self):
        net = _two_node_net()
        net.step(100.0, {"hot": 5.0})
        assert net.temperature("ambient") == 25.0

    def test_cooling_injection_lowers_temperature(self):
        net = _two_node_net()
        net.step(200.0, {"hot": -0.5})
        assert net.temperature("hot") < 25.0

    def test_no_injection_stays_at_ambient(self):
        net = _two_node_net()
        net.step(100.0, {})
        assert net.temperature("hot") == pytest.approx(25.0)

    def test_heat_flows_downhill(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("a", 5.0, 50.0))
        net.add_node(ThermalNode("b", 5.0, 20.0))
        net.link("a", "b", 0.5)
        net.step(5.0, {})
        assert net.temperature("a") < 50.0
        assert net.temperature("b") > 20.0

    def test_energy_conservation_isolated_pair(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("a", 4.0, 60.0))
        net.add_node(ThermalNode("b", 6.0, 20.0))
        net.link("a", "b", 0.3)
        before = 4.0 * 60.0 + 6.0 * 20.0
        net.step(50.0, {})
        after = 4.0 * net.temperature("a") + 6.0 * net.temperature("b")
        assert after == pytest.approx(before, rel=1e-6)

    def test_equilibration_of_isolated_pair(self):
        net = ThermalNetwork()
        net.add_node(ThermalNode("a", 5.0, 60.0))
        net.add_node(ThermalNode("b", 5.0, 20.0))
        net.link("a", "b", 0.5)
        for _ in range(100):
            net.step(10.0, {})
        assert net.temperature("a") == pytest.approx(40.0, abs=0.1)
        assert net.temperature("b") == pytest.approx(40.0, abs=0.1)

    def test_unknown_injection_node_rejected(self):
        net = _two_node_net()
        with pytest.raises(KeyError):
            net.step(1.0, {"nope": 1.0})

    def test_nonpositive_dt_rejected(self):
        net = _two_node_net()
        with pytest.raises(ValueError):
            net.step(0.0, {})

    def test_stability_with_large_dt(self):
        """The integrator substeps: even huge dt cannot blow up."""
        net = _two_node_net(g=2.0, c=1.0)
        net.step(1000.0, {"hot": 0.5})
        assert 25.0 <= net.temperature("hot") <= 25.26


class TestPhonePreset:
    def test_nodes_present(self):
        net = phone_thermal_network()
        assert set(net.node_names) == {"cpu", "battery", "surface", "ambient"}

    def test_full_tilt_cpu_crosses_hot_spot_line(self):
        """A sustained Table III C0 draw should push the die past 45C."""
        net = phone_thermal_network()
        for _ in range(2000):
            net.step(10.0, {"cpu": 0.612, "surface": 0.5})
        assert net.temperature("cpu") > 45.0

    def test_moderate_load_stays_cool(self):
        net = phone_thermal_network()
        for _ in range(2000):
            net.step(10.0, {"cpu": 0.24, "surface": 0.4})
        assert net.temperature("cpu") < 42.0

    def test_ambient_override(self):
        net = phone_thermal_network(ambient_c=30.0)
        assert net.temperature("ambient") == 30.0
