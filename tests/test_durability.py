"""Unit tests for the durability layer.

Covers the versioned state-dict discipline, checksummed checkpoints,
the write-ahead journal's torn-tail recovery, run budgets, cooperative
deadlines, the stall watchdog and the advisory file lock -- each in
isolation, before the integration tests exercise them through the
simulation harnesses.
"""

import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

from repro.durability.budget import (
    BudgetExceededError,
    Heartbeat,
    HeartbeatWatchdog,
    RunBudget,
    retire_on_stall,
)
from repro.durability.deadline import (
    DeadlineExceededError,
    clear_deadline,
    expire_deadline,
    poll_deadline,
    set_deadline,
    thread_deadline,
)
from repro.durability.journal import (
    JournalError,
    RunJournal,
    decode_blob,
    encode_blob,
)
from repro.durability.lock import FileLock
from repro.durability.snapshot import (
    CheckpointError,
    Checkpointer,
    ChecksumError,
    SCHEMA_VERSION,
    SimCheckpoint,
)
from repro.durability.state import (
    StateMismatchError,
    StateVersionError,
    pack_state,
    unpack_state,
)


# ----------------------------------------------------------------------
# state.py
# ----------------------------------------------------------------------
class _Widget:
    pass


class _Gadget:
    pass


class TestPackedState:
    def test_round_trip(self):
        w = _Widget()
        state = pack_state(w, 3, {"x": 1.5, "y": [1, 2]})
        assert unpack_state(w, state, 3) == {"x": 1.5, "y": [1, 2]}

    def test_wrong_class_rejected(self):
        state = pack_state(_Widget(), 1, {})
        with pytest.raises(StateMismatchError):
            unpack_state(_Gadget(), state, 1)

    def test_wrong_version_rejected(self):
        state = pack_state(_Widget(), 1, {})
        with pytest.raises(StateVersionError):
            unpack_state(_Widget(), state, 2)

    def test_extra_keys_tolerated(self):
        """Subclasses extend a parent's payload with extra keys."""
        state = pack_state(_Widget(), 1, {"x": 1})
        state["subclass_extra"] = 99
        assert unpack_state(_Widget(), state, 1)["x"] == 1


# ----------------------------------------------------------------------
# snapshot.py
# ----------------------------------------------------------------------
class TestSimCheckpoint:
    def _ckpt(self):
        return SimCheckpoint.create("test", {"a": 1.25, "b": {"c": [1, 2]}})

    def test_create_verifies(self):
        self._ckpt().verify()

    def test_tamper_detected(self):
        ckpt = self._ckpt()
        ckpt.payload["a"] = 2.0
        with pytest.raises(ChecksumError):
            ckpt.verify()

    def test_bytes_round_trip(self):
        ckpt = self._ckpt()
        again = SimCheckpoint.from_bytes(ckpt.to_bytes())
        assert again == ckpt

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError):
            SimCheckpoint.from_bytes(b"NOTACKPT" + b"0" * 80)

    def test_truncated_body_rejected(self):
        data = self._ckpt().to_bytes()
        with pytest.raises(CheckpointError):
            SimCheckpoint.from_bytes(data[: len(data) - 7])

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = self._ckpt()
        ckpt.save(path)
        assert SimCheckpoint.load(path) == ckpt
        assert ckpt.schema_version == SCHEMA_VERSION

    def test_try_load_missing_is_none(self, tmp_path):
        assert SimCheckpoint.try_load(tmp_path / "absent.ckpt") is None

    def test_try_load_corrupt_is_none_and_deletes(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = self._ckpt()
        ckpt.save(path)
        # Torn write: chop the tail off the file.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert SimCheckpoint.try_load(path) is None
        assert not path.exists(), "corrupt checkpoint must be cleared"

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt"
        self._ckpt().save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]


class TestCheckpointer:
    def test_cadence(self):
        ck = Checkpointer(every_steps=100)
        assert not ck.due(0)
        assert not ck.due(50)
        assert ck.due(100)
        assert ck.due(200)
        assert not Checkpointer(every_steps=0).due(100)

    def test_save_persists_and_counts(self, tmp_path):
        path = tmp_path / "run.ckpt"
        seen = []
        ck = Checkpointer(path, every_steps=10, sink=seen.append)
        ckpt = SimCheckpoint.create("test", {"v": 1})
        ck.save(ckpt)
        assert ck.latest == ckpt and ck.saves == 1
        assert SimCheckpoint.load(path) == ckpt
        assert seen == [ckpt]

    def test_flush_writes_latest(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ck = Checkpointer(path)
        ck.latest = SimCheckpoint.create("test", {"v": 2})
        ck.flush()
        assert SimCheckpoint.load(path).payload == {"v": 2}


# ----------------------------------------------------------------------
# journal.py
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.append("start", {"n": 3})
            journal.append("commit", {"i": 0, "blob": encode_blob(b"\x00\xff")})
        records = RunJournal.replay(path)
        assert [r["type"] for r in records] == ["start", "commit"]
        assert [r["seq"] for r in records] == [0, 1]
        assert decode_blob(records[1]["data"]["blob"]) == b"\x00\xff"

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.append("start", {})
            journal.append("commit", {"i": 0})
        with path.open("ab") as fh:
            fh.write(b'{"seq":2,"type":"commit","data"')  # SIGKILL mid-write
        records = RunJournal.replay(path)
        assert [r["seq"] for r in records] == [0, 1]
        # Recovery truncated the torn bytes: a reopened journal appends
        # cleanly right after the last good record.
        journal = RunJournal(path)
        assert journal.next_seq == 2
        journal.append("commit", {"i": 1})
        journal.close()
        assert [r["seq"] for r in RunJournal.replay(path)] == [0, 1, 2]

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.append("start", {})
            journal.append("commit", {"i": 0})
        # Flip a byte inside the *first* record: everything after the
        # corruption is untrusted, even if it parses.
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"start"', b'"stXrt"', 1))
        assert RunJournal.replay(path) == []

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.append("start", {})
        with RunJournal(path) as journal:
            journal.append("commit", {"i": 0})
        raw_lines = path.read_bytes().splitlines(keepends=True)
        # Drop the first record: the second's seq no longer chains.
        path.write_bytes(raw_lines[1])
        assert RunJournal.replay(path) == []

    def test_recovered_records_reported(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.append("start", {})
        with path.open("ab") as fh:
            fh.write(b"garbage-that-is-not-json\n")
        journal = RunJournal(path)
        assert journal.recovered_records == 1
        journal.close()

    def test_replay_missing_raises(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal.replay(tmp_path / "absent.journal")

    def test_append_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal")
        journal.close()
        with pytest.raises(JournalError):
            journal.append("start", {})


# ----------------------------------------------------------------------
# budget.py
# ----------------------------------------------------------------------
class TestRunBudget:
    def test_step_budget(self):
        budget = RunBudget(max_steps=10)
        assert budget.exceeded(9) is None
        assert "step budget" in budget.exceeded(10)

    def test_wall_budget(self):
        budget = RunBudget(max_wall_s=0.01)
        assert budget.exceeded(0) is None or True  # may already be due
        time.sleep(0.02)
        assert "wall-clock" in budget.exceeded(0)

    def test_restart_rearms_wall_clock(self):
        budget = RunBudget(max_wall_s=0.05)
        time.sleep(0.06)
        assert budget.exceeded(0) is not None
        budget.restart()
        assert budget.exceeded(0) is None

    def test_unlimited(self):
        assert RunBudget().exceeded(10**9) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(max_wall_s=0.0)
        with pytest.raises(ValueError):
            RunBudget(max_steps=0)

    def test_error_carries_checkpoint(self):
        ckpt = SimCheckpoint.create("test", {})
        err = BudgetExceededError("over", ckpt)
        assert err.checkpoint is ckpt


# ----------------------------------------------------------------------
# deadline.py
# ----------------------------------------------------------------------
class TestDeadlines:
    def teardown_method(self):
        clear_deadline()

    def test_unarmed_poll_is_noop(self):
        poll_deadline()

    def test_expiry_raises_custom_type(self):
        class MyTimeout(DeadlineExceededError):
            pass

        set_deadline(0.0, "too slow", exc_type=MyTimeout)
        time.sleep(0.001)
        with pytest.raises(MyTimeout, match="too slow"):
            poll_deadline()
        poll_deadline()  # one-shot: consumed on raise

    def test_clear_disarms(self):
        set_deadline(0.0)
        clear_deadline()
        time.sleep(0.001)
        poll_deadline()

    def test_context_manager(self):
        with thread_deadline(60.0):
            poll_deadline()
        poll_deadline()

    def test_cross_thread_expiry(self):
        """A watchdog force-expires another thread's deadline."""
        armed = threading.Event()
        raised = []

        def victim():
            set_deadline(3600.0, "slow run")
            armed.set()
            for _ in range(2000):
                try:
                    poll_deadline()
                except DeadlineExceededError as exc:
                    raised.append(str(exc))
                    return
                time.sleep(0.001)

        thread = threading.Thread(target=victim)
        thread.start()
        assert armed.wait(5.0)
        expire_deadline(thread.ident, "retired by watchdog")
        thread.join(timeout=5.0)
        assert raised and "retired by watchdog" in raised[0]


class TestWatchdog:
    def test_fires_on_stall_once_per_episode(self):
        fired = []
        hb = Heartbeat()
        dog = HeartbeatWatchdog(hb, stall_timeout_s=0.05,
                                on_stall=lambda: fired.append(1),
                                poll_s=0.01)
        with dog:
            time.sleep(0.2)
        assert len(fired) == 1
        assert dog.stalls == 1

    def test_quiet_while_beating(self):
        fired = []
        hb = Heartbeat()
        dog = HeartbeatWatchdog(hb, stall_timeout_s=0.2,
                                on_stall=lambda: fired.append(1),
                                poll_s=0.01)
        with dog:
            for _ in range(10):
                hb.beat()
                time.sleep(0.01)
        assert fired == []

    def test_retire_on_stall_flushes_and_expires(self, tmp_path):
        path = tmp_path / "stall.ckpt"
        ck = Checkpointer(path)
        ck.latest = SimCheckpoint.create("test", {"v": 7})
        on_stall = retire_on_stall(ck, threading.get_ident(), label="cell")
        set_deadline(3600.0, exc_type=DeadlineExceededError)
        try:
            on_stall()
            assert SimCheckpoint.load(path).payload == {"v": 7}
            with pytest.raises(DeadlineExceededError, match="stalled"):
                poll_deadline()
        finally:
            clear_deadline()


# ----------------------------------------------------------------------
# lock.py
# ----------------------------------------------------------------------
class TestFileLock:
    def test_acquire_release(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held

    def test_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with lock:
                assert lock.held
            assert lock.held
        assert not lock.held

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX only")
    def test_excludes_other_processes(self, tmp_path):
        """While held here, a child's non-blocking flock must fail."""
        path = tmp_path / "x.lock"
        probe = (
            "import fcntl, os, sys\n"
            "fd = os.open(sys.argv[1], os.O_RDWR | os.O_CREAT)\n"
            "try:\n"
            "    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)\n"
            "except OSError:\n"
            "    sys.exit(42)\n"
            "sys.exit(0)\n"
        )
        with FileLock(path):
            held = subprocess.run([sys.executable, "-c", probe, str(path)])
            assert held.returncode == 42, "child acquired a held lock"
        released = subprocess.run([sys.executable, "-c", probe, str(path)])
        assert released.returncode == 0
