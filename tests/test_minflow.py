"""Tests for the successive-shortest-path min-cost-flow kernel."""

import math

import pytest

from repro.core.minflow import MinCostFlow, transport


class TestMinCostFlow:
    def test_single_edge(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, cap=5.0, cost=2.0)
        flow, cost = net.solve(0, 1, 5.0)
        assert flow == pytest.approx(5.0)
        assert cost == pytest.approx(10.0)

    def test_prefers_cheap_path(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 10.0, 1.0)
        net.add_edge(1, 3, 10.0, 1.0)
        net.add_edge(0, 2, 10.0, 5.0)
        net.add_edge(2, 3, 10.0, 5.0)
        flow, cost = net.solve(0, 3, 5.0)
        assert flow == pytest.approx(5.0)
        assert cost == pytest.approx(10.0)  # all on the cheap path

    def test_splits_when_cheap_path_saturates(self):
        net = MinCostFlow(4)
        net.add_edge(0, 1, 3.0, 1.0)
        net.add_edge(1, 3, 3.0, 1.0)
        net.add_edge(0, 2, 10.0, 4.0)
        net.add_edge(2, 3, 10.0, 4.0)
        flow, cost = net.solve(0, 3, 5.0)
        assert flow == pytest.approx(5.0)
        assert cost == pytest.approx(3 * 2 + 2 * 8)

    def test_partial_flow_when_capacity_limited(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 2.0, 1.0)
        flow, cost = net.solve(0, 1, 10.0)
        assert flow == pytest.approx(2.0)
        assert cost == pytest.approx(2.0)

    def test_zero_request(self):
        net = MinCostFlow(2)
        net.add_edge(0, 1, 2.0, 1.0)
        flow, cost = net.solve(0, 1, 0.0)
        assert flow == 0.0
        assert cost == 0.0

    def test_disconnected_sink(self):
        net = MinCostFlow(3)
        net.add_edge(0, 1, 2.0, 1.0)
        flow, _ = net.solve(0, 2, 1.0)
        assert flow == 0.0

    def test_rejects_negative_capacity(self):
        net = MinCostFlow(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0, 1.0)

    def test_rejects_bad_node_index(self):
        net = MinCostFlow(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0, 1.0)

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            MinCostFlow(0)

    def test_multi_path_optimality(self):
        # Diamond with asymmetric costs; optimum mixes paths.
        net = MinCostFlow(5)
        net.add_edge(0, 1, 4.0, 0.0)
        net.add_edge(0, 2, 4.0, 0.0)
        net.add_edge(1, 3, 2.0, 1.0)
        net.add_edge(1, 4, 4.0, 6.0)
        net.add_edge(2, 3, 2.0, 2.0)
        net.add_edge(3, 4, 3.0, 0.0)
        flow, cost = net.solve(0, 4, 4.0)
        assert flow == pytest.approx(4.0)
        # best: 2 units via 1-3 (cost 2), 1 unit via 2-3 (cost 2),
        # 1 unit via 1-4 (cost 6) = 10
        assert cost == pytest.approx(10.0)


class TestTransport:
    def test_identity_transport_is_free(self):
        cost = transport([0.5, 0.5], [0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        assert cost == pytest.approx(0.0)

    def test_full_move(self):
        cost = transport([1.0, 0.0], [0.0, 1.0], [[0.0, 3.0], [3.0, 0.0]])
        assert cost == pytest.approx(3.0)

    def test_partial_move(self):
        cost = transport([0.8, 0.2], [0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])
        assert cost == pytest.approx(0.3)

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            transport([1.0], [0.5], [[0.0]])

    def test_negative_supply_rejected(self):
        with pytest.raises(ValueError):
            transport([-0.1, 1.1], [0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            transport([], [], [])

    def test_rectangular_problem(self):
        cost = transport(
            [0.6, 0.4],
            [0.2, 0.3, 0.5],
            [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        )
        # Optimal assignment: supply0 -> d0 (0.2@1) + d1 (0.3@2) + d2 (0.1@3),
        # supply1 -> d2 (0.4@6).
        assert cost == pytest.approx(0.2 + 0.6 + 0.3 + 2.4)

    def test_cost_bounded_by_max_ground(self):
        cost = transport([0.3, 0.7], [0.7, 0.3], [[0.0, 0.9], [0.9, 0.0]])
        assert 0.0 <= cost <= 0.9
