"""Tests for the SweepExecutor interface and the per-cell timeout
mechanism surfacing (no more silent degradation off the main thread)."""

import threading
import warnings

import pytest

from repro.capman.baselines import DualPolicy
from repro.sim.executors import (CellFailure, ExecutionContext,
                                 LocalProcessExecutor, SweepExecutor,
                                 choose_timeout_mechanism, timed_cell)
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


def _spec(trace, **kwargs):
    defaults = dict(
        policies={"Dual": DualPolicy(capacity_mah=40.0)},
        traces={"Video": trace},
        max_duration_s=900.0,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestInterface:
    def test_attach_detach_lifecycle(self):
        ex = SweepExecutor()
        with pytest.raises(RuntimeError):
            _ = ex.ctx  # unattached
        ctx = ExecutionContext()
        ex.attach(ctx)
        assert ex.ctx is ctx
        with pytest.raises(RuntimeError):
            ex.attach(ctx)  # double attach
        ex.detach()
        ex.detach()  # idempotent
        ex.attach(ctx)  # reusable after detach
        ex.detach()

    def test_base_executor_runs_cells_and_finalises(self, trace):
        committed = []
        ex = SweepExecutor()
        ex.attach(ExecutionContext(
            on_final=lambda index, outcome: committed.append(index)))
        cells = _spec(trace).expand()
        items = ex.run(cells)
        ex.detach()
        assert [item[0] for item in items] == [cell.index for cell in cells]
        assert committed == [cell.index for cell in cells]
        assert not any(isinstance(item[1], CellFailure) for item in items)
        assert ex.heartbeat().done == len(cells)

    def test_runner_reports_executor_name(self, trace):
        result = ScenarioRunner(workers=1).run(_spec(trace))
        assert result.stats.executor == "local"
        assert result.stats.workers == 1
        # Everything-from-cache sweeps never touch an executor.
        again = ScenarioRunner(workers=1)
        cached = again.run(_spec(trace))
        assert cached.stats.executor == "local"

    def test_custom_executor_is_used(self, trace):
        class Recording(LocalProcessExecutor):
            name = "recording"
            seen = []

            def run(self, cells):
                self.seen.append(len(cells))
                return super().run(cells)

        ex = Recording(workers=1)
        result = ScenarioRunner(executor=ex).run(_spec(trace))
        assert result.stats.executor == "recording"
        assert ex.seen == [1]


class TestTimeoutMechanism:
    def test_choice_on_main_thread_is_sigalrm(self):
        assert choose_timeout_mechanism(5.0) == "sigalrm"
        assert choose_timeout_mechanism(None) == "none"
        assert choose_timeout_mechanism(0.0) == "none"

    def test_choice_off_main_thread_is_cooperative(self):
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(choose_timeout_mechanism(5.0)))
        thread.start()
        thread.join()
        assert seen == ["cooperative"]

    def test_stats_surface_chosen_mechanism(self, trace):
        no_budget = ScenarioRunner(workers=1).run(_spec(trace))
        assert no_budget.stats.timeout_mechanism == "none"
        budgeted = ScenarioRunner(workers=1, cell_timeout_s=60.0).run(
            _spec(trace, ambients_c=(30.0,)))
        assert budgeted.stats.timeout_mechanism == "sigalrm"

    def test_cooperative_fallback_raises_same_contract(self, trace):
        """Off the main thread the budget degrades to the polled
        deadline -- with a warning -- but still produces a CellFailure
        of the same CellTimeoutError type, never a silent no-timeout.

        Deterministic: the budget is far below one cell's compute
        time, so the first in-loop poll after it elapses must fire.
        """
        cell = _spec(trace).expand()[0]
        out = {}

        def run_in_thread():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                out["item"] = timed_cell(cell, timeout_s=0.001)
                out["warnings"] = [str(w.message) for w in caught]

        thread = threading.Thread(target=run_in_thread)
        thread.start()
        thread.join()
        failure = out["item"][1]
        assert isinstance(failure, CellFailure)
        assert failure.error_type == "CellTimeoutError"
        assert "per-cell timeout" in failure.message
        assert any("cooperative" in msg for msg in out["warnings"])
