"""Tests for the CC-CV charging substrate."""

import pytest

from repro.battery.cell import Cell
from repro.battery.charging import CCCVCharger
from repro.battery.chemistry import LMO, NCA, pick_big_little
from repro.battery.pack import BigLittlePack, SingleBatteryPack


class TestValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            CCCVCharger(charge_c_rate=0.0)
        with pytest.raises(ValueError):
            CCCVCharger(charge_c_rate=0.5, cutoff_c_rate=0.6)
        with pytest.raises(ValueError):
            CCCVCharger(efficiency=1.5)

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            CCCVCharger().step_cell(Cell(NCA, 100.0), 0.0)


class TestStepCell:
    def test_full_cell_accepts_nothing(self):
        cell = Cell(NCA, 100.0, soc=1.0)
        res = CCCVCharger().step_cell(cell, 30.0)
        assert res.accepted_amp_s == 0.0
        assert res.complete

    def test_cc_phase_current(self):
        cell = Cell(NCA, 1000.0, soc=0.3)
        res = CCCVCharger(charge_c_rate=0.5).step_cell(cell, 30.0)
        assert res.current_a == pytest.approx(0.5)

    def test_cv_phase_tapers(self):
        charger = CCCVCharger(charge_c_rate=0.5)
        low = charger.step_cell(Cell(NCA, 1000.0, soc=0.5), 30.0)
        high = charger.step_cell(Cell(NCA, 1000.0, soc=0.95), 30.0)
        assert high.current_a < low.current_a

    def test_charge_increases_soc(self):
        cell = Cell(NCA, 500.0, soc=0.4)
        CCCVCharger().step_cell(cell, 60.0)
        assert cell.state_of_charge > 0.4

    def test_never_overfills(self):
        cell = Cell(NCA, 50.0, soc=0.99)
        for _ in range(100):
            CCCVCharger().step_cell(cell, 60.0)
        assert cell.state_of_charge <= 1.0 + 1e-9


class TestFullCharge:
    def test_charges_to_full(self):
        cell = Cell(NCA, 500.0, soc=0.1)
        t = CCCVCharger().charge_cell(cell)
        assert cell.state_of_charge >= 0.999
        assert t > 0.0

    def test_cc_phase_dominates_time(self):
        """0.5C charging from empty takes roughly 2-3 hours."""
        cell = Cell(NCA, 1000.0, soc=0.02)
        t = CCCVCharger(charge_c_rate=0.5).charge_cell(cell)
        assert 1.5 * 3600.0 < t < 4.0 * 3600.0

    def test_faster_charger_is_faster(self):
        slow_cell = Cell(LMO, 500.0, soc=0.1)
        fast_cell = Cell(LMO, 500.0, soc=0.1)
        slow = CCCVCharger(charge_c_rate=0.3).charge_cell(slow_cell)
        fast = CCCVCharger(charge_c_rate=1.0).charge_cell(fast_cell)
        assert fast < slow

    def test_charged_cell_serves_again(self):
        cell = Cell(NCA, 200.0, soc=0.05)
        CCCVCharger().charge_cell(cell)
        res = cell.draw_power(0.5, 10.0)
        assert res.energy_j == pytest.approx(5.0)


class TestChargePack:
    def test_charges_big_little_pack(self):
        big, little = pick_big_little()
        pack = BigLittlePack.from_chemistries(big, little, 300.0)
        pack.big._available *= 0.1
        pack.big._bound *= 0.1
        pack.little._available *= 0.1
        pack.little._bound *= 0.1
        t = CCCVCharger().charge_pack(pack)
        assert pack.state_of_charge >= 0.999
        assert t > 0.0

    def test_charges_single_pack(self):
        pack = SingleBatteryPack.from_chemistry(NCA, 300.0)
        pack.cell._available *= 0.2
        pack.cell._bound *= 0.2
        CCCVCharger().charge_pack(pack)
        assert pack.state_of_charge >= 0.999

    def test_unknown_pack_rejected(self):
        with pytest.raises(TypeError):
            CCCVCharger().charge_pack(object())
