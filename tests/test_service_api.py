"""API contract and malformed-input tests for the sweep service.

Every bad request must come back as a structured ``{"error": {...}}``
envelope with a stable machine code -- and, crucially, must leave the
server answering the next request.  The concurrent fuzz test (seeded,
pattern of ``tests/test_protocol_fuzz.py``) hammers the listener with
garbage byte streams, truncated bodies and junk routes from several
threads, then proves the service still does real work.
"""

import http.client
import json
import random
import socket
import threading

import pytest

from repro.service import CapmanService
from repro.service.schemas import MAX_GRID_CELLS

from service_client import api, small_grid, wait_for_job

SECRET = "sweep-service-test-secret"


@pytest.fixture()
def service(tmp_path, monkeypatch):
    monkeypatch.setenv("CAPMAN_DIST_SECRET", SECRET)
    monkeypatch.delenv("CAPMAN_DIST_WORKERS", raising=False)
    svc = CapmanService(tmp_path / "state", cell_workers=1,
                        job_runners=1, max_body_bytes=64 << 10).start()
    yield svc
    svc.close()


@pytest.fixture()
def base(service):
    host, port = service.address
    return f"http://{host}:{port}"


class TestAuth:
    def test_missing_token_is_401(self, base):
        code, body = api(base, "GET", "/metrics")
        assert code == 401
        assert body["error"]["code"] == "unauthorized"

    def test_wrong_token_is_401(self, base):
        code, body = api(base, "POST", "/jobs", body=small_grid(),
                         token="not-the-secret")
        assert code == 401
        assert body["error"]["code"] == "unauthorized"

    def test_healthz_needs_no_token(self, base):
        assert api(base, "GET", "/healthz") == (200, {"ok": True})

    def test_right_token_is_accepted(self, base):
        code, body = api(base, "GET", "/metrics", token=SECRET)
        assert code == 200 and "counters" in body


class TestContract:
    def test_invalid_json_is_400(self, base):
        code, body = api(base, "POST", "/jobs",
                         raw=b"{not json", token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "invalid_json"

    def test_unknown_device_profile_is_400(self, base):
        grid = small_grid()
        grid["profiles"] = ["Pixel9"]
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "unknown_profile"
        assert "Nexus" in body["error"]["detail"]["known"]

    def test_unknown_policy_type_is_400(self, base):
        grid = small_grid()
        grid["policies"]["D30"] = {"type": "quantum"}
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "unknown_policy"

    def test_bad_policy_arguments_are_400(self, base):
        grid = small_grid()
        grid["policies"]["D30"] = {"type": "dual", "warp_factor": 9}
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "invalid_spec"

    def test_unknown_workload_is_400(self, base):
        grid = small_grid()
        grid["traces"]["V"] = {"workload": "crysis", "duration_s": 60}
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "unknown_workload"

    def test_oversized_body_is_413(self, base):
        blob = b'{"padding": "' + b"x" * (65 << 10) + b'"}'
        code, body = api(base, "POST", "/jobs", raw=blob, token=SECRET)
        assert code == 413
        assert body["error"]["code"] == "body_too_large"

    def test_grid_over_the_cell_ceiling_is_400(self, base):
        grid = small_grid(capacities=(30.0,))
        grid["control_dts"] = [float(i + 1) for i in range(MAX_GRID_CELLS
                                                           + 1)]
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert body["error"]["code"] == "grid_too_large"

    def test_unknown_route_is_404(self, base):
        code, body = api(base, "GET", "/nope", token=SECRET)
        assert code == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, base):
        code, body = api(base, "GET", "/jobs", token=SECRET)
        assert code == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_unknown_job_is_404(self, base):
        code, body = api(base, "GET", "/jobs/" + "0" * 32, token=SECRET)
        assert code == 404
        assert body["error"]["code"] == "unknown_job"

    def test_inline_trace_rows_round_trip(self, base):
        grid = {
            "policies": {"D30": {"type": "dual", "capacity_mah": 30.0}},
            "traces": {"inline": {"rows": [
                {"duration_s": 30.0, "syscall": None, "cpu_util": 40.0,
                 "freq_index": 1, "screen_on": True, "brightness": 0.5,
                 "wifi_kbps": 0.0},
                {"duration_s": 30.0, "syscall": None, "cpu_util": 80.0,
                 "freq_index": 2, "screen_on": True, "brightness": 0.5,
                 "wifi_kbps": 100.0},
            ]}},
            "max_duration_s": 600.0,
        }
        code, ack = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 201, ack
        status = wait_for_job(base, ack["job_id"], token=SECRET)
        assert status["state"] == "done"

    def test_inline_trace_missing_fields_is_400(self, base):
        grid = small_grid()
        grid["traces"]["V"] = {"rows": [{"duration_s": 10.0}]}
        code, body = api(base, "POST", "/jobs", body=grid, token=SECRET)
        assert code == 400
        assert "missing" in body["error"]["detail"]


class TestConcurrentFuzz:
    """Seeded multi-client garbage cannot wedge the server."""

    def _hammer(self, host, port, seed, failures):
        rng = random.Random(seed)
        paths = ["/jobs", "/jobs/zzz", "/metrics", "/", "/jobs/" + "f" * 32,
                 "/jobs/%s/events" % ("0" * 32), "/healthz//", "//jobs"]
        try:
            for _ in range(25):
                mode = rng.randrange(3)
                try:
                    if mode == 0:
                        # Raw garbage bytes straight at the listener.
                        with socket.create_connection((host, port),
                                                      timeout=5) as sock:
                            sock.sendall(bytes(rng.randrange(256)
                                               for _ in range(
                                                   rng.randrange(1, 256))))
                    elif mode == 1:
                        # A request that lies about its body length.
                        with socket.create_connection((host, port),
                                                      timeout=5) as sock:
                            sock.sendall(
                                b"POST /jobs HTTP/1.1\r\n"
                                b"Host: x\r\nContent-Length: 9999\r\n"
                                b"\r\ntruncated")
                    else:
                        # Junk routes/methods/bodies over real HTTP.
                        conn = http.client.HTTPConnection(host, port,
                                                          timeout=5)
                        conn.request(
                            rng.choice(["GET", "POST"]),
                            rng.choice(paths),
                            body=bytes(rng.randrange(256) for _ in
                                       range(rng.randrange(64))),
                            headers={"Authorization":
                                     "Bearer " + SECRET})
                        conn.getresponse().read()
                        conn.close()
                except (OSError, http.client.HTTPException):
                    # Connection-level rejection is a fine outcome for
                    # garbage; a wedged server is caught below.
                    pass
        except Exception as exc:  # pragma: no cover - diagnostics only
            failures.append(exc)

    def test_seeded_concurrent_garbage_then_real_work(self, service, base):
        host, port = service.address
        failures = []
        threads = [
            threading.Thread(target=self._hammer,
                             args=(host, port, seed, failures))
            for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not failures

        # The server survived: structured answers and a real sweep.
        assert api(base, "GET", "/healthz") == (200, {"ok": True})
        code, body = api(base, "POST", "/jobs", raw=b"\xff\xfe",
                         token=SECRET)
        assert code == 400 and body["error"]["code"] == "invalid_json"
        code, ack = api(base, "POST", "/jobs",
                        body=small_grid(capacities=(45.0,)),
                        token=SECRET)
        assert code == 201
        status = wait_for_job(base, ack["job_id"], token=SECRET)
        assert status["state"] == "done"
