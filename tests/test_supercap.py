"""Tests for the supercapacitor output filter."""

import pytest

from repro.battery.supercap import Supercapacitor


class TestConstruction:
    def test_starts_full(self):
        cap = Supercapacitor()
        assert cap.voltage == cap.rated_voltage
        assert cap.headroom_j == pytest.approx(0.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Supercapacitor(capacitance_f=0.0)
        with pytest.raises(ValueError):
            Supercapacitor(rated_voltage=-1.0)


class TestSmoothing:
    def test_gentle_demand_passes_through(self):
        cap = Supercapacitor()
        out = cap.smooth(0.5, 1.0)
        # Cap is full, so no refill; battery carries the demand.
        assert out.battery_power_w == pytest.approx(0.5)
        assert out.capacitor_energy_j == 0.0

    def test_burst_served_partly_from_cap(self):
        cap = Supercapacitor(refill_power_w=1.0)
        out = cap.smooth(3.0, 1.0)
        assert out.capacitor_energy_j > 0.0
        assert out.battery_power_w < 3.0
        # Battery + cap together cover the demand.
        assert out.battery_power_w + out.capacitor_energy_j == pytest.approx(3.0, rel=1e-6)

    def test_burst_drains_stored_energy(self):
        cap = Supercapacitor(refill_power_w=1.0)
        before = cap.stored_energy_j
        cap.smooth(3.0, 1.0)
        assert cap.stored_energy_j < before

    def test_refill_after_burst(self):
        cap = Supercapacitor(refill_power_w=1.5)
        cap.smooth(4.0, 2.0)  # drain
        drained = cap.stored_energy_j
        out = cap.smooth(0.5, 1.0)  # gentle step: battery refills cap
        assert out.battery_power_w > 0.5
        assert cap.stored_energy_j > drained

    def test_floor_voltage_protected(self):
        cap = Supercapacitor(refill_power_w=0.5)
        for _ in range(200):
            cap.smooth(5.0, 1.0)
        assert cap.voltage >= 0.5 * cap.rated_voltage - 1e-6

    def test_esr_heat_on_discharge(self):
        cap = Supercapacitor(refill_power_w=1.0, esr_ohm=0.1)
        out = cap.smooth(4.0, 1.0)
        assert out.heat_j > 0.0

    def test_invalid_inputs_rejected(self):
        cap = Supercapacitor()
        with pytest.raises(ValueError):
            cap.smooth(-1.0, 1.0)
        with pytest.raises(ValueError):
            cap.smooth(1.0, 0.0)

    def test_energy_conservation_over_cycle(self):
        """Energy out of the cap never exceeds what went in + initial."""
        cap = Supercapacitor(refill_power_w=1.0)
        initial = cap.stored_energy_j
        taken = 0.0
        refilled = 0.0
        for demand in (3.0, 0.2, 3.0, 0.2, 4.0, 0.1):
            out = cap.smooth(demand, 1.0)
            taken += out.capacitor_energy_j
            refilled += max(0.0, out.battery_power_w - demand) * 1.0
        assert taken <= initial + refilled + 1e-6
