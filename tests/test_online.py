"""Tests for the online approximation scheduler."""

import pytest

from repro.core.mdp import MDP, random_mdp
from repro.core.online import OnlineScheduler
from repro.core.solver import value_iteration


@pytest.fixture
def mdp():
    return random_mdp(8, 3, branching=2, seed=21, absorbing=1)


class TestDecisions:
    def test_known_state_gets_optimal_action(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        optimal = value_iteration(mdp, rho=0.8).policy
        for s in mdp.states:
            if mdp.available_actions(s):
                rec = sched.decide(s)
                assert rec.source == "exact"
                # The refinement sweeps may flip exact ties; verify the
                # chosen action's Q is optimal.
                q = sched.solution.q_values
                best = max(q[(s, a)] for a in mdp.available_actions(s))
                assert q[(s, rec.action)] == pytest.approx(best, abs=1e-6)

    def test_absorbing_state_gets_none(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        absorbing = [s for s in mdp.states if mdp.is_absorbing(s)][0]
        assert sched.decide(absorbing).action is None

    def test_latency_measured(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        rec = sched.decide(mdp.states[0])
        assert rec.latency_us > 0.0
        assert sched.mean_latency_us() > 0.0

    def test_stale_state_borrows_from_similar(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        sched.build_similarity_index()
        live = [s for s in mdp.states if mdp.available_actions(s)]
        sched.mark_stale(live[0])
        rec = sched.decide(live[0])
        assert rec.source in ("similar", "fallback")
        if rec.source == "similar":
            assert rec.surrogate is not None
            assert 0.0 <= rec.delta_s <= 1.0

    def test_recompute_clears_staleness(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        live = [s for s in mdp.states if mdp.available_actions(s)]
        sched.mark_stale(live[0])
        sched.recompute()
        assert sched.decide(live[0]).source == "exact"

    def test_fallback_without_similarity_index(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        live = [s for s in mdp.states if mdp.available_actions(s)]
        sched.mark_stale(live[0])
        rec = sched.decide(live[0])
        assert rec.source == "fallback"
        assert rec.action in mdp.available_actions(live[0])


class TestOverheadModel:
    def test_sweeps_grow_with_rho(self, mdp):
        low = OnlineScheduler(mdp, rho=0.1).refinement_sweep_count()
        high = OnlineScheduler(mdp, rho=0.99).refinement_sweep_count()
        assert high > low * 10

    def test_faster_device_does_fewer_sweeps(self, mdp):
        slow = OnlineScheduler(mdp, rho=0.9, compute_speed=1.0)
        fast = OnlineScheduler(mdp, rho=0.9, compute_speed=2.0)
        assert fast.refinement_sweep_count() < slow.refinement_sweep_count()

    def test_latency_grows_with_rho(self, mdp):
        """The Figure 16 effect, measured in real microseconds."""
        def mean_latency(rho):
            sched = OnlineScheduler(mdp, rho=rho)
            for s in mdp.states[:5]:
                for _ in range(10):
                    sched.decide(s)
            return sched.mean_latency_us()

        assert mean_latency(0.99) > mean_latency(0.2)

    def test_invalid_params(self, mdp):
        with pytest.raises(ValueError):
            OnlineScheduler(mdp, rho=1.0)
        with pytest.raises(ValueError):
            OnlineScheduler(mdp, rho=0.5, compute_speed=0.0)


class TestDecisionCache:
    def test_repeat_decisions_hit_cache(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        state = mdp.states[0]
        first = sched.decide(state)
        second = sched.decide(state)
        assert sched.stats.cache_misses == 1
        assert sched.stats.cache_hits == 1
        assert sched.stats.hit_rate == pytest.approx(0.5)
        assert second.action == first.action
        assert second.source == first.source

    def test_cached_decision_skips_refinement_time(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.99)
        state = mdp.states[0]
        sched.decide(state)
        refine_after_miss = sched.stats.refine_s
        for _ in range(5):
            sched.decide(state)
        assert sched.stats.refine_s == refine_after_miss

    def test_cache_matches_uncached_actions(self, mdp):
        cached = OnlineScheduler(mdp, rho=0.8)
        cold = OnlineScheduler(mdp, rho=0.8, decision_cache=False)
        for s in mdp.states:
            for _ in range(3):
                assert cached.decide(s).action == cold.decide(s).action
        assert cached.stats.cache_hits > 0
        assert cold.stats.cache_hits == 0

    def test_mark_stale_invalidates(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        sched.build_similarity_index()
        live = [s for s in mdp.states if mdp.available_actions(s)]
        sched.decide(live[0])
        sched.mark_stale(live[0])
        rec = sched.decide(live[0])
        # Stale state re-resolves (borrowing, not the cached "exact").
        assert rec.source in ("similar", "fallback")
        assert sched.stats.cache_misses == 2

    def test_recompute_invalidates(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        state = mdp.states[0]
        sched.decide(state)
        sched.recompute()
        sched.decide(state)
        assert sched.stats.cache_misses == 2
        assert sched.stats.background_s > 0.0

    def test_build_similarity_index_invalidates(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        state = mdp.states[0]
        sched.decide(state)
        sched.build_similarity_index()
        sched.decide(state)
        assert sched.stats.cache_misses == 2

    def test_cache_can_be_disabled(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8, decision_cache=False)
        state = mdp.states[0]
        sched.decide(state)
        sched.decide(state)
        assert sched.stats.cache_hits == 0
        assert sched.stats.cache_misses == 2

    def test_phase_timing_accumulates(self, mdp):
        sched = OnlineScheduler(mdp, rho=0.8)
        for s in mdp.states:
            sched.decide(s)
        assert sched.stats.refine_s >= 0.0
        assert sched.stats.lookup_s > 0.0
