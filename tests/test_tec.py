"""Tests for the TEC physics (paper Eq. 1 / Figure 6) and actuator."""

import pytest

from repro.thermal.tec import TECModel, TECUnit


class TestTECModel:
    def test_rated_current_near_one_amp(self):
        """Figure 6: the ATE-31-style part peaks around 1.0 A."""
        model = TECModel.ate31()
        assert model.rated_current(25.0) == pytest.approx(1.0, abs=0.05)

    def test_delta_t_curve_peaks_at_rated(self):
        model = TECModel.ate31()
        currents = [0.2 * i for i in range(1, 12)]
        curve = model.delta_t_curve(currents)
        best_i = max(curve, key=lambda p: p[1])[0]
        assert best_i == pytest.approx(model.rated_current(25.0), abs=0.21)

    def test_delta_t_rises_then_falls(self):
        """The Figure 6 shape: dT grows, peaks, then Joule heating wins."""
        model = TECModel.ate31()
        low = model.max_delta_t(0.3)
        rated = model.max_delta_t(model.rated_current(25.0))
        high = model.max_delta_t(2.0)
        assert low < rated
        assert high < rated

    def test_no_cooling_without_current(self):
        model = TECModel.ate31()
        assert model.max_delta_t(0.0) == 0.0

    def test_heat_pumped_decreases_with_face_gap(self):
        model = TECModel.ate31()
        close = model.heat_pumped_w(1.0, hot_c=30.0, cold_c=28.0)
        far = model.heat_pumped_w(1.0, hot_c=50.0, cold_c=28.0)
        assert far < close

    def test_electrical_power_formula(self):
        model = TECModel(seebeck_v_per_k=0.05, resistance_ohm=10.0,
                         conductance_w_per_k=0.2)
        p = model.electrical_power_w(1.0, hot_c=45.0, cold_c=35.0)
        assert p == pytest.approx(0.05 * 1.0 * 10.0 + 10.0)


class TestTECUnit:
    def test_off_by_default(self):
        unit = TECUnit()
        assert not unit.is_on
        assert unit.power_w() == 0.0
        assert unit.heat_flows(1.0, 40.0, 35.0) == {}

    def test_paper_drive_power(self):
        """Table III: the TEC draws 29.17 mW while on."""
        unit = TECUnit()
        unit.set_on(True)
        assert unit.power_w() == pytest.approx(0.02917)

    def test_pumps_from_cold_to_hot(self):
        unit = TECUnit()
        unit.set_on(True)
        flows = unit.heat_flows(1.0, cold_temp_c=48.0, hot_temp_c=35.0)
        assert flows["cpu"] < 0.0
        assert flows["surface"] > 0.0

    def test_hot_side_receives_pump_plus_drive(self):
        unit = TECUnit()
        unit.set_on(True)
        flows = unit.heat_flows(1.0, cold_temp_c=48.0, hot_temp_c=35.0)
        assert flows["surface"] == pytest.approx(-flows["cpu"] + unit.drive_power_w)

    def test_bookkeeping_accumulates(self):
        unit = TECUnit()
        unit.set_on(True)
        unit.heat_flows(2.0, 48.0, 35.0)
        unit.heat_flows(3.0, 48.0, 35.0)
        assert unit.on_time_s == pytest.approx(5.0)
        assert unit.energy_used_j == pytest.approx(5.0 * unit.drive_power_w)

    def test_no_bookkeeping_while_off(self):
        unit = TECUnit()
        unit.heat_flows(2.0, 48.0, 35.0)
        assert unit.on_time_s == 0.0

    def test_cannot_freeze_below_ambient(self):
        """Pumping throttles off as the cold face nears ambient."""
        unit = TECUnit()
        unit.set_on(True)
        flows = unit.heat_flows(1.0, cold_temp_c=25.5, hot_temp_c=25.0)
        assert abs(flows.get("cpu", 0.0)) < unit.pump_w * 0.2

    def test_invalid_dt_rejected(self):
        unit = TECUnit()
        unit.set_on(True)
        with pytest.raises(ValueError):
            unit.heat_flows(0.0, 40.0, 30.0)
