"""Tests for the multi-day discharge/charge/aging simulation."""

import pytest

from repro.battery.aging import AgingModel
from repro.capman.baselines import DualPolicy, PracticePolicy
from repro.sim.daily import run_days
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def trace():
    return record_trace(VideoWorkload(seed=41), 240.0)


def _fast_aging():
    """Aggressive aging so fade is visible in a handful of days."""
    return AgingModel(temp_doubling_k=5.0, rate_stress_weight=2.0)


class TestRunDays:
    def test_records_every_day(self, trace):
        res = run_days(DualPolicy(capacity_mah=60.0), trace, n_days=3,
                       max_cycle_s=6 * 3600.0)
        assert len(res.days) == 3
        assert res.days[0].day == 1
        assert res.policy_name == "Dual"

    def test_health_monotone_nonincreasing(self, trace):
        res = run_days(DualPolicy(capacity_mah=60.0), trace, n_days=4,
                       max_cycle_s=6 * 3600.0, aging=_fast_aging())
        for earlier, later in zip(res.days, res.days[1:]):
            for h_e, h_l in zip(earlier.cell_health, later.cell_health):
                assert h_l <= h_e + 1e-9

    def test_charge_time_positive(self, trace):
        res = run_days(PracticePolicy(capacity_mah=120.0), trace, n_days=2,
                       max_cycle_s=6 * 3600.0)
        assert all(d.charge_time_s > 0.0 for d in res.days)

    def test_service_fades_with_heavy_aging(self, trace):
        """With a brutally accelerated aging model, day-N service time
        drops below day 1."""

        class Brutal(AgingModel):
            def record_cycle(self, health, throughput_amp_s, mean_temp_c=25.0,
                             mean_current_a=0.0):
                health.equivalent_cycles += health.chemistry.cycle_life * 0.2

        res = run_days(DualPolicy(capacity_mah=60.0), trace, n_days=4,
                       max_cycle_s=6 * 3600.0, aging=Brutal())
        assert res.service_fade > 0.05

    def test_invalid_days_rejected(self, trace):
        with pytest.raises(ValueError):
            run_days(DualPolicy(capacity_mah=60.0), trace, n_days=0)

    def test_dual_pack_tracks_two_cells(self, trace):
        res = run_days(DualPolicy(capacity_mah=60.0), trace, n_days=2,
                       max_cycle_s=6 * 3600.0)
        assert len(res.days[0].cell_health) == 2

    def test_single_pack_tracks_one_cell(self, trace):
        res = run_days(PracticePolicy(capacity_mah=120.0), trace, n_days=2,
                       max_cycle_s=6 * 3600.0)
        assert len(res.days[0].cell_health) == 1
