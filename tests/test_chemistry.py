"""Tests for the chemistry catalogue (paper Table I / Figure 4)."""

import pytest

from repro.battery.chemistry import (
    BatteryRole,
    CHEMISTRIES,
    Chemistry,
    FeatureRatings,
    LCO,
    LFP,
    LMO,
    LTO,
    NCA,
    NMC,
    classify,
    orthogonality,
    pick_big_little,
)


class TestTableI:
    """The Result column of Table I must be reproduced exactly."""

    @pytest.mark.parametrize(
        "chem,role",
        [
            (LCO, BatteryRole.BIG),
            (NCA, BatteryRole.BIG),
            (LMO, BatteryRole.LITTLE),
            (NMC, BatteryRole.LITTLE),
            (LFP, BatteryRole.LITTLE),
            (LTO, BatteryRole.LITTLE),
        ],
    )
    def test_classification(self, chem, role):
        assert classify(chem) is role
        assert chem.role is role

    def test_catalogue_complete(self):
        assert set(CHEMISTRIES) == {"LCO", "NCA", "LMO", "NMC", "LFP", "LTO"}

    def test_papers_pick(self):
        big, little = pick_big_little()
        assert big is NCA
        assert little is LMO


class TestRatings:
    def test_ratings_bounds_enforced(self):
        with pytest.raises(ValueError):
            FeatureRatings(0, 3, 3, 3, 3)
        with pytest.raises(ValueError):
            FeatureRatings(3, 3, 6, 3, 3)

    def test_normalized_in_unit_interval(self):
        for chem in CHEMISTRIES.values():
            normalized = chem.ratings.normalized()
            assert all(0.0 <= v <= 1.0 for v in normalized.values())

    def test_as_dict_has_five_axes(self):
        assert len(NCA.ratings.as_dict()) == 5


class TestDerivedPhysics:
    def test_little_discharges_faster(self):
        # Figure 1: LMO releases electrons faster than NCA.
        assert LMO.max_c_rate > NCA.max_c_rate
        assert LMO.kibam_k > NCA.kibam_k
        assert LMO.internal_resistance < NCA.internal_resistance

    def test_big_stores_more(self):
        assert NCA.energy_density_wh_per_l > LMO.energy_density_wh_per_l
        assert NCA.capacity_mah_for_volume(10.0) > LMO.capacity_mah_for_volume(10.0)

    def test_big_more_efficient_at_gentle_rates(self):
        assert NCA.coulombic_efficiency > LMO.coulombic_efficiency

    def test_big_pays_more_for_bursts(self):
        assert NCA.rate_loss_coeff > LMO.rate_loss_coeff

    def test_capacity_for_volume_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NCA.capacity_mah_for_volume(0.0)

    def test_transient_slower_for_big(self):
        _, tau_big = NCA.effective_transient()
        _, tau_little = LMO.effective_transient()
        assert tau_big > tau_little

    def test_monotone_c_rate_in_stars(self):
        stars = sorted(CHEMISTRIES.values(), key=lambda c: c.ratings.discharge_rate)
        rates = [c.max_c_rate for c in stars]
        assert rates == sorted(rates)


class TestTimeCompression:
    def test_scales_diffusion(self):
        scaled = NCA.time_compressed(0.1)
        assert scaled.kibam_k == pytest.approx(NCA.kibam_k / 0.1)

    def test_sustainable_current_invariant(self):
        # sustainable ~ k * capacity; capacity scale * k/scale = const.
        scale = 0.05
        scaled = NCA.time_compressed(scale)
        assert scaled.kibam_k * scale == pytest.approx(NCA.kibam_k)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            NCA.time_compressed(0.0)
        with pytest.raises(ValueError):
            NCA.time_compressed(1.5)


class TestOrthogonality:
    def test_paper_pair_is_orthogonal(self):
        # NCA (3,4) and LMO (4,3) are perpendicular around the scale
        # centre -- the paper's "almost orthogonal" observation.
        assert orthogonality(NCA, LMO) == pytest.approx(1.0)

    def test_self_pair_is_colinear(self):
        assert orthogonality(NCA, NCA) == pytest.approx(0.0)
