"""Tests for the MDP container."""

import numpy as np
import pytest

from repro.core.mdp import MDP, random_mdp


def _two_state_mdp():
    return MDP(
        states=["s0", "s1"],
        actions=["a"],
        transitions={("s0", "a"): {"s1": 1.0}, ("s1", "a"): {"s0": 1.0}},
        rewards={("s0", "a", "s1"): 1.0, ("s1", "a", "s0"): 0.0},
    )


class TestMDPValidation:
    def test_valid_mdp_constructs(self):
        mdp = _two_state_mdp()
        assert mdp.n_states == 2
        assert mdp.n_actions == 1

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            MDP(["s", "s"], ["a"], {})

    def test_unnormalised_transitions_rejected(self):
        with pytest.raises(ValueError):
            MDP(["s"], ["a"], {("s", "a"): {"s": 0.5}})

    def test_unknown_successor_rejected(self):
        with pytest.raises(ValueError):
            MDP(["s"], ["a"], {("s", "a"): {"t": 1.0}})

    def test_reward_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MDP(
                ["s"],
                ["a"],
                {("s", "a"): {"s": 1.0}},
                {("s", "a", "s"): 1.5},
            )

    def test_empty_successor_distribution_rejected(self):
        with pytest.raises(ValueError):
            MDP(["s"], ["a"], {("s", "a"): {}})


class TestMDPQueries:
    def test_available_actions(self):
        mdp = _two_state_mdp()
        assert mdp.available_actions("s0") == ["a"]

    def test_absorbing_detection(self):
        mdp = MDP(["s", "t"], ["a"], {("s", "a"): {"t": 1.0}})
        assert not mdp.is_absorbing("s")
        assert mdp.is_absorbing("t")

    def test_expected_reward(self):
        mdp = MDP(
            ["s", "t", "u"],
            ["a"],
            {("s", "a"): {"t": 0.5, "u": 0.5}},
            {("s", "a", "t"): 1.0, ("s", "a", "u"): 0.0},
        )
        assert mdp.expected_reward("s", "a") == pytest.approx(0.5)

    def test_missing_reward_defaults_to_zero(self):
        mdp = MDP(["s"], ["a"], {("s", "a"): {"s": 1.0}})
        assert mdp.reward("s", "a", "s") == 0.0

    def test_sample_successor_respects_support(self):
        mdp = _two_state_mdp()
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert mdp.sample_successor("s0", "a", rng) == "s1"


class TestRandomMdp:
    def test_shapes(self):
        mdp = random_mdp(8, 3, branching=2, seed=1)
        assert mdp.n_states == 8
        assert mdp.n_actions == 3

    def test_deterministic_by_seed(self):
        a = random_mdp(5, 2, seed=42)
        b = random_mdp(5, 2, seed=42)
        assert a.transitions.keys() == b.transitions.keys()
        for key in a.transitions:
            assert a.transitions[key] == b.transitions[key]

    def test_absorbing_states_have_no_actions(self):
        mdp = random_mdp(6, 2, seed=0, absorbing=2)
        absorbing = [s for s in mdp.states if mdp.is_absorbing(s)]
        assert len(absorbing) == 2

    def test_rewards_in_unit_interval(self):
        mdp = random_mdp(6, 2, seed=5)
        assert all(0.0 <= r <= 1.0 for r in mdp.rewards.values())

    def test_all_absorbing_rejected(self):
        with pytest.raises(ValueError):
            random_mdp(3, 2, absorbing=3)
