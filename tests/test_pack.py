"""Tests for the big.LITTLE pack and the single-battery pack."""

import pytest

from repro.battery.cell import Cell
from repro.battery.chemistry import LCO, LMO, NCA
from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.battery.switch import BatterySelection


def _pack(mah=60.0, with_supercap=True):
    return BigLittlePack.from_chemistries(NCA, LMO, mah, with_supercap=with_supercap)


class TestBigLittlePack:
    def test_default_pair(self):
        pack = BigLittlePack()
        assert pack.big.chemistry is NCA
        assert pack.little.chemistry is LMO

    def test_initial_selection_big(self):
        assert _pack().active is BatterySelection.BIG

    def test_select_switches(self):
        pack = _pack()
        assert pack.select(BatterySelection.LITTLE, 0.0)
        assert pack.active is BatterySelection.LITTLE

    def test_select_depleted_redirects(self):
        pack = _pack(mah=5.0)
        while not pack.little.depleted:
            pack.little.draw_power(3.0, 10.0)
        pack.select(BatterySelection.LITTLE, 0.0)
        assert pack.active is BatterySelection.BIG

    def test_draw_serves_demand(self):
        pack = _pack()
        res = pack.draw(1.0, 2.0, 0.0)
        assert res.energy_j == pytest.approx(2.0)
        assert res.served_by is BatterySelection.BIG

    def test_idle_cell_rests_and_recovers(self):
        pack = _pack(mah=500.0)
        # Imbalance the big cell, then let it rest while LITTLE serves.
        while pack.big.available_amp_s > 50.0:
            pack.big.draw_power(5.0, 10.0)
        drained = pack.big.available_amp_s
        pack.select(BatterySelection.LITTLE, 0.0)
        for t in range(100):
            pack.draw(0.3, 5.0, float(t) * 5)
        assert pack.big.available_amp_s > drained + 5.0

    def test_comparator_failover(self):
        """When the active cell cannot carry the step, the switch
        facility hands the load to the other cell."""
        pack = _pack(mah=200.0)
        pack.select(BatterySelection.LITTLE, 0.0)
        steps = 0
        while not pack.little.depleted and steps < 100_000:
            pack.little.draw_power(4.0, 10.0)
            steps += 1
        res = pack.draw(1.0, 2.0, 100.0)
        assert res.energy_j == pytest.approx(2.0)
        assert res.served_by is BatterySelection.BIG

    def test_mid_step_failover_covers_deficit(self):
        pack = _pack(mah=500.0, with_supercap=False)
        pack.select(BatterySelection.LITTLE, 0.0)
        # Leave a whisker of available charge in LITTLE.
        while pack.little.available_amp_s > 0.4:
            pack.little.draw_power(3.0, 0.5)
        res = pack.draw(2.0, 2.0, 50.0)
        assert res.energy_j == pytest.approx(4.0, rel=0.02)

    def test_pack_nearly_exhausted_after_long_draw(self):
        pack = _pack(mah=30.0)
        t = 0.0
        while not pack.depleted and t < 100_000:
            pack.draw(1.0, 10.0, t)
            t += 10.0
        total = pack.big.capacity_amp_s + pack.little.capacity_amp_s
        remaining = pack.big.charge_amp_s + pack.little.charge_amp_s
        assert remaining < 0.02 * total

    def test_state_of_charge_averages_cells(self):
        pack = _pack()
        assert pack.state_of_charge == pytest.approx(1.0)
        pack.draw(2.0, 100.0, 0.0)
        assert pack.state_of_charge < 1.0

    def test_set_temperature_propagates(self):
        pack = _pack()
        pack.set_temperature(40.0)
        assert pack.big.temperature_c == 40.0
        assert pack.little.temperature_c == 40.0

    def test_switch_heat_routed_into_draw(self):
        pack = _pack()
        pack.select(BatterySelection.LITTLE, 0.0)
        res = pack.draw(0.5, 1.0, 0.0)
        # The switch's heat pulse shows up in the first draw after it.
        assert res.heat_j >= pack.switch.switch_heat_j * 0.9


class TestSingleBatteryPack:
    def test_from_chemistry(self):
        pack = SingleBatteryPack.from_chemistry(LCO, 100.0)
        assert pack.cell.chemistry is LCO
        assert pack.cell.capacity_mah == 100.0

    def test_draw(self):
        pack = SingleBatteryPack.from_chemistry(LCO, 500.0)
        res = pack.draw(1.0, 2.0, 0.0)
        assert res.energy_j == pytest.approx(2.0)
        assert res.served_by is None

    def test_draw_clamped_by_c_rate(self):
        # A tiny 2-star cell cannot carry 1 W; delivery is clamped.
        pack = SingleBatteryPack.from_chemistry(LCO, 100.0)
        res = pack.draw(1.0, 2.0, 0.0)
        assert res.energy_j < 2.0

    def test_nearly_exhausted_after_long_draw(self):
        pack = SingleBatteryPack.from_chemistry(LCO, 30.0)
        t = 0.0
        while not pack.depleted and t < 100_000:
            pack.draw(1.0, 10.0, t)
            t += 10.0
        assert pack.cell.charge_amp_s < 0.05 * pack.cell.capacity_amp_s

    def test_set_temperature(self):
        pack = SingleBatteryPack.from_chemistry(LCO, 100.0)
        pack.set_temperature(35.0)
        assert pack.cell.temperature_c == 35.0
