"""Tests for the fault-injection subsystem (repro.faults).

Pins the two contracts ISSUE 3 makes explicit:

* an **empty schedule** leaves every fault-capable wrapper bit-identical
  to the unwrapped component, so the nominal scenario pays nothing;
* a **seeded schedule** is deterministic -- the same seed + schedule
  produce an identical FaultEvent log (and identical physics) on every
  run.
"""

import math
import pickle

import pytest

from repro.battery.cell import Cell
from repro.battery.chemistry import NCA, pick_big_little
from repro.battery.switch import BatterySelection, BatterySwitch
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.faults import (
    CellFault,
    EventLog,
    FaultSchedule,
    FaultTrigger,
    FaultyBatterySwitch,
    FaultyCell,
    FaultyTEC,
    Observation,
    SensorFault,
    SensorTap,
    SupervisedPolicy,
    SwitchFault,
    TecFault,
)
from repro.sim.discharge import run_discharge_cycle
from repro.thermal.tec import TECUnit
from repro.workload.generators import GeekbenchWorkload, VideoWorkload
from repro.workload.traces import record_trace


def _runtime(*faults, seed=0):
    return FaultSchedule(faults=tuple(faults), seed=seed).runtime()


class TestTrigger:
    def test_window(self):
        t = FaultTrigger(start_s=10.0, end_s=20.0)
        assert not t.phase_active(5.0)
        assert t.phase_active(10.0)
        assert t.phase_active(19.9)
        assert not t.phase_active(20.0)

    def test_intermittent_duty(self):
        t = FaultTrigger(period_s=10.0, duty=0.3)
        assert t.phase_active(1.0)       # first 3 s of each cycle
        assert not t.phase_active(5.0)
        assert t.phase_active(11.0)

    def test_condition_latches(self):
        rt = _runtime(SwitchFault(
            trigger=FaultTrigger(when=("cpu_temp_c", ">=", 45.0)), stuck=True))
        fault = rt.runtimes[0]
        rt.observe(0.0, 30.0, 1.0, 1.0)
        assert not fault.active()
        rt.observe(1.0, 46.0, 1.0, 1.0)
        assert fault.active()
        # Cooling back down does not disarm a latched condition.
        rt.observe(2.0, 30.0, 1.0, 1.0)
        assert fault.active()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultTrigger(start_s=5.0, end_s=1.0)
        with pytest.raises(ValueError):
            FaultTrigger(duty=0.0)
        with pytest.raises(ValueError):
            FaultTrigger(when=("cpu_temp_c", "!=", 1.0))

    def test_edges_logged_once_per_transition(self):
        rt = _runtime(TecFault(
            trigger=FaultTrigger(start_s=10.0, end_s=20.0), stuck_off=True))
        fault = rt.runtimes[0]
        for t in (0.0, 5.0, 12.0, 15.0, 25.0, 30.0):
            rt.observe(t, 30.0, 1.0, 1.0)
            fault.active()
        kinds = [(e.kind, e.time_s) for e in rt.log.events]
        assert kinds == [("injected", 12.0), ("injection-cleared", 25.0)]


class TestSpecValidation:
    def test_tec_cannot_be_stuck_both_ways(self):
        with pytest.raises(ValueError):
            TecFault(stuck_off=True, stuck_on=True)

    def test_sensor_probabilities_bounded(self):
        with pytest.raises(ValueError):
            SensorFault(dropout_probability=1.5)

    def test_cell_fault_names(self):
        with pytest.raises(ValueError):
            CellFault(cell="medium")

    def test_schedule_label(self):
        assert FaultSchedule().label == "nominal"
        assert FaultSchedule(faults=(SwitchFault(),)).label == "faults1"
        assert FaultSchedule(name="x").label == "x"
        assert not FaultSchedule()
        assert FaultSchedule(faults=(SwitchFault(),))


class TestEmptyScheduleBitIdentity:
    """Fault-capable wrappers with no faults == the plain components."""

    def test_switch_identical_op_sequence(self):
        plain = BatterySwitch(min_dwell_s=3.0)
        wrapped = FaultyBatterySwitch(min_dwell_s=3.0)
        seq = [(BatterySelection.LITTLE, 0.0), (BatterySelection.BIG, 1.0),
               (BatterySelection.BIG, 4.0), (BatterySelection.LITTLE, 8.0)]
        for target, t in seq:
            assert plain.request(target, t) == wrapped.request(target, t)
        assert plain.events == wrapped.events
        assert plain.energy_spent_j == wrapped.energy_spent_j
        assert wrapped.dropped_requests == 0

    def test_tec_identical_flows(self):
        plain = TECUnit()
        wrapped = FaultyTEC()
        for on in (True, False, True):
            plain.set_on(on)
            wrapped.set_on(on)
            assert plain.is_on == wrapped.is_on
            assert (plain.heat_flows(1.0, 40.0, 30.0)
                    == wrapped.heat_flows(1.0, 40.0, 30.0))
            assert plain.power_w() == wrapped.power_w()

    def test_cell_identical_draw_sequence(self):
        plain = Cell(NCA, capacity_mah=100.0)
        wrapped = FaultyCell(NCA, capacity_mah=100.0)
        for power, dt in [(1.0, 30.0), (0.0, 60.0), (2.5, 10.0)]:
            a = plain.draw_power(power, dt)
            b = wrapped.draw_power(power, dt)
            assert a == b
        assert plain.state_of_charge == wrapped.state_of_charge

    def test_sensor_tap_is_identity(self):
        tap = SensorTap("cpu_temp", ())
        assert tap.read(37.5) == 37.5

    def test_supervised_policy_run_identical(self):
        import dataclasses
        trace = record_trace(VideoWorkload(seed=3), 120.0)
        bare = run_discharge_cycle(DualPolicy(capacity_mah=40.0), trace,
                                   max_duration_s=600.0)
        sup = run_discharge_cycle(
            SupervisedPolicy(inner=DualPolicy(capacity_mah=40.0)),
            trace, max_duration_s=600.0)
        assert sup.fault_events == ()
        assert sup.final_mode == "normal"
        # Bit-identical physics: only the name and bookkeeping differ.
        a = dataclasses.replace(bare, policy_name="", wall_time_s=0.0)
        b = dataclasses.replace(sup, policy_name="", wall_time_s=0.0)
        assert pickle.dumps(a) == pickle.dumps(b)


class TestDeterminism:
    """Same seed + schedule => identical behaviour and event log."""

    SCHEDULE = FaultSchedule(
        faults=(
            SwitchFault(trigger=FaultTrigger(start_s=30.0),
                        drop_probability=0.5),
            TecFault(trigger=FaultTrigger(start_s=60.0), stuck_off=True),
            SensorFault(channel="cpu_temp", trigger=FaultTrigger(start_s=20.0),
                        noise_std=1.5, dropout_probability=0.2,
                        nan_probability=0.05),
            CellFault(cell="big", trigger=FaultTrigger(start_s=40.0),
                      leak_a=0.02),
        ),
        seed=7,
        name="everything",
    )

    def _run(self):
        trace = record_trace(GeekbenchWorkload(seed=2), 180.0)
        policy = SupervisedPolicy(inner=CapmanPolicy(capacity_mah=200.0),
                                  schedule=self.SCHEDULE)
        return run_discharge_cycle(policy, trace, max_duration_s=600.0)

    def test_event_log_reproduces_exactly(self):
        a = self._run()
        b = self._run()
        assert a.fault_events == b.fault_events
        assert len(a.fault_events) >= 1
        assert a.service_time_s == b.service_time_s
        assert a.energy_delivered_j == b.energy_delivered_j
        assert a.final_mode == b.final_mode
        assert a.mode_transitions == b.mode_transitions

    def test_different_seed_differs(self):
        import dataclasses
        trace = record_trace(GeekbenchWorkload(seed=2), 180.0)
        runs = []
        for seed in (7, 8):
            sched = dataclasses.replace(self.SCHEDULE, seed=seed)
            policy = SupervisedPolicy(inner=CapmanPolicy(capacity_mah=200.0),
                                      schedule=sched)
            runs.append(run_discharge_cycle(policy, trace,
                                            max_duration_s=600.0))
        # The stochastic faults (drops, noise) should diverge somewhere.
        assert (runs[0].fault_events != runs[1].fault_events
                or runs[0].energy_delivered_j != runs[1].energy_delivered_j)

    def test_schedule_is_picklable_and_hashable_config(self):
        blob = pickle.dumps(self.SCHEDULE)
        assert pickle.loads(blob) == self.SCHEDULE


class TestInjectors:
    def test_stuck_switch_refuses_and_counts(self):
        rt = _runtime(SwitchFault(stuck=True))
        sw = FaultyBatterySwitch(faults=tuple(rt.runtimes))
        assert not sw.request(BatterySelection.LITTLE, 1.0)
        assert sw.active is BatterySelection.BIG
        assert sw.switch_count == 0
        assert sw.energy_spent_j == 0.0
        assert sw.dropped_requests == 1

    def test_contact_growth_raises_cost(self):
        rt = _runtime(SwitchFault(contact_growth_j=0.05))
        sw = FaultyBatterySwitch(switch_energy_j=0.1,
                                 faults=tuple(rt.runtimes))
        sw.request(BatterySelection.LITTLE, 0.0)
        assert sw.energy_spent_j == pytest.approx(0.1)
        sw.request(BatterySelection.BIG, 1.0)
        # The second switch is billed at the grown cost.
        assert sw.energy_spent_j == pytest.approx(0.1 + 0.15)

    def test_tec_stuck_off_ignores_commands(self):
        rt = _runtime(TecFault(stuck_off=True))
        tec = FaultyTEC(faults=tuple(rt.runtimes))
        tec.set_on(True)
        assert tec.commanded is True
        assert tec.is_on is False
        assert tec.heat_flows(1.0, 50.0, 30.0) == {}

    def test_tec_derate_shrinks_pumping_not_drive(self):
        rt = _runtime(TecFault(derate=0.5))
        tec = FaultyTEC(faults=tuple(rt.runtimes))
        healthy = TECUnit()
        tec.set_on(True)
        healthy.set_on(True)
        sick = tec.heat_flows(1.0, 50.0, 30.0)
        good = healthy.heat_flows(1.0, 50.0, 30.0)
        assert sick[tec.cold_node] == pytest.approx(
            0.5 * good[tec.cold_node])
        # Hot side still carries the full electrical drive power.
        assert sick[tec.hot_node] == pytest.approx(
            -sick[tec.cold_node] + tec.drive_power_w)

    def test_cell_leak_drains_faster(self):
        rt = _runtime(CellFault(cell="big", leak_a=0.05))
        leaky = FaultyCell(NCA, capacity_mah=100.0, faults=tuple(rt.runtimes))
        healthy = Cell(NCA, capacity_mah=100.0)
        for _ in range(20):
            leaky.draw_power(0.5, 30.0)
            healthy.draw_power(0.5, 30.0)
        assert leaky.state_of_charge < healthy.state_of_charge

    def test_sensor_nan_and_dropout(self):
        rt = _runtime(SensorFault(channel="cpu_temp", nan_probability=1.0))
        tap = SensorTap("cpu_temp", tuple(rt.sensor_runtimes("cpu_temp")))
        assert math.isnan(tap.read(40.0))

        rt2 = _runtime(SensorFault(channel="cpu_temp",
                                   dropout_probability=1.0))
        tap2 = SensorTap("cpu_temp", tuple(rt2.sensor_runtimes("cpu_temp")))
        first = tap2.read(40.0)   # nothing held yet: passes through
        assert first == 40.0 or math.isnan(first)

    def test_sensor_bias(self):
        rt = _runtime(SensorFault(channel="soc_big", bias=-0.2))
        tap = SensorTap("soc_big", tuple(rt.sensor_runtimes("soc_big")))
        assert tap.read(0.8) == pytest.approx(0.6)


class TestEventLog:
    def test_counts_and_iteration(self):
        log = EventLog()
        log.record_fault(1.0, "tec", "injected")
        log.record_recovery(2.0, "tec", "cleared")
        assert log.fault_count == 1
        assert log.recovery_count == 1
        assert len(log) == 2
        assert [e.time_s for e in log] == [1.0, 2.0]
        snap = log.events
        log.record_fault(3.0, "switch", "injected")
        assert len(snap) == 2  # snapshot is immutable


class TestSupervisedPackWiring:
    def test_pack_components_wrapped_only_when_faulty(self):
        sched = FaultSchedule(faults=(SwitchFault(stuck=True),
                                      CellFault(cell="little", leak_a=0.01)))
        policy = SupervisedPolicy(inner=CapmanPolicy(capacity_mah=100.0),
                                  schedule=sched)
        pack = policy.build_pack()
        assert isinstance(pack.switch, FaultyBatterySwitch)
        assert isinstance(pack.little, FaultyCell)
        assert not isinstance(pack.big, FaultyCell)

        nominal = SupervisedPolicy(inner=CapmanPolicy(capacity_mah=100.0))
        pack2 = nominal.build_pack()
        assert not isinstance(pack2.switch, FaultyBatterySwitch)
        assert not isinstance(pack2.big, FaultyCell)
