"""Chaos-sweep harness tests -- also the CI ``chaos-smoke`` target.

The smoke contract: a tiny grid crossing switch-stuck + TEC-dead +
sensor-dropout scenarios with a policy/trace grid runs to completion,
the degraded modes engage where they should, and no cell aborts the
grid.
"""

import pytest

from repro.capman.controller import CapmanPolicy
from repro.faults import MODE_SINGLE_BATTERY, MODE_THERMAL_FALLBACK
from repro.sim.chaos import (
    ChaosSpec,
    FaultScenario,
    NOMINAL_SCENARIO,
    run_chaos,
    standard_scenarios,
)
from repro.sim.sweep import ScenarioRunner
from repro.faults.schedule import FaultSchedule
from repro.workload.generators import GeekbenchWorkload
from repro.workload.traces import record_trace


@pytest.fixture(scope="module")
def report():
    trace = record_trace(GeekbenchWorkload(seed=2), 600.0)
    spec = ChaosSpec(
        policies={"CAPMAN": CapmanPolicy()},
        traces={"geek": trace},
        scenarios=standard_scenarios(start_s=60.0),
        max_duration_s=1500.0,
    )
    return run_chaos(spec)


class TestChaosSmoke:
    def test_grid_completes_without_aborts(self, report):
        # 1 policy x 1 trace x (nominal + 3 fault scenarios).
        assert len(report.rows) == 4
        assert report.survival_rate == 1.0
        assert all(r.error == "" for r in report.rows)

    def test_degraded_modes_engage(self, report):
        assert report.row("CAPMAN", "geek",
                          "switch-stuck").final_mode == MODE_SINGLE_BATTERY
        assert report.row("CAPMAN", "geek",
                          "tec-dead").final_mode == MODE_THERMAL_FALLBACK

    def test_nominal_baseline_clean(self, report):
        nominal = report.row("CAPMAN", "geek", "nominal")
        assert nominal.final_mode == "normal"
        assert nominal.fault_event_count == 0
        assert nominal.service_delta_s == 0.0

    def test_deltas_computed_against_nominal(self, report):
        nominal = report.row("CAPMAN", "geek", "nominal")
        for row in report.rows:
            if row.scenario == "nominal":
                continue
            assert row.service_delta_s == pytest.approx(
                row.service_time_s - nominal.service_time_s)
            assert row.thermal_delta_s == pytest.approx(
                row.time_above_threshold_s - nominal.time_above_threshold_s)

    def test_fault_scenarios_log_events(self, report):
        for name in ("switch-stuck", "tec-dead", "sensor-dropout"):
            assert report.row("CAPMAN", "geek", name).fault_event_count > 0

    def test_summary_renders(self, report):
        text = report.summary()
        assert "switch-stuck" in text
        assert "tec-dead" in text
        assert "nominal" in text

    def test_by_scenario(self, report):
        rows = report.by_scenario("tec-dead")
        assert len(rows) == 1 and rows[0].scenario == "tec-dead"
        with pytest.raises(KeyError):
            report.row("CAPMAN", "geek", "no-such-scenario")


class TestChaosSpec:
    def test_nominal_always_included(self):
        trace = record_trace(GeekbenchWorkload(seed=2), 60.0)
        spec = ChaosSpec(policies={"P": CapmanPolicy()},
                         traces={"t": trace}, scenarios=[])
        names = [s.name for s in spec.all_scenarios()]
        assert names == ["nominal"]
        sweep = spec.to_sweep()
        assert list(sweep.policies) == ["P@nominal"]

    def test_scenario_name_rejects_separator(self):
        with pytest.raises(ValueError):
            FaultScenario("bad@name", FaultSchedule())

    def test_wrapped_policy_keys(self):
        trace = record_trace(GeekbenchWorkload(seed=2), 60.0)
        spec = ChaosSpec(policies={"P": CapmanPolicy()},
                         traces={"t": trace},
                         scenarios=standard_scenarios())
        keys = set(spec.to_sweep().policies)
        assert keys == {"P@nominal", "P@switch-stuck", "P@tec-dead",
                        "P@sensor-dropout"}

    def test_chaos_results_cacheable(self, tmp_path):
        trace = record_trace(GeekbenchWorkload(seed=2), 120.0)
        spec = ChaosSpec(policies={"P": CapmanPolicy()},
                         traces={"t": trace},
                         scenarios=standard_scenarios(start_s=30.0),
                         max_duration_s=300.0)
        cold = run_chaos(spec, ScenarioRunner(workers=1, cache=tmp_path))
        warm = run_chaos(spec, ScenarioRunner(workers=1, cache=tmp_path))
        assert cold.sweep.stats.cache_hits == 0
        assert warm.sweep.stats.cache_hits == len(cold.rows)
        assert warm.rows == cold.rows
