"""Property tests for the bit-identical checkpoint/restore contract.

The contract under test, for every stateful component: take a
component, advance it ``j`` steps, ``snapshot`` it, build a *fresh*
component from the same constructor arguments, ``restore`` the
snapshot into it, then advance both ``k`` more steps -- every
observable (and the full ``state_dict``) must be *bit-identical*, not
approximately equal.  Hypothesis drives the step counts and inputs;
pickled state dicts are the equality oracle because protocol-4 pickle
round-trips IEEE doubles exactly.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.cell import Cell
from repro.battery.chemistry import CHEMISTRIES, LMO, NCA
from repro.battery.pack import BigLittlePack
from repro.capman.baselines import DualPolicy, PracticePolicy
from repro.core.mdp import random_mdp
from repro.core.online import OnlineScheduler
from repro.device.phone import DemandSlice, Phone
from repro.durability.budget import BudgetExceededError, RunBudget
from repro.durability.snapshot import Checkpointer, SimCheckpoint
from repro.durability.state import StateMismatchError
from repro.sim.discharge import run_discharge_cycle
from repro.sim.daily import run_days
from repro.thermal.rc_network import phone_thermal_network
from repro.workload.generators import PCMarkWorkload, VideoWorkload
from repro.workload.traces import record_trace

_CHEM = st.sampled_from(list(CHEMISTRIES.values()))


def _state_bytes(component) -> bytes:
    return pickle.dumps(component.state_dict(), protocol=4)


# ----------------------------------------------------------------------
# Cell (KiBaM wells + transient + aging throughput)
# ----------------------------------------------------------------------
class TestCellRestore:
    @settings(max_examples=40, deadline=None)
    @given(
        chem=_CHEM,
        powers=st.lists(st.floats(0.0, 3.0), min_size=1, max_size=12),
        split=st.integers(1, 11),
        dt=st.floats(0.5, 30.0),
    )
    def test_restore_then_run_is_bit_identical(self, chem, powers, split, dt):
        split = min(split, len(powers))
        prefix, suffix = powers[:split], powers[split:]

        original = Cell(chem, capacity_mah=80.0)
        for p in prefix:
            original.draw_power(p, dt)
        snapshot = original.state_dict()

        restored = Cell(chem, capacity_mah=80.0)
        restored.load_state_dict(snapshot)
        assert _state_bytes(restored) == pickle.dumps(snapshot, protocol=4)

        for p in suffix:
            a = original.draw_power(p, dt)
            b = restored.draw_power(p, dt)
            assert pickle.dumps(a) == pickle.dumps(b)
        assert _state_bytes(original) == _state_bytes(restored)

    def test_wrong_chemistry_still_loads_wells_not_config(self):
        """state_dict carries *state*; config mismatches surface as a
        class/shape mismatch only when there is one (same class here)."""
        a = Cell(NCA, capacity_mah=80.0)
        a.draw_power(1.0, 60.0)
        b = Cell(NCA, capacity_mah=80.0)
        b.load_state_dict(a.state_dict())
        assert b.charge_amp_s == a.charge_amp_s

    def test_cross_class_rejected(self):
        cell = Cell(NCA, capacity_mah=80.0)

        class NotACell:
            pass

        with pytest.raises(StateMismatchError):
            pack = BigLittlePack(big=Cell(NCA, 80.0), little=Cell(LMO, 80.0))
            pack.load_state_dict(cell.state_dict())


# ----------------------------------------------------------------------
# ThermalNetwork
# ----------------------------------------------------------------------
class TestThermalRestore:
    @settings(max_examples=30, deadline=None)
    @given(
        heats=st.lists(st.floats(0.0, 2.0), min_size=2, max_size=10),
        split=st.integers(1, 9),
        dt=st.floats(0.5, 10.0),
    )
    def test_restore_then_step_is_bit_identical(self, heats, split, dt):
        split = min(split, len(heats) - 1)
        original = phone_thermal_network(ambient_c=25.0)
        for q in heats[:split]:
            original.step(dt, {"cpu": q})
        snapshot = original.state_dict()

        restored = phone_thermal_network(ambient_c=25.0)
        restored.load_state_dict(snapshot)

        for q in heats[split:]:
            ta = original.step(dt, {"cpu": q})
            tb = restored.step(dt, {"cpu": q})
            assert ta == tb  # exact float equality, no tolerance
        assert original.temperatures() == restored.temperatures()

    def test_node_set_mismatch_rejected(self):
        net = phone_thermal_network()
        from repro.thermal.rc_network import ThermalNetwork, ThermalNode

        other = ThermalNetwork()
        other.add_node(ThermalNode("cpu", 10.0, 25.0))
        with pytest.raises(StateMismatchError):
            other.load_state_dict(net.state_dict())


# ----------------------------------------------------------------------
# Phone (pack + thermal + TEC + FSM clock, composed)
# ----------------------------------------------------------------------
def _fresh_phone() -> Phone:
    pack = BigLittlePack(big=Cell(NCA, capacity_mah=60.0),
                         little=Cell(LMO, capacity_mah=60.0))
    return Phone(pack=pack, ambient_c=25.0)


class TestPhoneRestore:
    @settings(max_examples=20, deadline=None)
    @given(
        utils=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=10),
        split=st.integers(1, 9),
    )
    def test_restore_then_step_is_bit_identical(self, utils, split):
        split = min(split, len(utils) - 1)
        original = _fresh_phone()
        for u in utils[:split]:
            original.step(DemandSlice(cpu_util=u, screen_on=True), 2.0)
        snapshot = original.state_dict()

        restored = _fresh_phone()
        restored.load_state_dict(snapshot)

        for u in utils[split:]:
            demand = DemandSlice(cpu_util=u, screen_on=True,
                                 wifi_kbps=10.0 * (u % 7))
            a = original.step(demand, 2.0)
            b = restored.step(demand, 2.0)
            assert pickle.dumps(a) == pickle.dumps(b)
        assert _state_bytes(original) == _state_bytes(restored)


# ----------------------------------------------------------------------
# Workload generators (RNG state via seed + position fast-forward)
# ----------------------------------------------------------------------
class TestSegmentStreamRestore:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        prefix=st.integers(0, 30),
        suffix=st.integers(1, 20),
        cls=st.sampled_from([VideoWorkload, PCMarkWorkload]),
    )
    def test_restore_then_generate_is_bit_identical(self, seed, prefix,
                                                    suffix, cls):
        original = cls(seed=seed).stream()
        for _ in range(prefix):
            next(original)
        snapshot = original.state_dict()

        restored = cls(seed=seed).stream()
        restored.load_state_dict(snapshot)

        for _ in range(suffix):
            assert pickle.dumps(next(original)) == pickle.dumps(next(restored))

    def test_seed_mismatch_rejected(self):
        a = VideoWorkload(seed=1).stream()
        b = VideoWorkload(seed=2).stream()
        with pytest.raises(StateMismatchError):
            b.load_state_dict(a.state_dict())


# ----------------------------------------------------------------------
# Scheduler memo/decision caches
# ----------------------------------------------------------------------
class TestSchedulerRestore:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        picks=st.lists(st.integers(0, 7), min_size=2, max_size=12),
        split=st.integers(1, 11),
    )
    def test_restore_preserves_decisions_and_caches(self, seed, picks, split):
        split = min(split, len(picks) - 1)
        mdp = random_mdp(8, 3, branching=2, seed=seed, absorbing=1)

        original = OnlineScheduler(mdp, rho=0.8)
        for i in picks[:split]:
            original.decide(mdp.states[i])
        snapshot = original.state_dict()

        restored = OnlineScheduler(mdp, rho=0.8)
        restored.load_state_dict(snapshot)
        # The snapshot carries the full decision history verbatim.
        assert restored.decisions == original.decisions

        def deterministic(records):
            # Latency is wall clock; the decision itself is the contract.
            return [(r.state, r.action, r.source) for r in records]

        for i in picks[split:]:
            a = original.decide(mdp.states[i])
            b = restored.decide(mdp.states[i])
            assert (a.action, a.source) == (b.action, b.source)
        assert deterministic(original.decisions) == deterministic(restored.decisions)
        assert pickle.dumps(original.solution) == pickle.dumps(restored.solution)


# ----------------------------------------------------------------------
# Full harness: interrupt-at-k resume == uninterrupted run
# ----------------------------------------------------------------------
def _result_bytes(result) -> bytes:
    result.wall_time_s = 0.0  # the only nondeterministic field
    return pickle.dumps(result, protocol=4)


@pytest.fixture(scope="module")
def short_trace():
    return record_trace(VideoWorkload(seed=5), 120.0)


class TestDischargeResume:
    @settings(max_examples=8, deadline=None)
    @given(
        k=st.integers(1, 120),
        policy_cls=st.sampled_from([DualPolicy, PracticePolicy]),
    )
    def test_interrupted_resume_matches_uninterrupted(self, k, policy_cls,
                                                      short_trace):
        kwargs = dict(profile=None, control_dt=2.0, max_duration_s=900.0)
        kwargs.pop("profile")

        reference = run_discharge_cycle(
            policy_cls(capacity_mah=40.0), short_trace, **kwargs)

        ck = Checkpointer()
        try:
            run_discharge_cycle(
                policy_cls(capacity_mah=40.0), short_trace,
                checkpointer=ck, budget=RunBudget(max_steps=k), **kwargs)
        except BudgetExceededError as exc:
            resumed = run_discharge_cycle(
                policy_cls(capacity_mah=40.0), short_trace,
                resume_from=exc.checkpoint, **kwargs)
        else:
            # Budget larger than the whole run: nothing to resume.
            return
        assert _result_bytes(resumed) == _result_bytes(reference)

    def test_checkpoint_fingerprint_guards_config(self, short_trace):
        ck = Checkpointer()
        try:
            run_discharge_cycle(DualPolicy(capacity_mah=40.0), short_trace,
                                control_dt=2.0, max_duration_s=900.0,
                                checkpointer=ck, budget=RunBudget(max_steps=20))
        except BudgetExceededError as exc:
            ckpt = exc.checkpoint
        with pytest.raises(StateMismatchError):
            run_discharge_cycle(DualPolicy(capacity_mah=40.0), short_trace,
                                control_dt=4.0,  # different config
                                max_duration_s=900.0, resume_from=ckpt)

    def test_corrupt_checkpoint_rejected(self, short_trace, tmp_path):
        path = tmp_path / "cycle.ckpt"
        ck = Checkpointer(path)
        try:
            run_discharge_cycle(DualPolicy(capacity_mah=40.0), short_trace,
                                control_dt=2.0, max_duration_s=900.0,
                                checkpointer=ck, budget=RunBudget(max_steps=20))
        except BudgetExceededError:
            pass
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        assert SimCheckpoint.try_load(path) is None  # detected, not restored


class TestDailyResume:
    def test_interrupted_resume_matches_uninterrupted(self, short_trace):
        kwargs = dict(n_days=3, control_dt=2.0, max_cycle_s=3600.0)
        reference = run_days(DualPolicy(capacity_mah=40.0), short_trace,
                             **kwargs)

        ck = Checkpointer()
        steps_per_day = reference.step_count // 3
        try:
            run_days(DualPolicy(capacity_mah=40.0), short_trace,
                     checkpointer=ck,
                     budget=RunBudget(max_steps=steps_per_day + 1), **kwargs)
        except BudgetExceededError as exc:
            resumed = run_days(DualPolicy(capacity_mah=40.0), short_trace,
                               resume_from=exc.checkpoint, **kwargs)
        assert _result_bytes(resumed) == _result_bytes(reference)


class TestSupervisedChaosResume:
    def test_faulty_supervised_resume_matches_uninterrupted(self, short_trace):
        """The hardest composition: fault runtimes (RNG mid-stream),
        sensor taps, event log and the supervisor mode machine all
        restore together, bit-identically."""
        from repro.faults.schedule import (
            FaultSchedule, FaultTrigger, SensorFault, SwitchFault, TecFault,
        )
        from repro.faults.supervisor import SupervisedPolicy

        schedule = FaultSchedule(
            faults=(
                SwitchFault(trigger=FaultTrigger(start_s=30.0),
                            drop_probability=0.3),
                TecFault(trigger=FaultTrigger(start_s=60.0), stuck_off=True),
                SensorFault(trigger=FaultTrigger(start_s=20.0),
                            channel="cpu_temp", dropout_probability=0.2,
                            noise_std=0.5),
            ),
            seed=11, name="mix")

        def make_policy():
            return SupervisedPolicy(inner=DualPolicy(capacity_mah=40.0),
                                    schedule=pickle.loads(pickle.dumps(schedule)))

        kwargs = dict(control_dt=2.0, max_duration_s=900.0)
        reference = run_discharge_cycle(make_policy(), short_trace, **kwargs)
        assert reference.fault_events, "scenario must actually inject faults"

        ck = Checkpointer()
        try:
            run_discharge_cycle(make_policy(), short_trace, checkpointer=ck,
                                budget=RunBudget(max_steps=60), **kwargs)
        except BudgetExceededError as exc:
            resumed = run_discharge_cycle(make_policy(), short_trace,
                                          resume_from=exc.checkpoint, **kwargs)
        assert _result_bytes(resumed) == _result_bytes(reference)
        assert resumed.fault_events == reference.fault_events
        assert resumed.final_mode == reference.final_mode
