"""Sweep-engine throughput: the Figure 15 grid, serial vs fanned out.

Runs a scaled-down Figure 15 style grid (CAPMAN and Dual across the
three phone profiles) three ways and emits ``BENCH_sim.json``:

1. cold serial (``workers=1``, empty cache) -- the baseline;
2. cold parallel (``workers=os.cpu_count()``, empty cache) -- results
   must be byte-identical to serial, cell by cell;
3. warm re-run (cache populated by run 1) -- the engine's incremental
   mode, which only recomputes changed cells; an unchanged spec is
   pure cache hits.

Acceptance: the engine re-runs the grid at least 4x faster than the
cold serial baseline (via the cache; on multi-core hosts the parallel
path must additionally beat serial outright), parallel equals serial
exactly, and the hot-loop work keeps serial throughput above a floor
in control steps per second.
"""

import json
import os
import pickle
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import PHONES
from repro.sim.sweep import ScenarioRunner, SweepSpec
from repro.workload.generators import EtaStaticWorkload
from repro.workload.traces import record_trace

#: Scaled grid: full paper capacity makes this minutes-long; the
#: engine comparison only needs identical work across runs.
CELL_MAH = 400.0
WINDOW_S = 1.0 * 3600.0
TRACE_S = 600.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Serial steps/sec floor the hot-loop work must hold (conservative:
#: CI machines are slow; a laptop does several tens of thousands).
MIN_STEPS_PER_SEC = 2000.0


def _grid_spec():
    trace = record_trace(EtaStaticWorkload(0.5, seed=1), TRACE_S)
    return SweepSpec(
        policies={
            "CAPMAN": CapmanPolicy(capacity_mah=CELL_MAH),
            "Dual": DualPolicy(capacity_mah=CELL_MAH),
        },
        traces={"eta-50%": trace},
        profiles=dict(PHONES),
        control_dts=(2.0,),
        max_duration_s=WINDOW_S,
    )


def _cell_bytes(results):
    return [pickle.dumps(r) for r in results]


def _measure(tmp_path):
    spec = _grid_spec()
    cache_dir = tmp_path / "sweep-cache"

    serial = ScenarioRunner(workers=1, cache=cache_dir).run(spec)
    parallel = ScenarioRunner(workers=0).run(spec)  # 0 = cpu_count, no cache
    warm = ScenarioRunner(workers=1, cache=cache_dir).run(spec)
    return spec, serial, parallel, warm


def test_sim_throughput(benchmark, tmp_path):
    spec, serial, parallel, warm = benchmark.pedantic(
        lambda: _measure(tmp_path), rounds=1, iterations=1
    )

    s, p, w = serial.stats, parallel.stats, warm.stats
    speedup_parallel = s.total_wall_s / max(p.total_wall_s, 1e-9)
    speedup_warm = s.total_wall_s / max(w.total_wall_s, 1e-9)
    rows = [
        ["serial cold", 1, s.total_wall_s, s.steps_per_sec, s.cache_hits],
        ["parallel cold", p.workers, p.total_wall_s, p.steps_per_sec,
         p.cache_hits],
        ["serial warm (cache)", 1, w.total_wall_s, float("nan"),
         w.cache_hits],
    ]
    print()
    print(format_table(
        ["run", "workers", "wall (s)", "steps/s", "cache hits"],
        rows,
        title="Sweep engine -- Figure 15 grid, serial vs parallel vs cached",
    ))

    payload = {
        "grid": {
            "cells": len(spec),
            "policies": list(spec.policies),
            "profiles": list(spec.profiles),
            "cell_mah": CELL_MAH,
            "window_s": WINDOW_S,
        },
        "serial": s.as_dict(),
        "parallel": p.as_dict(),
        "warm": w.as_dict(),
        "speedup_parallel": speedup_parallel,
        "speedup_warm": speedup_warm,
        "cpu_count": os.cpu_count(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {BENCH_PATH}")

    # Parallel results are byte-identical to serial, cell by cell.
    assert _cell_bytes(serial.results) == _cell_bytes(parallel.results)
    # The warm run serves every cell from cache, with identical payloads.
    assert w.cache_hits == len(spec) and w.cells_computed == 0
    assert _cell_bytes(warm.results) == _cell_bytes(serial.results)

    # Acceptance: re-running the grid through the engine is >= 4x the
    # cold serial wall clock (pure cache hits recompute nothing)...
    assert speedup_warm >= 4.0, payload
    # ...and on multi-core hosts the process fan-out also has to beat
    # serial outright on equal (all-cold) work.
    if (os.cpu_count() or 1) >= 4:
        assert speedup_parallel >= 2.0, payload

    # Hot-loop floor: the step loop sustains real throughput serially.
    assert s.steps_per_sec >= MIN_STEPS_PER_SEC, s.as_dict()
