"""Figure 14: big.LITTLE activation ratio vs temperature reduction.

For each workload, runs CAPMAN with and without the TEC (time-capped)
and reports the LITTLE activation share alongside the peak-temperature
reduction the TEC achieves over the passive cooling plate.  The paper
observes the two go together: workloads that drive the LITTLE battery
hard are the ones where active cooling removes the most heat.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.capman.controller import CapmanPolicy
from repro.sim.discharge import run_discharge_cycle

from conftest import CONTROL_DT, EVAL_CELL_MAH, run_cycle, store as _store

WINDOW_S = 3.0 * 3600.0
WORKLOADS = ("Geekbench", "PCMark", "Video", "eta-80%")


def _pair(store, workload_name):
    trace = store.trace(workload_name)
    with_tec = run_cycle(CapmanPolicy(capacity_mah=EVAL_CELL_MAH), trace,
                         max_duration_s=WINDOW_S)
    # The same policy with the TEC disabled: passive cooling plate only.
    without = run_cycle(
        CapmanPolicy(capacity_mah=EVAL_CELL_MAH, uses_tec=False,
                     name="CAPMAN-noTEC"),
        trace, max_duration_s=WINDOW_S)
    return with_tec, without


def test_fig14_ratio_vs_cooling(benchmark, store):
    results = benchmark.pedantic(
        lambda: {w: _pair(store, w) for w in WORKLOADS}, rounds=1, iterations=1
    )

    rows = []
    for name, (with_tec, without) in results.items():
        reduction = without.max_cpu_temp_c - with_tec.max_cpu_temp_c
        rows.append([name, with_tec.little_ratio, reduction,
                     with_tec.max_cpu_temp_c, without.max_cpu_temp_c])
    print()
    print(format_table(
        ["workload", "LITTLE ratio", "temp reduction (K)",
         "max T with TEC", "max T no TEC"],
        rows,
        title="Figure 14 -- big.LITTLE ratio vs temperature reduction",
    ))

    by_name = {r[0]: r for r in rows}
    # The TEC never makes things hotter, and it visibly cools the
    # hot-spot-producing workloads.
    for name, row in by_name.items():
        assert row[2] >= -0.5, name
    assert by_name["Geekbench"][2] > 0.8

    # The paper's correlation: the heavy (hot, LITTLE-leaning) loads
    # see more reduction than the light Video load.
    assert by_name["Geekbench"][2] >= by_name["Video"][2]
