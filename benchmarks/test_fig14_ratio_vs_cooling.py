"""Figure 14: big.LITTLE activation ratio vs temperature reduction.

For each workload, runs CAPMAN with and without the TEC (time-capped)
and reports the LITTLE activation share alongside the peak-temperature
reduction the TEC achieves over the passive cooling plate.  The paper
observes the two go together: workloads that drive the LITTLE battery
hard are the ones where active cooling removes the most heat.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.capman.controller import CapmanPolicy

from conftest import CONTROL_DT, EVAL_CELL_MAH, run_sweep, store as _store

WINDOW_S = 3.0 * 3600.0
WORKLOADS = ("Geekbench", "PCMark", "Video", "eta-80%")


def _pairs(store):
    # One sweep over (CAPMAN, CAPMAN-noTEC) x workloads; the noTEC
    # variant is the same policy on the passive cooling plate only.
    sweep = run_sweep(
        {
            "CAPMAN": CapmanPolicy(capacity_mah=EVAL_CELL_MAH),
            "CAPMAN-noTEC": CapmanPolicy(capacity_mah=EVAL_CELL_MAH,
                                         uses_tec=False, name="CAPMAN-noTEC"),
        },
        {w: store.trace(w) for w in WORKLOADS},
        max_duration_s=WINDOW_S,
    )
    return {
        w: (sweep.get(policy="CAPMAN", trace=w),
            sweep.get(policy="CAPMAN-noTEC", trace=w))
        for w in WORKLOADS
    }


def test_fig14_ratio_vs_cooling(benchmark, store):
    results = benchmark.pedantic(lambda: _pairs(store), rounds=1, iterations=1)

    rows = []
    for name, (with_tec, without) in results.items():
        reduction = without.max_cpu_temp_c - with_tec.max_cpu_temp_c
        rows.append([name, with_tec.little_ratio, reduction,
                     with_tec.max_cpu_temp_c, without.max_cpu_temp_c])
    print()
    print(format_table(
        ["workload", "LITTLE ratio", "temp reduction (K)",
         "max T with TEC", "max T no TEC"],
        rows,
        title="Figure 14 -- big.LITTLE ratio vs temperature reduction",
    ))

    by_name = {r[0]: r for r in rows}
    # The TEC never makes things hotter, and it visibly cools the
    # hot-spot-producing workloads.
    for name, row in by_name.items():
        assert row[2] >= -0.5, name
    assert by_name["Geekbench"][2] > 0.8

    # The paper's correlation: the heavy (hot, LITTLE-leaning) loads
    # see more reduction than the light Video load.
    assert by_name["Geekbench"][2] >= by_name["Video"][2]
