"""Figure 6 (bottom): TEC temperature difference vs operating current.

Sweeps the Eq. (1) model over drive currents: the achievable face
temperature difference rises, peaks at the rated current (~1.0 A for
the ATE-31-style part), then falls as Joule heating wins -- the reason
CAPMAN drives its TEC at the rated point rather than proportionally.
Also doubles as the ablation for the rated-current design choice.
"""

from repro.analysis.reporting import format_series, format_table
from repro.thermal.tec import TECModel


def _sweep():
    model = TECModel.ate31()
    currents = [0.1 * i for i in range(1, 23)]
    curve = model.delta_t_curve(currents, cold_c=25.0)
    rated = model.rated_current(25.0)
    return model, curve, rated


def test_fig06_tec_curve(benchmark):
    model, curve, rated = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print()
    print(format_series("Figure 6 -- max dT vs current (A, K)", curve,
                        max_points=24))
    best_i, best_dt = max(curve, key=lambda p: p[1])
    print(format_table(
        ["rated current (A)", "empirical peak (A)", "peak dT (K)",
         "P at rated (W)"],
        [[rated, best_i, best_dt,
          model.electrical_power_w(rated, 25.0 + best_dt, 25.0)]],
    ))

    # Shape: rises then falls, peaking at the rated current ~1.0 A.
    assert abs(best_i - rated) < 0.15
    assert 0.9 < rated < 1.1
    first = curve[0][1]
    last = curve[-1][1]
    assert best_dt > first
    assert best_dt > last

    # Rated-point ablation: driving at half or double the rated current
    # yields strictly worse cooling.
    assert model.max_delta_t(rated / 2) < best_dt
    assert model.max_delta_t(rated * 2) < best_dt
