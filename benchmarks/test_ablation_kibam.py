"""Ablation: remove the rate-capacity effect (ideal batteries).

DESIGN.md calls out the KiBaM well split as the load-bearing design
choice: with an ideal battery (diffusion fast enough that charge never
strands) the big.LITTLE advantage should largely evaporate.  This
ablation time-compresses the chemistry (k scaled up ~50x) and compares
the CAPMAN-vs-Practice gain against the real-chemistry gain.
"""

import dataclasses

from repro.analysis.reporting import format_table, gain_percent
from repro.battery.cell import Cell
from repro.battery.chemistry import LCO, pick_big_little
from repro.battery.pack import BigLittlePack, SingleBatteryPack
from repro.capman.baselines import DualPolicy, PracticePolicy
from repro.workload.generators import SkewedBurstWorkload
from repro.workload.traces import record_trace

from conftest import EVAL_CELL_MAH, run_cycle


def _idealise(chem):
    """A copy with ~50x faster diffusion: effectively no stranding."""
    return dataclasses.replace(chem, kibam_k_override=chem.kibam_k * 50.0)


class _IdealDual(DualPolicy):
    name = "Dual-ideal"

    def build_pack(self):
        big, little = pick_big_little()
        return BigLittlePack.from_chemistries(
            _idealise(big), _idealise(little), self.capacity_mah)


class _IdealPractice(PracticePolicy):
    name = "Practice-ideal"

    def build_pack(self):
        return SingleBatteryPack(cell=Cell(_idealise(LCO), self.capacity_mah))


def _gains():
    trace = record_trace(SkewedBurstWorkload(seed=1), 1800.0)
    real_dual = run_cycle(DualPolicy(capacity_mah=EVAL_CELL_MAH), trace)
    real_practice = run_cycle(PracticePolicy(capacity_mah=2 * EVAL_CELL_MAH), trace)
    ideal_dual = run_cycle(_IdealDual(capacity_mah=EVAL_CELL_MAH), trace)
    ideal_practice = run_cycle(_IdealPractice(capacity_mah=2 * EVAL_CELL_MAH), trace)
    real_gain = gain_percent(real_dual.service_time_s, real_practice.service_time_s)
    ideal_gain = gain_percent(ideal_dual.service_time_s,
                              ideal_practice.service_time_s)
    return real_gain, ideal_gain


def test_ablation_kibam(benchmark):
    real_gain, ideal_gain = benchmark.pedantic(_gains, rounds=1, iterations=1)

    print()
    print(format_table(
        ["chemistry", "dual-battery gain vs Practice (%)"],
        [["real KiBaM (paper substrate)", real_gain],
         ["idealised (50x diffusion)", ideal_gain]],
        title="Ablation -- rate-capacity effect drives the advantage",
    ))

    # With ideal batteries most of the big.LITTLE advantage evaporates.
    assert ideal_gain < real_gain * 0.6
