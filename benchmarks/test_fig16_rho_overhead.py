"""Figure 16: decision overhead as a function of the discount factor.

Builds the CAPMAN scheduling MDP from a profiled trace and measures
real decision latencies across a rho sweep on each phone's compute
speed.  The paper's curve grows steeply as rho approaches 1 (about
300 microseconds at the top end on the Nexus) and separates by device
speed; we assert the exponential-looking growth and the device
ordering, and report the exponential fit.
"""

import numpy as np

from repro.analysis.fitting import fit_exponential
from repro.analysis.reporting import format_series, format_table
from repro.capman.calibration import RuntimeCalibrator
from repro.capman.profiler import PowerProfiler
from repro.device.phone import Phone
from repro.device.profiles import PHONES
from repro.workload.generators import EtaStaticWorkload
from repro.workload.traces import record_trace

RHOS = (0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99)


def _build_mdp():
    trace = record_trace(EtaStaticWorkload(0.5, seed=5), 1200.0)
    prof = PowerProfiler()
    phone = Phone()
    segs = list(trace)
    for a, b in zip(segs, segs[1:]):
        prof.observe(a, b, measured_power_w=phone.demand_power_w(b.demand))
    return prof.build_decision_mdp()


def _sweep_all():
    mdp = _build_mdp()
    out = {}
    for name, profile in PHONES.items():
        cal = RuntimeCalibrator(mdp, compute_speed=profile.compute_speed)
        out[name] = cal.sweep(RHOS, n_decisions=48)
    return out


def test_fig16_rho_overhead(benchmark):
    results = benchmark.pedantic(_sweep_all, rounds=1, iterations=1)

    print()
    for name, points in results.items():
        series = [(p.rho, p.mean_latency_us) for p in points]
        print(format_series(f"  {name} overhead (rho, us)", series))
        fit = fit_exponential([p.rho for p in points],
                              [p.mean_latency_us for p in points])
        print(f"    exp fit y = {fit.params[0]:.3g} * exp({fit.params[1]:.3g} rho)"
              f" + {fit.params[2]:.3g}, R^2 = {fit.r2:.3f}")

    rows = []
    for name, points in results.items():
        low = points[0].mean_latency_us
        high = points[-1].mean_latency_us
        rows.append([name, low, high, high / low])
    print(format_table(
        ["phone", "latency @ rho=0.05 (us)", "@ rho=0.99 (us)", "blow-up"],
        rows,
        title="Figure 16 -- overhead vs discount factor",
    ))

    for name, points in results.items():
        lat = [p.mean_latency_us for p in points]
        # Steep growth toward rho -> 1 (the Figure 16 shape).
        assert lat[-1] > 5 * lat[0], name
        # Later half grows faster than the first half (convexity).
        assert lat[-1] - lat[4] > lat[3] - lat[0], name

    # Device ordering: the fastest phone pays the least at high rho.
    at_top = {name: pts[-1].mean_latency_us for name, pts in results.items()}
    assert at_top["Lenovo"] < at_top["Nexus"]
