"""Figure 13: cooling and active power consumption per workload.

Runs CAPMAN over each workload (time-capped, not to depletion) and
reports the active power trace and the temperature held by the TEC:
the paper shows CAPMAN maintaining the die around the 45 degC line
while active power varies up to the ~2.3 W full-tilt regime, with
lighter workloads (Video) drawing much less.
"""

import pytest

from repro.analysis.reporting import format_series, format_table
from repro.capman.controller import CapmanPolicy
from repro.thermal.hotspot import HOT_SPOT_THRESHOLD_C

from conftest import CONTROL_DT, EVAL_CELL_MAH, run_sweep

#: Cap each observation run at two simulated hours.
WINDOW_S = 2.0 * 3600.0

WORKLOADS = ("Geekbench", "PCMark", "Video", "eta-80%")


def _observe(store, workload_name):
    trace = store.trace(workload_name)
    sweep = run_sweep({"CAPMAN": CapmanPolicy(capacity_mah=EVAL_CELL_MAH)},
                      {workload_name: trace}, max_duration_s=WINDOW_S)
    return sweep.get(policy="CAPMAN", trace=workload_name)


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_fig13_cooling_power(benchmark, store, workload_name):
    res = benchmark.pedantic(lambda: _observe(store, workload_name),
                             rounds=1, iterations=1)

    power = res.metrics.series("power_w")
    temp = res.metrics.series("cpu_temp_c")
    print()
    print(format_table(
        ["workload", "mean power (mW)", "peak power (mW)", "max T (C)",
         "TEC on (h)", "time > 45C (h)"],
        [[workload_name, power.time_weighted_mean() * 1000.0,
          power.maximum() * 1000.0, res.max_cpu_temp_c,
          res.tec_on_time_s / 3600.0, res.time_above_threshold_s / 3600.0]],
        title=f"Figure 13 -- {workload_name}",
    ))
    print(format_series("  active power (t, W)",
                        list(zip(power.times, power.values)), max_points=12))
    print(format_series("  CPU temperature (t, C)",
                        list(zip(temp.times, temp.values)), max_points=12))

    # CAPMAN holds the die around the 45 degC line.
    assert res.max_cpu_temp_c < HOT_SPOT_THRESHOLD_C + 2.5

    if workload_name == "Geekbench":
        # The heavy load triggers active cooling.
        assert res.tec_on_time_s > 0.0
    if workload_name == "Video":
        # The light workload draws far less active power than full tilt.
        assert power.time_weighted_mean() * 1000.0 < 1600.0
