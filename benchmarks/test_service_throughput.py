"""Service throughput: the HTTP job path priced honestly.

Runs a small Dual-policy grid twice -- cold serial in-process, then
submitted as JSON to an in-process :class:`CapmanService` over real
HTTP and polled to completion -- and merges a ``"service"`` section
into ``BENCH_sim.json`` for ``scripts/bench_gate.py`` (alongside the
sweep, fleet and distributed sections).

The point is not a speedup figure: on a grid this small the HTTP
round-trips, journalling and status polling dominate.  The section
pins what the service must never regress on:

* exactly-once accounting -- ``failed_cells`` and ``double_commits``
  are exact-zero gated fields, audited from the job's run journal;
* content-hash dedupe -- resubmitting the identical grid must come
  back acknowledged-not-created (``deduped_jobs`` is exact);
* byte-identity with the serial engine (asserted here, cell by cell,
  on the HTTP-served result blobs);
* a relative throughput floor on ``steps_per_sec`` so API overhead
  (framing, WAL fsyncs, poll loops) cannot silently balloon.

Deterministic work accounting (``cells_total``, ``steps_total``) is
gated exactly; rates relatively.
"""

import base64
import json
import pickle
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.service import CapmanService, parse_spec
from repro.sim.chaos import journal_commit_counts
from repro.sim.sweep import ScenarioRunner

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

CAPACITIES = (300.0, 400.0, 500.0)
TRACE_S = 300.0
WINDOW_S = 1800.0
SEED = 1

#: The JSON grid a client would POST; the serial reference run parses
#: the very same body, so byte-identity is apples to apples.
GRID = {
    "policies": {
        f"Dual{int(mah)}": {"type": "dual", "capacity_mah": mah}
        for mah in CAPACITIES
    },
    "traces": {"video": {"workload": "video", "seed": SEED,
                         "duration_s": TRACE_S}},
    "max_duration_s": WINDOW_S,
}


def _api(base, method, path, body=None, timeout=30.0):
    data = None
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(base + path, data=data,
                                     method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _measure(tmp_path):
    spec = parse_spec(GRID)

    t0 = time.perf_counter()
    serial = ScenarioRunner(workers=1).run(spec)
    serial_wall = time.perf_counter() - t0

    root = tmp_path / "service-bench"
    service = CapmanService(root, cell_workers=1, job_runners=1).start()
    try:
        host, port = service.address
        base = f"http://{host}:{port}"

        t0 = time.perf_counter()
        code, ack = _api(base, "POST", "/jobs", body=GRID)
        assert code == 201, ack
        submit_latency = time.perf_counter() - t0
        job_id = ack["job_id"]
        while True:
            code, status = _api(base, "GET", f"/jobs/{job_id}")
            if code == 200 and status["state"] in ("done", "failed"):
                break
            time.sleep(0.02)
        service_wall = time.perf_counter() - t0
        assert status["state"] == "done", status

        code, results = _api(base, "GET", f"/jobs/{job_id}/results")
        assert code == 200, results
        served = [base64.b64decode(cell) for cell in results["cells"]]

        # Resubmission of the identical grid: pure content-hash dedupe.
        code, again = _api(base, "POST", "/jobs", body=GRID)
        assert code == 200 and not again["created"], again
        code, metrics = _api(base, "GET", "/metrics")
        deduped = int(metrics["counters"].get("jobs.deduped", 0))
    finally:
        service.close()

    journal = root / "jobs" / job_id / "run.journal"
    return (spec, serial, serial_wall, served, service_wall,
            submit_latency, status, deduped, journal)


def test_service_throughput(benchmark, tmp_path, monkeypatch):
    monkeypatch.delenv("CAPMAN_DIST_SECRET", raising=False)
    monkeypatch.delenv("CAPMAN_DIST_WORKERS", raising=False)
    (spec, serial, serial_wall, served, service_wall, submit_latency,
     status, deduped, journal) = benchmark.pedantic(
        lambda: _measure(tmp_path), rounds=1, iterations=1)

    # Exactly-once audit straight from the durable record.
    counts = journal_commit_counts(journal)
    double_commits = sum(1 for n in counts.values() if n > 1)
    failed_cells = status["stats"]["cells_failed"]

    steps_total = sum(r.step_count for r in serial.results)
    serial_rate = steps_total / max(serial_wall, 1e-9)
    service_rate = steps_total / max(service_wall, 1e-9)

    print()
    print(format_table(
        ["run", "wall (s)", "steps/s", "notes"],
        [
            ["serial in-process", serial_wall, serial_rate, "-"],
            ["service (HTTP)", service_wall, service_rate,
             f"submit {submit_latency * 1e3:.1f} ms"],
        ],
        title=f"Sweep service -- {len(spec)} cells over HTTP, "
              f"journalled, submit-to-done",
    ))

    section = {
        "cells_total": len(spec),
        "steps_total": steps_total,
        "deduped_jobs": deduped,
        "failed_cells": failed_cells,
        "double_commits": double_commits,
        "steps_per_sec": service_rate,
        "serial_steps_per_sec": serial_rate,
        "serial_wall_s": serial_wall,
        "service_wall_s": service_wall,
        "submit_latency_s": submit_latency,
    }
    payload = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    payload["service"] = section
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  merged service section into {BENCH_PATH}")

    # The path measured is the certified one: HTTP-served results are
    # byte-identical to the serial engine, committed exactly once, and
    # the resubmission never re-entered the queue.
    assert served == [pickle.dumps(r, protocol=4) for r in serial.results]
    assert sorted(counts) == [cell.index for cell in spec.expand()]
    assert double_commits == 0, section
    assert failed_cells == 0, section
    assert deduped == 1, section
