"""Figure 15: CAPMAN snapshots on three phones.

Replays the same workload trace on the Nexus, Honor and Lenovo
profiles under CAPMAN and reports each phone's active-power band.  The
paper observes similar management across phones with powers in the
hundreds-of-mW band; ours should show the same cross-device
consistency with profile-scaled absolute levels.
"""

from repro.analysis.reporting import format_table
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import PHONES

from conftest import EVAL_CELL_MAH, run_sweep

WINDOW_S = 1.0 * 3600.0


def _snapshot(store):
    sweep = run_sweep(
        {"CAPMAN": CapmanPolicy(capacity_mah=EVAL_CELL_MAH)},
        {"eta-50%": store.trace("eta-50%")},
        profiles=dict(PHONES),
        max_duration_s=WINDOW_S,
    )
    return {name: sweep.get(profile=name) for name in PHONES}


def test_fig15_phones(benchmark, store):
    results = benchmark.pedantic(lambda: _snapshot(store), rounds=1, iterations=1)

    rows = []
    for name, res in results.items():
        power = res.metrics.series("power_w")
        rows.append([
            name,
            power.time_weighted_mean() * 1000.0,
            power.maximum() * 1000.0,
            res.little_ratio,
            res.max_cpu_temp_c,
        ])
    print()
    print(format_table(
        ["phone", "mean power (mW)", "peak power (mW)", "LITTLE ratio",
         "max T (C)"],
        rows,
        title="Figure 15 -- CAPMAN snapshot across phones (same trace)",
    ))

    means = {r[0]: r[1] for r in rows}
    ratios = {r[0]: r[3] for r in rows}

    # Same management on every phone: LITTLE activation shares agree
    # within a modest band.
    vals = list(ratios.values())
    assert max(vals) - min(vals) < 0.3

    # Power scales with the profile tables (Honor < Nexus < Lenovo).
    assert means["Honor"] < means["Nexus"] < means["Lenovo"]
