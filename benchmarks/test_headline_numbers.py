"""The paper's headline numbers, aggregated from the Figure 12 matrix.

Paper: CAPMAN achieves up to +114% service time versus the original
phone under skewed loads, an average ~55% gain over the
state-of-the-practice dual-battery baselines, and stays within ~10% of
the offline Oracle.  This benchmark aggregates our measured matrix the
same way and reports paper-vs-measured side by side (EXPERIMENTS.md
records the comparison).
"""

from repro.analysis.reporting import format_table, gain_percent
from repro.capman.baselines import PracticePolicy
from repro.capman.controller import CapmanPolicy
from repro.workload.generators import SkewedBurstWorkload
from repro.workload.traces import record_trace

from conftest import EVAL_CELL_MAH, evaluation_policies, run_cycle


def _ensure_matrix(store):
    """Reuse the Figure 12 results; compute any missing workloads."""
    from conftest import evaluation_workloads

    for name in evaluation_workloads():
        if name not in store.fig12:
            trace = store.trace(name)
            store.fig12[name] = {
                pol_name: run_cycle(policy, trace)
                for pol_name, policy in evaluation_policies().items()
            }
    return store.fig12


def _skewed_gain():
    trace = record_trace(SkewedBurstWorkload(seed=1), 1800.0)
    capman = run_cycle(CapmanPolicy(capacity_mah=EVAL_CELL_MAH), trace)
    practice = run_cycle(PracticePolicy(capacity_mah=2 * EVAL_CELL_MAH), trace)
    return gain_percent(capman.service_time_s, practice.service_time_s)


def test_headline_numbers(benchmark, store):
    matrix, skewed = benchmark.pedantic(
        lambda: (_ensure_matrix(store), _skewed_gain()), rounds=1, iterations=1
    )

    gains_vs_practice = []
    gains_vs_dual = []
    gains_vs_heuristic = []
    vs_oracle = []
    for name, results in matrix.items():
        capman = results["CAPMAN"].service_time_s
        gains_vs_practice.append(
            gain_percent(capman, results["Practice"].service_time_s))
        gains_vs_dual.append(gain_percent(capman, results["Dual"].service_time_s))
        gains_vs_heuristic.append(
            gain_percent(capman, results["Heuristic"].service_time_s))
        vs_oracle.append(
            gain_percent(results["Oracle"].service_time_s, capman))

    avg = lambda xs: sum(xs) / len(xs)
    rows = [
        ["best gain vs Practice (skewed load)", "+114%", f"{skewed:+.1f}%"],
        ["avg gain vs Practice", "+50..114%", f"{avg(gains_vs_practice):+.1f}%"],
        ["avg gain vs Dual", "~+55% (best case)", f"{avg(gains_vs_dual):+.1f}%"],
        ["avg gain vs Heuristic", "~+55% (best case)",
         f"{avg(gains_vs_heuristic):+.1f}%"],
        ["Oracle advantage over CAPMAN", "<= 9.6% (Video)",
         f"{avg(vs_oracle):+.1f}% avg"],
    ]
    print()
    print(format_table(
        ["metric", "paper", "measured"],
        rows,
        title="Headline numbers -- paper vs this reproduction",
    ))

    # Shape assertions (orderings / factors, not absolute matches).
    assert skewed > 40.0, "skewed-load gain should be the standout number"
    assert avg(gains_vs_practice) > 25.0
    assert avg(gains_vs_dual) >= -2.0
    assert avg(vs_oracle) < 12.0
