"""The paper's headline numbers, aggregated from the Figure 12 matrix.

Paper: CAPMAN achieves up to +114% service time versus the original
phone under skewed loads, an average ~55% gain over the
state-of-the-practice dual-battery baselines, and stays within ~10% of
the offline Oracle.  This benchmark aggregates our measured matrix the
same way and reports paper-vs-measured side by side (EXPERIMENTS.md
records the comparison).
"""

from repro.analysis.reporting import format_table, gain_percent
from repro.capman.baselines import PracticePolicy
from repro.capman.controller import CapmanPolicy
from repro.workload.generators import SkewedBurstWorkload
from repro.workload.traces import record_trace

from conftest import EVAL_CELL_MAH, evaluation_policies, run_sweep


def _ensure_matrix(store):
    """Reuse the Figure 12 results; sweep any missing workloads."""
    from conftest import evaluation_workloads

    missing = [n for n in evaluation_workloads() if n not in store.fig12]
    if missing:
        sweep = run_sweep(evaluation_policies(),
                          {n: store.trace(n) for n in missing})
        for name in missing:
            store.fig12[name] = sweep.by_policy(trace=name)
    return store.fig12


def _skewed_gain():
    trace = record_trace(SkewedBurstWorkload(seed=1), 1800.0)
    sweep = run_sweep(
        {
            "CAPMAN": CapmanPolicy(capacity_mah=EVAL_CELL_MAH),
            "Practice": PracticePolicy(capacity_mah=2 * EVAL_CELL_MAH),
        },
        {"skewed": trace},
    )
    results = sweep.by_policy(trace="skewed")
    return gain_percent(results["CAPMAN"].service_time_s,
                        results["Practice"].service_time_s)


def test_headline_numbers(benchmark, store):
    matrix, skewed = benchmark.pedantic(
        lambda: (_ensure_matrix(store), _skewed_gain()), rounds=1, iterations=1
    )

    gains_vs_practice = []
    gains_vs_dual = []
    gains_vs_heuristic = []
    vs_oracle = []
    for name, results in matrix.items():
        capman = results["CAPMAN"].service_time_s
        gains_vs_practice.append(
            gain_percent(capman, results["Practice"].service_time_s))
        gains_vs_dual.append(gain_percent(capman, results["Dual"].service_time_s))
        gains_vs_heuristic.append(
            gain_percent(capman, results["Heuristic"].service_time_s))
        vs_oracle.append(
            gain_percent(results["Oracle"].service_time_s, capman))

    avg = lambda xs: sum(xs) / len(xs)
    rows = [
        ["best gain vs Practice (skewed load)", "+114%", f"{skewed:+.1f}%"],
        ["avg gain vs Practice", "+50..114%", f"{avg(gains_vs_practice):+.1f}%"],
        ["avg gain vs Dual", "~+55% (best case)", f"{avg(gains_vs_dual):+.1f}%"],
        ["avg gain vs Heuristic", "~+55% (best case)",
         f"{avg(gains_vs_heuristic):+.1f}%"],
        ["Oracle advantage over CAPMAN", "<= 9.6% (Video)",
         f"{avg(vs_oracle):+.1f}% avg"],
    ]
    print()
    print(format_table(
        ["metric", "paper", "measured"],
        rows,
        title="Headline numbers -- paper vs this reproduction",
    ))

    # Shape assertions (orderings / factors, not absolute matches).
    assert skewed > 40.0, "skewed-load gain should be the standout number"
    assert avg(gains_vs_practice) > 25.0
    assert avg(gains_vs_dual) >= -2.0
    assert avg(vs_oracle) < 12.0
