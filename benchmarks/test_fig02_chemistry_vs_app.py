"""Figure 2: different applications favour different chemistries.

(a) Discharge cycles of a single 2500 mAh LMO vs NCA cell under the
    idle and Video workloads.  The paper measures idle favouring LMO
    by +14.3%; our substrate reproduces that.  (The paper's text also
    claims NCA wins Video and on/off toggling, which contradicts its
    own big/LITTLE design narrative -- see EXPERIMENTS.md; we report
    the physically consistent outcome.)
(b) Screen on/off toggling at frequencies from once a minute to once
    every few seconds: the burst-capable chemistry's relative benefit
    changes monotonically with the toggle frequency.
"""

from repro.analysis.reporting import format_table
from repro.battery.chemistry import LMO, NCA
from repro.battery.pack import SingleBatteryPack
from repro.sim.discharge import SchedulingPolicy, run_discharge_cycle
from repro.workload.generators import IdleWorkload, VideoWorkload
from repro.workload.onoff import ScreenToggleWorkload
from repro.workload.traces import record_trace

from conftest import CONTROL_DT, MAX_CYCLE_S


class _SingleChem(SchedulingPolicy):
    uses_tec = False

    def __init__(self, chem):
        self.chem = chem
        self.name = chem.name

    def build_pack(self):
        return SingleBatteryPack.from_chemistry(self.chem, 2500.0)

    def decide_battery(self, ctx):
        return None


def _service_h(chem, workload, duration=1200.0):
    trace = record_trace(workload, duration)
    res = run_discharge_cycle(_SingleChem(chem), trace, control_dt=CONTROL_DT,
                              max_duration_s=MAX_CYCLE_S)
    return res.service_time_s / 3600.0


def test_fig02a_applications(benchmark):
    def run():
        rows = []
        for name, wl in (("Idle", IdleWorkload(seed=1)),
                         ("Video", VideoWorkload(seed=1))):
            lmo = _service_h(LMO, wl)
            nca = _service_h(NCA, wl)
            rows.append((name, nca, lmo, (lmo / nca - 1.0) * 100.0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["workload", "NCA (h)", "LMO (h)", "LMO vs NCA (%)"],
        rows,
        title="Figure 2(a) -- discharge cycles per chemistry "
              "(paper: idle favours LMO by +14.3%)",
    ))
    idle_gain = rows[0][3]
    # Paper Figure 2(a): idle favours LMO (+14.3% measured there).
    assert 3.0 < idle_gain < 40.0
    # The two chemistries must disagree across workloads by a clear margin
    # (the scheduling opportunity the paper builds on).
    assert abs(rows[1][3]) > 5.0


def test_fig02b_onoff_frequency(benchmark):
    periods = (60.0, 20.0, 8.0, 3.0)

    def run():
        rows = []
        for period in periods:
            wl_lmo = ScreenToggleWorkload(period, seed=1)
            wl_nca = ScreenToggleWorkload(period, seed=1)
            lmo = _service_h(LMO, wl_lmo, duration=600.0)
            nca = _service_h(NCA, wl_nca, duration=600.0)
            rows.append((period, nca, lmo, (lmo / nca - 1.0) * 100.0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["toggle period (s)", "NCA (h)", "LMO (h)", "burst-chem gain (%)"],
        rows,
        title="Figure 2(b) -- on/off frequency sweep "
              "(paper trend: the gap moves ~10pp across the sweep)",
    ))
    # Shape: the burst-capable chemistry's advantage depends on the
    # frequency and moves monotonically-ish across the sweep, with the
    # fastest toggling showing the larger gap (paper reports the gap
    # changing 46% -> 35% across its sweep; ours moves the same order).
    slowest_gain = rows[0][3]
    fastest_gain = rows[-1][3]
    assert abs(fastest_gain - slowest_gain) > 2.0
