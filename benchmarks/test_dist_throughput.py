"""Distributed-backend throughput: the TCP lease path priced honestly.

Runs a small Dual-policy grid twice -- cold serial in-process, then
through :class:`repro.sim.distributed.DistributedExecutor` with two
spawned TCP workers and a run journal -- and merges a
``"distributed"`` section into ``BENCH_sim.json`` for
``scripts/bench_gate.py`` (alongside the sweep and fleet sections).

The point is not a speedup figure: on a grid this small the worker
spawn and lease round-trips dominate.  The section pins what the
backend must never regress on:

* exactly-once accounting -- ``lost_cells`` and ``double_commits``
  are exact-zero gated fields, audited from the journal, not from the
  executor's own counters;
* byte-identity with the serial engine (asserted here, cell by cell);
* a relative throughput floor on ``steps_per_sec`` so protocol
  overhead (framing, renewals, polling) cannot silently balloon.

Deterministic work accounting (``cells_total``, ``steps_total``,
``workers``) is gated exactly; rates relatively.
"""

import json
import pickle
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.capman.baselines import DualPolicy
from repro.device.profiles import PHONES
from repro.sim.chaos import journal_commit_counts
from repro.sim.distributed import DistributedExecutor
from repro.sim.sweep import CellFailure, ScenarioRunner, SweepSpec
from repro.workload.generators import EtaStaticWorkload
from repro.workload.traces import record_trace

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

CELL_MAH = 400.0
WINDOW_S = 1800.0
TRACE_S = 600.0
WORKERS = 2


def _grid_spec():
    trace = record_trace(EtaStaticWorkload(0.5, seed=1), TRACE_S)
    return SweepSpec(
        policies={
            f"Dual{int(mah)}": DualPolicy(capacity_mah=mah)
            for mah in (300.0, 400.0, 500.0)
        },
        traces={"eta-50%": trace},
        profiles=dict(PHONES),
        control_dts=(2.0,),
        max_duration_s=WINDOW_S,
    )


def _cell_bytes(results):
    return [pickle.dumps(r) for r in results]


def _measure(tmp_path):
    spec = _grid_spec()

    t0 = time.perf_counter()
    serial = ScenarioRunner(workers=1).run(spec)
    serial_wall = time.perf_counter() - t0

    executor = DistributedExecutor(spawn_workers=WORKERS,
                                   workers_grace_s=10.0)
    journal = tmp_path / "dist-bench.journal"
    t0 = time.perf_counter()
    dist = ScenarioRunner(executor=executor, journal=journal).run(spec)
    dist_wall = time.perf_counter() - t0
    return spec, serial, serial_wall, dist, dist_wall, executor, journal


def test_dist_throughput(benchmark, tmp_path):
    spec, serial, serial_wall, dist, dist_wall, executor, journal = \
        benchmark.pedantic(lambda: _measure(tmp_path),
                           rounds=1, iterations=1)

    # Exactly-once audit straight from the durable record.
    counts = journal_commit_counts(journal)
    lost_cells = sum(
        1 for r in dist.results
        if r is None or isinstance(r, CellFailure))
    double_commits = sum(1 for n in counts.values() if n > 1)

    steps_total = sum(r.step_count for r in dist.results)
    serial_rate = steps_total / max(serial_wall, 1e-9)
    dist_rate = steps_total / max(dist_wall, 1e-9)

    print()
    print(format_table(
        ["run", "workers", "wall (s)", "steps/s", "remote cells"],
        [
            ["serial in-process", 1, serial_wall, serial_rate, 0],
            ["distributed (TCP)", WORKERS, dist_wall, dist_rate,
             executor.stats.remote_cells],
        ],
        title=f"Distributed backend -- {len(spec)} cells, "
              f"{WORKERS} spawned workers, journalled",
    ))

    section = {
        "cells_total": len(spec),
        "steps_total": steps_total,
        "workers": WORKERS,
        "lost_cells": lost_cells,
        "double_commits": double_commits,
        "remote_cells": executor.stats.remote_cells,
        "local_fallback_cells": executor.stats.local_fallback_cells,
        "steps_per_sec": dist_rate,
        "serial_steps_per_sec": serial_rate,
        "serial_wall_s": serial_wall,
        "dist_wall_s": dist_wall,
    }
    payload = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    payload["distributed"] = section
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  merged distributed section into {BENCH_PATH}")

    # The backend measured is the certified one: byte-identical to the
    # serial engine, cell by cell, with exactly-once journal commits.
    assert _cell_bytes(dist.results) == _cell_bytes(serial.results)
    assert lost_cells == 0, section
    assert double_commits == 0, section
    assert sorted(counts) == [cell.index for cell in spec.expand()]
    assert dist.stats.executor == "distributed"
