"""Shared machinery for the benchmark harness.

Each ``benchmarks/test_*`` file regenerates one table or figure of the
paper: it runs the experiment (timed by pytest-benchmark), prints the
same rows/series the paper reports, and asserts the qualitative
*shape* (orderings, crossovers) -- not absolute hardware numbers.

The evaluation grids all run through the scenario-sweep engine
(:mod:`repro.sim.sweep`).  Two environment knobs control it:

* ``CAPMAN_SWEEP_WORKERS`` -- process fan-out for the grids
  (default 1 = serial; 0 = one per CPU);
* ``CAPMAN_SWEEP_CACHE`` -- directory for the on-disk result cache
  (default unset = no caching; re-runs with a cache directory only
  recompute cells whose configuration or code changed).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import pytest

from repro.capman.baselines import (
    DualPolicy,
    HeuristicPolicy,
    OraclePolicy,
    PracticePolicy,
)
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import NEXUS, PhoneProfile
from repro.sim.discharge import DischargeResult, run_discharge_cycle
from repro.sim.sweep import ScenarioRunner, SimStats, SweepResult, SweepSpec
from repro.workload.generators import (
    EtaStaticWorkload,
    GeekbenchWorkload,
    PCMarkWorkload,
    VideoWorkload,
)
from repro.workload.traces import Trace, record_trace

#: Evaluation scale (the paper's cells are 2500 mAh each).
EVAL_CELL_MAH = 2500.0
#: Control step of the evaluation harness (s).
CONTROL_DT = 2.0
#: Wall-clock cap per discharge cycle (simulated seconds).
MAX_CYCLE_S = 60.0 * 3600.0
#: Trace length before looping (s).
TRACE_S = 1800.0


def evaluation_workloads() -> Dict[str, object]:
    """The six Figure 12 workloads."""
    return {
        "Geekbench": GeekbenchWorkload(seed=1),
        "PCMark": PCMarkWorkload(seed=1),
        "Video": VideoWorkload(seed=1),
        "eta-20%": EtaStaticWorkload(0.2, seed=1),
        "eta-50%": EtaStaticWorkload(0.5, seed=1),
        "eta-80%": EtaStaticWorkload(0.8, seed=1),
    }


def evaluation_policies() -> Dict[str, object]:
    """The five Figure 12 policies, freshly constructed."""
    return {
        "Practice": PracticePolicy(capacity_mah=2 * EVAL_CELL_MAH),
        "Dual": DualPolicy(capacity_mah=EVAL_CELL_MAH),
        "Heuristic": HeuristicPolicy(capacity_mah=EVAL_CELL_MAH),
        "CAPMAN": CapmanPolicy(capacity_mah=EVAL_CELL_MAH),
        "Oracle": OraclePolicy(capacity_mah=EVAL_CELL_MAH),
    }


def sweep_runner(journal=None, checkpoint_every_steps=None) -> ScenarioRunner:
    """The shared evaluation runner, configured from the environment.

    ``CAPMAN_SWEEP_JOURNAL`` (a journal path) and
    ``CAPMAN_SWEEP_CKPT_STEPS`` (an in-cell sidecar cadence) opt long
    grids into crash-durable, resumable execution; callers may also
    pass both explicitly.  Journalled callers should drive the runner
    through :meth:`ScenarioRunner.run_or_resume` so a re-invoked job
    picks up its own journal instead of refusing it.
    """
    workers = int(os.environ.get("CAPMAN_SWEEP_WORKERS", "1"))
    cache_dir = os.environ.get("CAPMAN_SWEEP_CACHE") or None
    if journal is None:
        journal = os.environ.get("CAPMAN_SWEEP_JOURNAL") or None
    if checkpoint_every_steps is None:
        checkpoint_every_steps = int(
            os.environ.get("CAPMAN_SWEEP_CKPT_STEPS", "0"))
    return ScenarioRunner(workers=workers, cache=cache_dir, journal=journal,
                          checkpoint_every_steps=checkpoint_every_steps)


def run_sweep(
    policies: Dict[str, object],
    traces: Dict[str, Trace],
    profiles: Optional[Dict[str, PhoneProfile]] = None,
    max_duration_s: float = MAX_CYCLE_S,
    control_dt: float = CONTROL_DT,
) -> SweepResult:
    """One evaluation grid at paper scale through the sweep engine."""
    spec = SweepSpec(
        policies=policies,
        traces=traces,
        profiles=profiles or {"Nexus": NEXUS},
        control_dts=(control_dt,),
        max_duration_s=max_duration_s,
    )
    return sweep_runner().run_or_resume(spec)


def run_cycle(
    policy,
    trace: Trace,
    profile: PhoneProfile = NEXUS,
    max_duration_s: float = MAX_CYCLE_S,
) -> DischargeResult:
    """One evaluation discharge cycle at paper scale."""
    return run_discharge_cycle(
        policy, trace, profile=profile, control_dt=CONTROL_DT,
        max_duration_s=max_duration_s,
    )


class ResultStore:
    """Cross-file cache so later figures reuse the Figure 12 matrix."""

    def __init__(self) -> None:
        self.fig12: Dict[str, Dict[str, DischargeResult]] = {}
        self.traces: Dict[str, Trace] = {}

    def trace(self, name: str) -> Trace:
        if name not in self.traces:
            self.traces[name] = record_trace(evaluation_workloads()[name], TRACE_S)
        return self.traces[name]


_STORE: Optional[ResultStore] = None


@pytest.fixture(scope="session")
def store() -> ResultStore:
    """Session-wide result cache."""
    global _STORE
    if _STORE is None:
        _STORE = ResultStore()
    return _STORE
