"""Extension experiment: does the scheduler change how the pack ages?

Beyond the paper's single-cycle evaluation: run CAPMAN and the
LITTLE-first Dual baseline through simulated days of discharge +
overnight CC-CV charging + cycle aging.  Wear tracks throughput, and
CAPMAN deliberately extracts *more* energy per day -- so the honest
comparison is wear per joule delivered: CAPMAN's extra service time
must not come at a premium in pack health.

(Uses a scaled pack so a day is minutes of wall time; the wear model
is capacity-relative, so the comparison carries.)

This is the longest grid in the benchmark tree, so it opts into the
durability layer: the sweep is journalled with periodic in-cell
checkpoints, and a re-run after a crash resumes from the journal
instead of recomputing finished days.  Set
``CAPMAN_DAILY_WEAR_JOURNAL`` to pin the journal somewhere durable
across invocations (default: a fresh temp directory per run).
"""

import os
import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.battery.aging import AgingModel
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.sim.sweep import SweepSpec
from repro.workload.generators import VideoWorkload
from repro.workload.traces import record_trace

from conftest import sweep_runner

CELL_MAH = 600.0
N_DAYS = 8


def _run_both():
    trace = record_trace(VideoWorkload(seed=3), 900.0)
    # A "daily" sweep cell runs run_days; each cell deep-copies its
    # policy and aging model, so one template serves both policies.
    spec = SweepSpec(
        policies={
            "CAPMAN": CapmanPolicy(capacity_mah=CELL_MAH),
            "Dual": DualPolicy(capacity_mah=CELL_MAH),
        },
        traces={"Video": trace},
        kind="daily",
        max_duration_s=12 * 3600.0,
        extra={"n_days": N_DAYS,
               "aging": AgingModel(rate_stress_weight=2.0)},
    )
    journal = os.environ.get("CAPMAN_DAILY_WEAR_JOURNAL") or str(
        Path(tempfile.mkdtemp(prefix="daily-wear-")) / "daily_wear.journal")
    runner = sweep_runner(journal=journal, checkpoint_every_steps=2000)
    sweep = runner.run_or_resume(spec)
    return sweep.get(policy="CAPMAN"), sweep.get(policy="Dual")


def _wear_per_mj(res):
    """Total health loss per megajoule delivered over the run."""
    loss = sum(1.0 - h for h in res.last_day.cell_health)
    delivered = sum(d.energy_delivered_j for d in res.days)
    return loss / (delivered / 1e6)


def test_extension_daily_wear(benchmark):
    capman, dual = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    rows = []
    for res in (capman, dual):
        last = res.last_day
        rows.append([
            res.policy_name,
            f"{res.first_day.service_time_s / 3600.0:.2f}",
            f"{last.service_time_s / 3600.0:.2f}",
            f"{last.cell_health[0]:.4f}",
            f"{last.cell_health[1]:.4f}",
            f"{_wear_per_mj(res):.4f}",
            f"{last.charge_time_s / 3600.0:.2f}",
        ])
    print()
    print(format_table(
        ["policy", "day-1 service (h)", f"day-{N_DAYS} service (h)",
         "big health", "LITTLE health", "wear / MJ", "charge time (h)"],
        rows,
        title=f"Extension -- pack wear after {N_DAYS} simulated days (Video)",
    ))

    # Both packs wear; health is monotone non-increasing and bounded.
    for res in (capman, dual):
        assert all(0.0 <= h <= 1.0 for h in res.last_day.cell_health)

    # CAPMAN's extra service comes at no wear premium per joule.
    assert _wear_per_mj(capman) <= _wear_per_mj(dual) * 1.1

    # Service time on the aged pack never exceeds the fresh pack's.
    for res in (capman, dual):
        assert res.last_day.service_time_s <= res.first_day.service_time_s + 60.0
