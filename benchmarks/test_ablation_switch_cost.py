"""Ablation: the switch-cost model and the dwell guard.

The paper motivates modelling switch costs: "frequently switching
batteries may cause additional energy loss and heat dissipation".
We drive a deliberately chattering policy (flip every control step, a
naive well-balancing strawman) over three pack configurations:

* free switches (the ablated model),
* real per-switch costs (the default),
* real costs plus the switch facility's dwell guard.

With real costs the identical decisions leave measurably less charge
in the pack; the dwell guard suppresses the chatter.
"""

from repro.analysis.reporting import format_table
from repro.battery.pack import BigLittlePack
from repro.battery.switch import BatterySelection, BatterySwitch
from repro.battery.chemistry import pick_big_little
from repro.sim.discharge import PolicyContext, SchedulingPolicy
from repro.workload.generators import PCMarkWorkload
from repro.workload.traces import record_trace

from conftest import EVAL_CELL_MAH, run_cycle

#: Observation window well before pack exhaustion, so results reflect
#: policy-driven switching rather than end-of-life comparator churn.
WINDOW_S = 3.0 * 3600.0


class _FlipPolicy(SchedulingPolicy):
    """Alternates the battery every control step (naive balancing)."""

    uses_tec = False

    def __init__(self, name: str, switch: BatterySwitch):
        self.name = name
        self._switch_template = switch

    def build_pack(self):
        big, little = pick_big_little()
        pack = BigLittlePack.from_chemistries(big, little, EVAL_CELL_MAH)
        pack.switch = self._switch_template
        return pack

    def decide_battery(self, ctx: PolicyContext):
        return ctx.active.other()


def _final_soc(result):
    return result.metrics.series("soc").values[-1]


def _compare():
    trace = record_trace(PCMarkWorkload(seed=1), 1800.0)
    free = run_cycle(
        _FlipPolicy("free-switches",
                    BatterySwitch(switch_energy_j=0.0, switch_heat_j=0.0)),
        trace, max_duration_s=WINDOW_S)
    costed = run_cycle(
        _FlipPolicy("costed-switches", BatterySwitch()),
        trace, max_duration_s=WINDOW_S)
    guarded = run_cycle(
        _FlipPolicy("dwell-guarded", BatterySwitch(min_dwell_s=30.0)),
        trace, max_duration_s=WINDOW_S)
    return free, costed, guarded


def test_ablation_switch_cost(benchmark):
    free, costed, guarded = benchmark.pedantic(_compare, rounds=1, iterations=1)

    print()
    print(format_table(
        ["configuration", "switches", "final pack SoC", "energy (kJ)"],
        [[r.policy_name, r.switch_count, _final_soc(r),
          r.energy_delivered_j / 1000.0]
         for r in (free, costed, guarded)],
        title="Ablation -- switch cost and dwell guard (3h window)",
    ))

    # The flip policy chatters hard without a guard.
    assert free.switch_count > 2000
    # Real per-switch costs burn real charge for identical decisions.
    assert _final_soc(costed) < _final_soc(free) - 1e-4
    # The dwell guard suppresses the chatter by more than an order of
    # magnitude.
    assert guarded.switch_count < free.switch_count / 10
