"""Figure 9: the TTL battery-switch control signal.

Reproduces the paper's Section III-E example: the control starts high
at time 1 and the battery flips at times 2, 5, 7 and 8, each voltage
flip indicating a switch event.  We drive the actuator through that
schedule and print the reconstructed waveform, verifying the flip
count, levels (3.5 V / 0.3 V) and the per-flip cost bookkeeping.
"""

from repro.analysis.reporting import format_series, format_table
from repro.battery.pack import BigLittlePack
from repro.battery.chemistry import pick_big_little
from repro.battery.switch import BatterySelection
from repro.capman.actuator import CapmanActuator
from repro.device.phone import DemandSlice, Phone

#: The paper's example: flips at times 2, 5, 7, 8.
FLIP_TIMES = (2.0, 5.0, 7.0, 8.0)


def _drive():
    big, little = pick_big_little()
    phone = Phone(pack=BigLittlePack.from_chemistries(big, little, 2500.0))
    actuator = CapmanActuator(phone)
    demand = DemandSlice(cpu_util=50.0, screen_on=True)

    selection = BatterySelection.BIG
    t = 0.0
    while t < 9.0:
        if t in FLIP_TIMES:
            selection = selection.other()
        actuator.apply(selection, t)
        phone.step(demand, 1.0)
        t += 1.0
    return phone, actuator


def test_fig09_switch_signal(benchmark):
    phone, actuator = benchmark.pedantic(_drive, rounds=1, iterations=1)

    signal = actuator.control_signal(t_end=10.0)
    print()
    print(format_series("Figure 9 -- TTL control signal (t s, V)", signal))
    pack = phone.pack
    print(format_table(
        ["flips", "switch energy (J)", "switch heat (J)"],
        [[actuator.switch_count, pack.switch.energy_spent_j,
          pack.switch.switch_heat_j * actuator.switch_count]],
    ))

    # Four commanded flips, matching the paper's example.
    assert actuator.switch_count >= len(FLIP_TIMES)
    levels = {v for _, v in signal}
    assert levels == {3.5, 0.3}
    # Each flip was billed.
    assert pack.switch.energy_spent_j >= len(FLIP_TIMES) * pack.switch.switch_energy_j
