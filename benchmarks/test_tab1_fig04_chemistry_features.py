"""Table I + Figure 4: chemistry feature table and radar analysis.

Prints the Table I rows with the derived big/LITTLE classification and
the normalised Figure 4 radar values, then checks the paper's two radar
observations: (1) no single chemistry covers all five dimensions, and
(2) a big+LITTLE pair covers the map far better than any single cell,
with the paper's NCA+LMO pick being (near) orthogonal.
"""

from repro.analysis.radar import RADAR_AXES, pair_coverage, pareto_front, radar_rows
from repro.analysis.reporting import format_table
from repro.battery.chemistry import CHEMISTRIES, LMO, NCA, orthogonality


def _build():
    rows = []
    for chem in CHEMISTRIES.values():
        r = chem.ratings
        rows.append([
            f"{chem.formula} ({chem.name})",
            "*" * r.cost_efficiency,
            "*" * r.lifetime,
            "*" * r.discharge_rate,
            "*" * r.energy_density,
            chem.role.value,
        ])
    return rows


def test_tab1_fig04(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Battery", "Cost Eff.", "Lifetime", "Discharge", "Energy Dens.", "Result"],
        rows,
        title="Table I -- battery model",
    ))

    radar = radar_rows()
    print(format_table(
        ["chemistry"] + list(RADAR_AXES),
        [[name] + [f"{row[a]:.2f}" for a in RADAR_AXES]
         for name, row in radar.items()],
        title="Figure 4 -- normalised radar values",
    ))

    # Table I Result column exactly as published.
    expected = {"LCO": "big", "NCA": "big", "LMO": "LITTLE",
                "NMC": "LITTLE", "LFP": "LITTLE", "LTO": "LITTLE"}
    for chem in CHEMISTRIES.values():
        assert chem.role.value == expected[chem.name]

    # Observation 1: no single chemistry dominates the radar.
    front = pareto_front()
    print(f"Pareto front: {[c.name for c in front]}")
    assert len(front) >= 2

    # Observation 2: the big+LITTLE pair covers the radar better than
    # either cell alone, and the paper's pick is orthogonal.
    pair = pair_coverage(NCA, LMO)
    print(f"NCA+LMO pair coverage: {pair:.2f}; "
          f"orthogonality: {orthogonality(NCA, LMO):.2f}")
    assert pair > pair_coverage(NCA, NCA)
    assert pair > pair_coverage(LMO, LMO)
    assert orthogonality(NCA, LMO) > 0.9
