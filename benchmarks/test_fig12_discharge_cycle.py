"""Figure 12: one-discharge-cycle performance, all policies/workloads.

For each of the six evaluation workloads (Geekbench, PCMark, Video and
the three eta-Static mixes) this runs a full discharge cycle under
every policy -- Oracle, Practice, Dual, Heuristic and CAPMAN -- at the
paper's 2500 mAh-per-cell scale, prints the comparison rows, and
asserts the orderings the paper reports:

* every dual-battery policy beats the single-battery Practice phone;
* CAPMAN matches Dual/Heuristic on the stationary Geekbench load and
  beats them on the dynamic ones;
* CAPMAN stays close to the offline Oracle (within ~10% on Video).

The results are cached in the session store for Figures 13/14 and the
headline-number benchmarks.
"""

import pytest

from repro.analysis.reporting import comparison_table, format_series, format_table

from conftest import evaluation_policies, evaluation_workloads, run_sweep

WORKLOADS = list(evaluation_workloads())


def _run_workload(store, workload_name):
    trace = store.trace(workload_name)
    sweep = run_sweep(evaluation_policies(), {workload_name: trace})
    results = sweep.by_policy(trace=workload_name)
    store.fig12[workload_name] = results
    return results


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_fig12_discharge_cycle(benchmark, store, workload_name):
    results = benchmark.pedantic(
        lambda: _run_workload(store, workload_name), rounds=1, iterations=1
    )

    rows = comparison_table(results, reference="Practice")
    print()
    print(format_table(
        ["policy", "service (h)", "vs Practice (%)", "energy (kJ)",
         "switches", "LITTLE ratio", "max T (C)"],
        [[r.policy, r.service_time_s / 3600.0, r.gain_over_reference_pct,
          r.energy_j / 1000.0, r.switch_count, r.little_ratio,
          r.max_cpu_temp_c] for r in rows],
        title=f"Figure 12 -- {workload_name}",
    ))
    soc = results["CAPMAN"].metrics.series("soc")
    print(format_series("  CAPMAN SoC(t)", list(zip(soc.times, soc.values)),
                        max_points=12))

    practice = results["Practice"].service_time_s
    capman = results["CAPMAN"].service_time_s
    dual = results["Dual"].service_time_s
    oracle = results["Oracle"].service_time_s

    # Dual batteries always beat the single-battery phone.
    assert dual > practice
    assert capman > practice * 1.15

    # CAPMAN at least matches Dual; on the stationary Geekbench load
    # the paper itself reports them similar.
    assert capman >= dual * 0.97

    # The offline oracle is an upper reference; CAPMAN stays close
    # (the paper quotes within 9.6% on Video).
    assert capman >= oracle * 0.85
    if workload_name == "Video":
        assert capman >= oracle * 0.9
