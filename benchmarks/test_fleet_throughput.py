"""Fleet-engine throughput: batched device-steps/s vs the scalar loop.

Two legs, both merged into ``BENCH_sim.json`` for
``scripts/bench_gate.py`` (alongside the sweep-engine section written
by ``test_sim_throughput.py``):

* ``"fleet"`` -- a 4096-device Dual-policy fleet (400 mAh, the
  eta-50% trace, profiles cycled across the three phones) through
  :class:`repro.fleet.FleetSimulator`, against the scalar oracle
  (:func:`run_discharge_cycle`) timed on one device per distinct
  configuration.
* ``"capman_fleet"`` -- the same shape with 1024 CAPMAN rows, so the
  figure prices the full learning path: compiled action tables,
  epoch-batched profiler replay and trajectory dedupe (three distinct
  profiles -> three trajectories, every other row a dedupe hit).

Acceptance: at batch >= 1024 the Dual fleet sustains at least ``50x``
and the CAPMAN fleet at least ``20x`` the scalar per-device step
rate, both legs take zero object-replay fallback steps and zero
adapter rows on these (non-depleting) configurations, and their first
rows remain bit-identical to their scalar twins -- the benchmark must
measure the exact engine the differential suite certifies.

Build/packing time is reported but excluded from the steps/s figure:
a fleet is built once and stepped for hours, and the gate's exact
``steps_total`` field already pins the amount of simulated work.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.capman.baselines import DualPolicy
from repro.capman.controller import CapmanPolicy
from repro.device.profiles import PHONES
from repro.fleet import DeviceSpec, FleetSpec
from repro.sim.discharge import run_discharge_cycle
from repro.workload.generators import EtaStaticWorkload
from repro.workload.traces import record_trace

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

BATCH = 4096
CELL_MAH = 400.0
WINDOW_S = 1800.0
TRACE_S = 600.0
CONTROL_DT = 2.0
RECORD_EVERY = 50

#: Minimum batched-vs-serial per-device step-rate ratio (the PR's
#: acceptance floor; both sides are timed on the same host, so the
#: ratio is far more machine-stable than either absolute rate).
MIN_SPEEDUP = 50.0

#: CAPMAN leg: smaller batch (the learning replay is shared, but the
#: scalar side re-learns per device, so the serial baseline is far
#: slower to collect) and a lower floor -- the acceptance criterion
#: from the PR issue is >= 20x at batch >= 1024.
CAPMAN_BATCH = 1024
CAPMAN_MIN_SPEEDUP = 20.0


def _profiles():
    return list(PHONES.values())


def _device(policy, trace, profile) -> DeviceSpec:
    return DeviceSpec(
        policy=policy, trace=trace, profile=profile,
        control_dt=CONTROL_DT, max_duration_s=WINDOW_S,
        record_every=RECORD_EVERY)


def _frozen(result) -> bytes:
    return pickle.dumps(
        dataclasses.replace(result, wall_time_s=0.0, telemetry=None),
        protocol=4)


def _measure(policy_factory, batch):
    trace = record_trace(EtaStaticWorkload(0.5, seed=1), TRACE_S)
    profiles = _profiles()
    devices = [_device(policy_factory(), trace, profiles[i % len(profiles)])
               for i in range(batch)]

    t0 = time.perf_counter()
    sim = FleetSpec(devices).build()
    build_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    results = sim.run()
    run_wall = time.perf_counter() - t0

    # Scalar baseline: one oracle run per distinct configuration.
    scalar_steps = 0
    scalar_wall = 0.0
    scalar_results = []
    for profile in profiles:
        t0 = time.perf_counter()
        ref = run_discharge_cycle(
            policy_factory(), trace, profile=profile,
            control_dt=CONTROL_DT, max_duration_s=WINDOW_S,
            record_every=RECORD_EVERY)
        scalar_wall += time.perf_counter() - t0
        scalar_steps += ref.step_count
        scalar_results.append(ref)

    return sim, results, scalar_results, build_wall, run_wall, \
        scalar_steps, scalar_wall


def test_fleet_throughput(benchmark):
    sim, results, scalar_results, build_wall, run_wall, scalar_steps, \
        scalar_wall = benchmark.pedantic(
            _measure, args=(lambda: DualPolicy(capacity_mah=CELL_MAH), BATCH),
            rounds=1, iterations=1)

    steps_total = sim.steps_total
    fleet_rate = steps_total / max(run_wall, 1e-9)
    scalar_rate = scalar_steps / max(scalar_wall, 1e-9)
    speedup = fleet_rate / max(scalar_rate, 1e-9)

    print()
    print(format_table(
        ["engine", "devices", "device-steps", "wall (s)", "steps/s"],
        [
            ["scalar (serial)", len(scalar_results), scalar_steps,
             scalar_wall, scalar_rate],
            ["fleet (batched)", BATCH, steps_total, run_wall, fleet_rate],
        ],
        title=f"Fleet engine -- batch {BATCH}, Dual @ {CELL_MAH:.0f} mAh, "
              f"speedup {speedup:.1f}x (build {build_wall:.2f}s excluded)",
    ))

    fleet_section = {
        "batch": BATCH,
        "steps_total": steps_total,
        "fallback_steps": sim.fallback_steps,
        "device_steps_per_sec": fleet_rate,
        "scalar_steps_per_sec": scalar_rate,
        "speedup": speedup,
        "build_wall_s": build_wall,
        "run_wall_s": run_wall,
    }
    payload = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    payload["fleet"] = fleet_section
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  merged fleet section into {BENCH_PATH}")

    # The benchmark measures the certified engine: the first row of
    # each distinct configuration is bit-identical to its scalar twin.
    for i, ref in enumerate(scalar_results):
        assert _frozen(results[i]) == _frozen(ref), \
            f"fleet row {i} diverged from scalar under benchmark config"

    # This configuration never depletes, so the whole batch must stay
    # on the vectorised path -- a fallback here is a perf regression.
    assert sim.fallback_steps == 0, fleet_section

    # Work accounting is exact: each device takes precisely the steps
    # its scalar twin takes.
    expected_steps = sum(
        scalar_results[i % len(scalar_results)].step_count
        for i in range(BATCH))
    assert steps_total == expected_steps

    # Acceptance floor: batched stepping is >= 50x serial per-device.
    assert BATCH >= 1024
    assert speedup >= MIN_SPEEDUP, fleet_section


def test_capman_fleet_throughput(benchmark):
    """CAPMAN rows only: the figure prices compiled-table decisions,
    epoch-batched learning and trajectory dedupe, not just the physics."""
    policy_factory = lambda: CapmanPolicy(capacity_mah=CELL_MAH)  # noqa: E731
    sim, results, scalar_results, build_wall, run_wall, scalar_steps, \
        scalar_wall = benchmark.pedantic(
            _measure, args=(policy_factory, CAPMAN_BATCH),
            rounds=1, iterations=1)

    steps_total = sim.steps_total
    fleet_rate = steps_total / max(run_wall, 1e-9)
    scalar_rate = scalar_steps / max(scalar_wall, 1e-9)
    speedup = fleet_rate / max(scalar_rate, 1e-9)

    print()
    print(format_table(
        ["engine", "devices", "device-steps", "wall (s)", "steps/s"],
        [
            ["scalar (serial)", len(scalar_results), scalar_steps,
             scalar_wall, scalar_rate],
            ["fleet (batched)", CAPMAN_BATCH, steps_total, run_wall,
             fleet_rate],
        ],
        title=f"CAPMAN fleet -- batch {CAPMAN_BATCH} @ {CELL_MAH:.0f} mAh, "
              f"speedup {speedup:.1f}x "
              f"({sim.table_compiles} solves, "
              f"{sim.trajectory_dedupe_hits} dedupe hits, "
              f"build {build_wall:.2f}s excluded)",
    ))

    section = {
        "batch": CAPMAN_BATCH,
        "steps_total": steps_total,
        "fallback_steps": sim.fallback_steps,
        "adapter_rows": sim.rows_adapted,
        "rows_vectorised": sim.rows_vectorised,
        "table_compiles": sim.table_compiles,
        "trajectory_dedupe_hits": sim.trajectory_dedupe_hits,
        "device_steps_per_sec": fleet_rate,
        "scalar_steps_per_sec": scalar_rate,
        "speedup": speedup,
        "build_wall_s": build_wall,
        "run_wall_s": run_wall,
    }
    payload = {}
    if BENCH_PATH.exists():
        payload = json.loads(BENCH_PATH.read_text())
    payload["capman_fleet"] = section
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  merged capman_fleet section into {BENCH_PATH}")

    # The benchmark measures the certified engine: one row per distinct
    # profile is checked bit-identical to its scalar twin.
    for i, ref in enumerate(scalar_results):
        assert _frozen(results[i]) == _frozen(ref), \
            f"CAPMAN fleet row {i} diverged from scalar under benchmark"

    # Every row rides the compiled-table vector driver: no adapter
    # rows, no object-replay fallback on this non-depleting config.
    assert sim.rows_adapted == 0, section
    assert sim.fallback_steps == 0, section

    # Three profiles -> three learned trajectories; every other row is
    # a dedupe hit, and solves happen per trajectory, not per row.
    assert sim.trajectory_dedupe_hits == CAPMAN_BATCH - len(scalar_results)
    assert 0 < sim.table_compiles < CAPMAN_BATCH

    # Work accounting is exact: each device takes precisely the steps
    # its scalar twin takes.
    expected_steps = sum(
        scalar_results[i % len(scalar_results)].step_count
        for i in range(CAPMAN_BATCH))
    assert steps_total == expected_steps

    # Acceptance floor from the PR issue: >= 20x at batch >= 1024.
    assert CAPMAN_BATCH >= 1024
    assert speedup >= CAPMAN_MIN_SPEEDUP, section
