"""Figure 1: LMO and NCA release electrons at very different rates.

The paper's Figure 1 shows LMO exchanging more electrons than NCA in
the same time -- i.e. a much higher discharge rate.  We pull a hard
constant power from one cell of each chemistry and report the charge
delivered over time; LMO must deliver charge faster and strand less.
"""

from repro.analysis.reporting import format_series, format_table
from repro.battery.cell import Cell
from repro.battery.chemistry import LMO, NCA

PULL_W = 8.0
DT = 5.0
HORIZON_S = 3.0 * 3600.0


def _discharge_profile(chem):
    cell = Cell(chem, capacity_mah=2500.0)
    t = 0.0
    series = [(0.0, 0.0)]
    delivered_j = 0.0
    first_shortfall_s = None
    while not cell.depleted and t < HORIZON_S:
        res = cell.draw_power(PULL_W, DT)
        delivered_j += res.energy_j
        if res.shortfall and first_shortfall_s is None:
            first_shortfall_s = t
        t += DT
        if int(t) % 600 == 0:
            series.append((t, delivered_j))
    return {
        "chem": chem.name,
        "series": series,
        "delivered_j": delivered_j,
        "stranded_frac": cell.state_of_charge,
        "sustained_s": first_shortfall_s if first_shortfall_s is not None else t,
    }


def test_fig01_discharge_profiles(benchmark):
    results = benchmark.pedantic(
        lambda: [_discharge_profile(LMO), _discharge_profile(NCA)],
        rounds=1, iterations=1,
    )
    lmo, nca = results

    print()
    print(format_table(
        ["chemistry", "energy delivered (J)", "stranded SoC",
         "sustained full power (s)"],
        [[r["chem"], r["delivered_j"], r["stranded_frac"], r["sustained_s"]]
         for r in results],
        title=f"Figure 1 -- electron release under a {PULL_W} W pull",
    ))
    for r in results:
        print(format_series(f"  {r['chem']} cumulative energy", r["series"],
                            max_points=10))

    # Shape: LMO sustains the hard pull far longer (higher discharge
    # rate), delivers more total energy, and strands less charge.
    assert lmo["sustained_s"] > 2.0 * nca["sustained_s"]
    assert lmo["delivered_j"] > nca["delivered_j"]
    assert lmo["stranded_frac"] < nca["stranded_frac"]
