"""Scaling benchmark: fast vs reference Algorithm 1 solvers.

Times both solver flavours on random decision graphs of growing size
and on the profiled CAPMAN MDP, prints the speedup table, and asserts
the acceptance bar: at thirty-plus states (sixty-plus action nodes) the
vectorised solver is at least 5x faster while landing on the same
fixed point to 1e-8.
"""

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.graph import MDPGraph
from repro.core.mdp import random_mdp
from repro.core.similarity import StructuralSimilarity

#: (n_states, n_actions, branching, absorbing) per scale step.
SIZES = [
    (8, 2, 3, 1),
    (16, 2, 3, 2),
    (24, 2, 3, 2),
    (34, 2, 3, 2),
]
TOL = 1e-6
MAX_ITER = 200


def _solve(graph, fast):
    started = time.perf_counter()
    res = StructuralSimilarity(
        graph, c_s=0.95, c_a=0.95, tol=TOL, max_iter=MAX_ITER, fast=fast
    ).solve()
    return res, time.perf_counter() - started


def _scaling_rows():
    rows = []
    for n_states, n_actions, branching, absorbing in SIZES:
        graph = MDPGraph(
            random_mdp(n_states, n_actions, branching=branching, seed=7, absorbing=absorbing)
        )
        ref, ref_s = _solve(graph, fast=False)
        fast, fast_s = _solve(graph, fast=True)
        agreement = float(
            max(
                np.abs(fast.state_sim - ref.state_sim).max(),
                np.abs(fast.action_sim - ref.action_sim).max(),
            )
        )
        rows.append(
            {
                "n_states": n_states,
                "n_actions": graph.n_action_nodes,
                "ref_s": ref_s,
                "fast_s": fast_s,
                "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
                "agreement": agreement,
                "iters": (ref.iterations, fast.iterations),
            }
        )
    return rows


def test_solver_scaling(benchmark):
    rows = benchmark.pedantic(_scaling_rows, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["states", "action nodes", "reference (s)", "fast (s)", "speedup", "max |diff|"],
            [
                [
                    r["n_states"],
                    r["n_actions"],
                    r["ref_s"],
                    r["fast_s"],
                    r["speedup"],
                    r["agreement"],
                ]
                for r in rows
            ],
            title="Algorithm 1 solver scaling -- reference vs fast",
        )
    )

    for r in rows:
        # Same fixed point, same iteration count, everywhere.
        assert r["agreement"] <= 1e-8, r
        assert r["iters"][0] == r["iters"][1], r

    # Acceptance bar: >= 5x at >= 30 states / >= 60 action nodes.
    big = [r for r in rows if r["n_states"] >= 30 and r["n_actions"] >= 60]
    assert big, "scaling sweep must include an acceptance-scale graph"
    for r in big:
        assert r["speedup"] >= 5.0, r

    # Speedup should grow with problem size (vectorisation amortises).
    assert rows[-1]["speedup"] > rows[0]["speedup"]
