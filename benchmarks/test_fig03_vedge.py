"""Figure 3: V-edge voltage dynamics and the D1/D2/D3 saving areas.

Reproduces the paper's two measured scenarios -- a video-streaming
load step and a screen-on load step -- on both chemistries, printing
the voltage trajectory and the decomposition.  The exploitable area is
``D3 - D1``: the LITTLE battery minimises D1, the big battery
maximises D3.
"""

from repro.analysis.fitting import fit_polynomial
from repro.analysis.reporting import format_series, format_table
from repro.battery.cell import Cell
from repro.battery.chemistry import LMO, NCA
from repro.battery.vedge import analyze_vedge, simulate_step_response

SCENARIOS = {
    # (power W, step s, rest s) -- video stream fetch and screen-on.
    "Video": (2.6, 30.0, 120.0),
    "Screen ON/OFF": (1.5, 8.0, 60.0),
}


def _run_scenario(power, step_s, rest_s):
    out = {}
    for chem in (NCA, LMO):
        trace = simulate_step_response(Cell(chem), power, step_s, rest_s, dt=0.1)
        out[chem.name] = (trace, analyze_vedge(trace))
    return out


def test_fig03_vedge(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run_scenario(*params) for name, params in SCENARIOS.items()},
        rounds=1, iterations=1,
    )

    print()
    for scenario, per_chem in results.items():
        rows = []
        for chem_name, (trace, analysis) in per_chem.items():
            rows.append([
                chem_name,
                analysis.d1,
                analysis.d2,
                analysis.d3,
                analysis.saving_potential,
            ])
            points = list(zip(trace.times, trace.voltages))
            print(format_series(f"  {scenario}/{chem_name} V(t)", points,
                                max_points=12))
            # The paper overlays a fitted curve on the scatter.
            fit = fit_polynomial(trace.times, trace.voltages, degree=3)
            print(f"    cubic fit R^2 = {fit.r2:.4f}")
        print(format_table(
            ["chemistry", "D1 (V*s)", "D2 (V*s)", "D3 (V*s)", "D3 - D1"],
            rows,
            title=f"Figure 3 -- {scenario} load step",
        ))

    for scenario, per_chem in results.items():
        _, big = per_chem["NCA"]
        _, little = per_chem["LMO"]
        # LITTLE minimises the step sag; big maximises the recovery area.
        assert little.d1 < big.d1, scenario
        assert big.d3 > little.d3, scenario
        # The V-edge shape itself: settle below the initial voltage.
        trace, _ = per_chem["NCA"]
        assert min(trace.voltages) < trace.voltages[-1] <= trace.initial_voltage + 1e-6
