"""Tables II + III: component power models and per-state powers.

Prints the Table III state powers for the tested phones and verifies
the Table II parametric models are anchored to them (CPU slopes per
frequency, screen brightness slope, WiFi piecewise threshold).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.device.power import PAPER_STATE_POWER_MW
from repro.device.profiles import PHONES
from repro.device.states import CpuState, ScreenState, TecState, WifiState


def _rows():
    rows = []
    for phone in PHONES.values():
        t = phone.power_table
        rows.append([
            phone.name,
            t.cpu_mw[CpuState.C0],
            t.cpu_mw[CpuState.C1],
            t.cpu_mw[CpuState.C2],
            t.cpu_mw[CpuState.SLEEP],
            t.screen_mw[ScreenState.OFF],
            t.screen_mw[ScreenState.ON],
            t.wifi_mw[WifiState.IDLE],
            t.wifi_mw[WifiState.ACCESS],
            t.wifi_mw[WifiState.SEND],
            t.tec_mw[TecState.ON],
        ])
    return rows


def test_tab3_power_states(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print()
    print(format_table(
        ["phone", "C0", "C1", "C2", "sleep", "scr off", "scr on",
         "wifi idle", "wifi acc", "wifi send", "TEC on"],
        rows,
        title="Table III -- average power (mW) of all hardware states",
    ))

    nexus = PHONES["Nexus"]
    table = nexus.power_table

    # Table III numbers reproduced exactly on the reference phone.
    assert table.cpu_mw[CpuState.C0] == PAPER_STATE_POWER_MW["cpu"]["C0"]
    assert table.wifi_mw[WifiState.SEND] == PAPER_STATE_POWER_MW["wifi"]["send"]
    assert table.tec_mw[TecState.ON] == pytest.approx(29.17)

    # Table II anchoring: CPU model at 100% utilisation reproduces the
    # per-C-state powers.
    for freq, cstate in ((2, CpuState.C0), (1, CpuState.C1), (0, CpuState.C2)):
        assert nexus.cpu_model.power_mw(100.0, freq) == pytest.approx(
            table.cpu_mw[cstate], rel=0.01
        )

    # WiFi piecewise threshold: low regime below t, high above.
    wifi = nexus.wifi_model
    assert wifi.power_mw(wifi.threshold_kbps * 2) > 3 * wifi.power_mw(
        wifi.threshold_kbps * 0.5
    )

    # Screen slope anchored so full brightness lands near the table.
    assert nexus.screen_model.power_mw(255) == pytest.approx(
        table.screen_mw[ScreenState.ON], rel=0.05
    )
