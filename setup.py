"""Legacy setup shim.

The sandbox's setuptools lacks the ``wheel`` package, so PEP 660
editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) works through this shim.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
