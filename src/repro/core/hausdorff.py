"""Hausdorff distance between finite sets under a custom metric.

Algorithm 1 compares two state nodes by the Hausdorff distance between
their action-node neighbourhoods, measured with the current action
distance ``delta_A``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["directed_hausdorff", "hausdorff", "hausdorff_matrix"]

T = TypeVar("T")


def directed_hausdorff(
    a: Sequence[T], b: Sequence[T], distance: Callable[[T, T], float]
) -> float:
    """``sup_{x in a} inf_{y in b} d(x, y)``.

    Empty ``a`` contributes 0 (nothing to cover); empty ``b`` with a
    non-empty ``a`` is infinitely far, reported as 1.0 since all our
    metrics are normalised to [0, 1].
    """
    if not a:
        return 0.0
    if not b:
        return 1.0
    worst = 0.0
    for x in a:
        best = min(distance(x, y) for y in b)
        if best > worst:
            worst = best
    return worst


def hausdorff(
    a: Sequence[T], b: Sequence[T], distance: Callable[[T, T], float]
) -> float:
    """Symmetric Hausdorff distance ``max(h(a,b), h(b,a))``."""
    return max(
        directed_hausdorff(a, b, distance),
        directed_hausdorff(b, a, distance),
    )


def hausdorff_matrix(pairwise: np.ndarray) -> float:
    """Symmetric Hausdorff distance from a precomputed distance matrix.

    ``pairwise[x, y]`` is ``d(a[x], b[y])``; this is the vectorised
    form the fast Algorithm 1 path uses once the action-distance matrix
    exists.  Empty-set conventions match :func:`directed_hausdorff`.
    """
    rows, cols = pairwise.shape
    if rows == 0 and cols == 0:
        return 0.0
    if rows == 0 or cols == 0:
        return 1.0
    return float(
        max(pairwise.min(axis=1).max(), pairwise.min(axis=0).max())
    )
