"""Earth Mover's Distance between finite distributions.

Used by Algorithm 1 to compare the next-state distributions of two
action nodes under the current state-distance metric.  The general
case reduces to a small balanced transportation problem solved by the
SSP min-cost-flow kernel; a closed-form fast path handles
one-dimensional ground distances.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Sequence, TypeVar

from .minflow import transport

__all__ = ["emd", "emd_dicts", "emd_1d"]

T = TypeVar("T", bound=Hashable)

_EPS = 1e-12


def emd(
    p: Sequence[float],
    q: Sequence[float],
    ground: Sequence[Sequence[float]],
) -> float:
    """EMD between two probability vectors.

    ``ground[i][j]`` is the ground distance from ``p``'s support point
    ``i`` to ``q``'s support point ``j`` -- the supports may differ
    (``ground`` is then rectangular).  Both vectors are normalised
    defensively; the result lies in ``[0, max(ground)]``.
    """
    if len(p) == 0 or len(q) == 0:
        raise ValueError("empty distributions")
    if len(ground) != len(p) or any(len(row) != len(q) for row in ground):
        raise ValueError("ground matrix shape must be len(p) x len(q)")
    sp, sq = sum(p), sum(q)
    if sp <= _EPS or sq <= _EPS:
        raise ValueError("distributions must have positive mass")
    pn = [x / sp for x in p]
    qn = [x / sq for x in q]
    # Fast path: identical distributions over an aligned support (the
    # diagonal must be zero, i.e. index i really is the same point).
    if (
        len(pn) == len(qn)
        and all(abs(a - b) <= 1e-12 for a, b in zip(pn, qn))
        and all(abs(ground[i][i]) <= 1e-12 for i in range(len(pn)))
    ):
        return 0.0
    return transport(pn, qn, ground)


def emd_dicts(
    p: Mapping[T, float],
    q: Mapping[T, float],
    distance: Callable[[T, T], float],
) -> float:
    """EMD between sparse distributions keyed by arbitrary points.

    This is the form Algorithm 1 needs: ``p`` and ``q`` are next-state
    distributions of two action nodes, and ``distance`` is the current
    state-distance estimate ``delta_S``.
    """
    if not p or not q:
        raise ValueError("distributions must be non-empty")
    keys_p = list(p)
    keys_q = list(q)
    ground = [[float(distance(a, b)) for b in keys_q] for a in keys_p]
    return emd([p[k] for k in keys_p], [q[k] for k in keys_q], ground)


def emd_1d(p: Sequence[float], q: Sequence[float],
           positions: Sequence[float]) -> float:
    """Closed-form EMD when support points live on a line.

    Equals the integral of the absolute difference of CDFs (weighted by
    gaps between sorted positions); used as a cross-check for the flow
    solver in tests.
    """
    if not (len(p) == len(q) == len(positions)):
        raise ValueError("inputs must have equal length")
    order = sorted(range(len(positions)), key=lambda i: positions[i])
    sp, sq = sum(p), sum(q)
    if sp <= _EPS or sq <= _EPS:
        raise ValueError("distributions must have positive mass")
    cdf_gap = 0.0
    total = 0.0
    for idx in range(len(order) - 1):
        i = order[idx]
        cdf_gap += p[i] / sp - q[i] / sq
        gap = positions[order[idx + 1]] - positions[i]
        total += abs(cdf_gap) * gap
    return total
