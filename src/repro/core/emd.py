"""Earth Mover's Distance between finite distributions.

Used by Algorithm 1 to compare the next-state distributions of two
action nodes under the current state-distance metric.  The general
case reduces to a small balanced transportation problem solved by the
SSP min-cost-flow kernel; a closed-form fast path handles
one-dimensional ground distances.

:class:`PairwiseEMD` is the vectorised/memoised engine behind the fast
Algorithm 1 solver: it compiles a fixed family of sparse distributions
once (dense support index arrays instead of per-pair dict lookups) and
then refreshes *all* pairwise EMDs against an updated ground metric
with a few NumPy operations per support-shape group.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, TypeVar

import numpy as np

from .minflow import transport, transport_dense

__all__ = ["emd", "emd_dicts", "emd_1d", "EMDStats", "PairwiseEMD"]

T = TypeVar("T", bound=Hashable)

_EPS = 1e-12


def emd(
    p: Sequence[float],
    q: Sequence[float],
    ground: Sequence[Sequence[float]],
) -> float:
    """EMD between two probability vectors.

    ``ground[i][j]`` is the ground distance from ``p``'s support point
    ``i`` to ``q``'s support point ``j`` -- the supports may differ
    (``ground`` is then rectangular).  Both vectors are normalised
    defensively; the result lies in ``[0, max(ground)]``.
    """
    if len(p) == 0 or len(q) == 0:
        raise ValueError("empty distributions")
    if len(ground) != len(p) or any(len(row) != len(q) for row in ground):
        raise ValueError("ground matrix shape must be len(p) x len(q)")
    sp, sq = sum(p), sum(q)
    if sp <= _EPS or sq <= _EPS:
        raise ValueError("distributions must have positive mass")
    pn = [x / sp for x in p]
    qn = [x / sq for x in q]
    # Fast path: identical distributions over an aligned support (the
    # diagonal must be zero, i.e. index i really is the same point).
    if (
        len(pn) == len(qn)
        and all(abs(a - b) <= 1e-12 for a, b in zip(pn, qn))
        and all(abs(ground[i][i]) <= 1e-12 for i in range(len(pn)))
    ):
        return 0.0
    return transport(pn, qn, ground)


def emd_dicts(
    p: Mapping[T, float],
    q: Mapping[T, float],
    distance: Callable[[T, T], float],
) -> float:
    """EMD between sparse distributions keyed by arbitrary points.

    This is the form Algorithm 1 needs: ``p`` and ``q`` are next-state
    distributions of two action nodes, and ``distance`` is the current
    state-distance estimate ``delta_S``.
    """
    if not p or not q:
        raise ValueError("distributions must be non-empty")
    keys_p = list(p)
    keys_q = list(q)
    ground = [[float(distance(a, b)) for b in keys_q] for a in keys_p]
    return emd([p[k] for k in keys_p], [q[k] for k in keys_q], ground)


def emd_1d(p: Sequence[float], q: Sequence[float],
           positions: Sequence[float]) -> float:
    """Closed-form EMD when support points live on a line.

    Equals the integral of the absolute difference of CDFs (weighted by
    gaps between sorted positions); used as a cross-check for the flow
    solver in tests.
    """
    if not (len(p) == len(q) == len(positions)):
        raise ValueError("inputs must have equal length")
    order = sorted(range(len(positions)), key=lambda i: positions[i])
    sp, sq = sum(p), sum(q)
    if sp <= _EPS or sq <= _EPS:
        raise ValueError("distributions must have positive mass")
    cdf_gap = 0.0
    total = 0.0
    for idx in range(len(order) - 1):
        i = order[idx]
        cdf_gap += p[i] / sp - q[i] / sq
        gap = positions[order[idx + 1]] - positions[i]
        total += abs(cdf_gap) * gap
    return total


# ----------------------------------------------------------------------
# Vectorised pairwise EMD engine
# ----------------------------------------------------------------------

#: Largest spanning-tree count handled by the vertex-enumeration batch
#: path.  K_{m,n} has m^(n-1) * n^(m-1) spanning trees: 81 for 3x3, 432
#: for 3x4, 192 for 2x6 -- all well under this cap; 4x4 (4096) and up
#: fall back to the per-pair SSP behind the memo/reuse caches.
_BATCH_MAX_TREES = 512

#: Upper bound on a group's precomputed flow tensor (elements); larger
#: groups are demoted to the per-pair path to bound memory.
_BATCH_MAX_ELEMENTS = 20_000_000


def _n_trees(m: int, n: int) -> int:
    """Spanning trees of the complete bipartite graph K_{m,n}."""
    return m ** (n - 1) * n ** (m - 1)

#: Cached spanning-tree bases per transport shape: (edge indices, solve maps).
_BASES: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _transport_bases(m: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """All spanning-tree bases of the m x n transportation problem.

    Returns ``(edges, solve)`` where ``edges[t]`` lists the flat
    ``i * n + j`` edge indices of tree ``t`` and ``solve[t]`` maps the
    marginal vector ``[p; q]`` to the tree's basic flows.  Every vertex
    of the transportation polytope is the basic solution of at least
    one spanning tree, so minimising the flow cost over all feasible
    bases is exactly the linear-programming optimum.
    """
    key = (m, n)
    cached = _BASES.get(key)
    if cached is not None:
        return cached
    n_nodes = m + n
    n_basis = n_nodes - 1
    edge_list = [(i, j) for i in range(m) for j in range(n)]
    edges_out: List[List[int]] = []
    solves: List[np.ndarray] = []
    for combo in itertools.combinations(range(len(edge_list)), n_basis):
        # Union-find acyclicity check: n_nodes-1 edges + no cycle = tree.
        parent = list(range(n_nodes))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        is_tree = True
        for e in combo:
            i, j = edge_list[e]
            ri, rj = find(i), find(m + j)
            if ri == rj:
                is_tree = False
                break
            parent[ri] = rj
        if not is_tree:
            continue
        # Incidence system: row sums give p, column sums give q.
        a = np.zeros((n_nodes, n_basis))
        for col, e in enumerate(combo):
            i, j = edge_list[e]
            a[i, col] = 1.0
            a[m + j, col] = 1.0
        solves.append(np.linalg.pinv(a))
        edges_out.append([edge_list[e][0] * n + edge_list[e][1] for e in combo])
    result = (np.array(edges_out, dtype=np.intp), np.stack(solves))
    _BASES[key] = result
    return result


@dataclass
class EMDStats:
    """Counters describing how a :class:`PairwiseEMD` refresh was served."""

    #: Pair distances requested in total.
    calls: int = 0
    #: Served by the vectorised vertex-enumeration batch path.
    batched: int = 0
    #: Served by the 1 x n / n x 1 closed form.
    closed_form: int = 0
    #: Dense SSP transport solves actually run.
    solves: int = 0
    #: Identical (weights, ground) instances answered from the memo.
    memo_hits: int = 0
    #: Pairs whose ground moved less than ``reuse_tol`` since last solve.
    reuse_hits: int = 0

    def merge(self, other: "EMDStats") -> None:
        self.calls += other.calls
        self.batched += other.batched
        self.closed_form += other.closed_form
        self.solves += other.solves
        self.memo_hits += other.memo_hits
        self.reuse_hits += other.reuse_hits


@dataclass
class _PairGroup:
    """Pairs sharing one (support_i, support_j) shape, batched together."""

    rows: np.ndarray  # (n_pairs,) first-distribution indices
    cols: np.ndarray  # (n_pairs,) second-distribution indices
    p_idx: np.ndarray  # (n_pairs, k_i) support index matrix
    q_idx: np.ndarray  # (n_pairs, k_j)
    p_w: np.ndarray  # (n_pairs, k_i) normalised weights
    q_w: np.ndarray  # (n_pairs, k_j)
    #: Pre-solved basic flows (n_pairs, n_trees, n_basis), enumeration path.
    flows: Optional[np.ndarray] = None
    #: (n_pairs, n_trees) mask of feasible (non-negative) bases.
    feasible: Optional[np.ndarray] = None


class PairwiseEMD:
    """Memoised, vectorised EMD over a fixed family of distributions.

    Compiled once per similarity solve: each distribution's support is
    turned into a dense index array into the ground metric, and pairs
    are grouped by support shape so a refresh gathers every pair's
    ground matrix with one fancy-indexing operation per group.

    Three serving tiers, cheapest first:

    * supports of size 1 on either side -- closed-form dot product;
    * both supports at most :data:`_BATCH_MAX_SUPPORT` -- exact LP by
      enumerating all spanning-tree bases of the transportation
      polytope, fully vectorised across pairs (the basic flows depend
      only on the weights, so they are pre-solved at compile time and
      each refresh only re-prices them against the new ground);
    * larger supports -- per-pair dense SSP (:func:`transport_dense`)
      behind two caches: an exact memo keyed by (weights, ground bytes)
      and a *reuse* cache that skips the solve while the pair's ground
      matrix moved less than ``reuse_tol`` in sup norm since the last
      solve.  EMD is 1-Lipschitz in the ground sup norm (total
      transported mass is 1), so a reused value is within ``reuse_tol``
      of the exact distance -- that is the cache invalidation rule.
    """

    def __init__(
        self,
        dists: Sequence[Mapping[T, float]],
        index: Mapping[T, int],
        reuse_tol: float = 0.0,
        memo_limit: int = 200_000,
    ) -> None:
        if reuse_tol < 0:
            raise ValueError("reuse_tol must be non-negative")
        self.reuse_tol = reuse_tol
        self.memo_limit = memo_limit
        self.stats = EMDStats()
        self.n = len(dists)
        self._sup_idx: List[np.ndarray] = []
        self._weights: List[List[float]] = []
        self._w_np: List[np.ndarray] = []
        self._w_bytes: List[bytes] = []
        for d in dists:
            if not d:
                raise ValueError("distributions must be non-empty")
            keys = list(d)
            raw = [float(d[k]) for k in keys]
            total = sum(raw)
            if total <= _EPS:
                raise ValueError("distributions must have positive mass")
            w = [x / total for x in raw]
            arr = np.array(w)
            self._sup_idx.append(np.array([index[k] for k in keys], dtype=np.intp))
            self._weights.append(w)
            self._w_np.append(arr)
            self._w_bytes.append(arr.tobytes())

        by_shape: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._large_pairs: List[Tuple[int, int]] = []
        for i in range(self.n):
            ki = len(self._sup_idx[i])
            for j in range(i + 1, self.n):
                kj = len(self._sup_idx[j])
                if ki == 1 or kj == 1 or _n_trees(ki, kj) <= _BATCH_MAX_TREES:
                    by_shape.setdefault((ki, kj), []).append((i, j))
                else:
                    self._large_pairs.append((i, j))

        self._groups: Dict[Tuple[int, int], _PairGroup] = {}
        for shape, pairs in by_shape.items():
            ki, kj = shape
            if ki > 1 and kj > 1:
                flow_elements = len(pairs) * _n_trees(ki, kj) * (ki + kj - 1)
                if flow_elements > _BATCH_MAX_ELEMENTS:
                    self._large_pairs.extend(pairs)
                    continue
            rows = np.array([p[0] for p in pairs], dtype=np.intp)
            cols = np.array([p[1] for p in pairs], dtype=np.intp)
            group = _PairGroup(
                rows=rows,
                cols=cols,
                p_idx=np.stack([self._sup_idx[i] for i in rows]),
                q_idx=np.stack([self._sup_idx[j] for j in cols]),
                p_w=np.stack([self._w_np[i] for i in rows]),
                q_w=np.stack([self._w_np[j] for j in cols]),
            )
            if ki > 1 and kj > 1:
                _, solve = _transport_bases(ki, kj)
                marginals = np.concatenate([group.p_w, group.q_w], axis=1)
                # flows[p, t, k]: basic flow of tree t's k-th edge for pair p.
                group.flows = np.einsum("tkc,pc->ptk", solve, marginals)
                group.feasible = (group.flows >= -1e-10).all(axis=2)
            self._groups[shape] = group

        #: Per-pair (ground, value) of the last actual solve (large pairs).
        self._pair_cache: Dict[Tuple[int, int], Tuple[np.ndarray, float]] = {}
        #: Exact memo over (weights_i, weights_j, ground bytes).
        self._memo: Dict[Tuple[bytes, bytes, bytes], float] = {}

    # ------------------------------------------------------------------
    def refresh(self, delta: np.ndarray) -> np.ndarray:
        """All pairwise EMDs under the ground metric ``delta``.

        ``delta`` is a dense point-distance matrix indexed by the
        support indices the engine was compiled with.  Returns a
        symmetric ``n x n`` matrix with a zero diagonal.
        """
        out = np.zeros((self.n, self.n))
        stats = self.stats
        for (ki, kj), group in self._groups.items():
            n_pairs = len(group.rows)
            ground = delta[group.p_idx[:, :, None], group.q_idx[:, None, :]]
            if ki == 1:
                values = np.einsum("pj,pj->p", ground[:, 0, :], group.q_w)
                stats.closed_form += n_pairs
            elif kj == 1:
                values = np.einsum("pi,pi->p", ground[:, :, 0], group.p_w)
                stats.closed_form += n_pairs
            else:
                edges, _ = _transport_bases(ki, kj)
                priced = ground.reshape(n_pairs, ki * kj)[:, edges]
                costs = np.einsum("ptk,ptk->pt", group.flows, priced)
                costs = np.where(group.feasible, costs, np.inf)
                values = costs.min(axis=1)
                stats.batched += n_pairs
            values = np.maximum(values, 0.0)
            out[group.rows, group.cols] = values
            out[group.cols, group.rows] = values
            stats.calls += n_pairs

        for i, j in self._large_pairs:
            value = self._distance_large(i, j, delta)
            out[i, j] = value
            out[j, i] = value
            stats.calls += 1
        return out

    # ------------------------------------------------------------------
    def _distance_large(self, i: int, j: int, delta: np.ndarray) -> float:
        gi, gj = self._sup_idx[i], self._sup_idx[j]
        ground = delta[gi[:, None], gj]
        cached = self._pair_cache.get((i, j))
        if cached is not None:
            prev_ground, prev_value = cached
            if float(np.abs(ground - prev_ground).max()) <= self.reuse_tol:
                self.stats.reuse_hits += 1
                return prev_value
        key = (self._w_bytes[i], self._w_bytes[j], ground.tobytes())
        value = self._memo.get(key)
        if value is None:
            value = max(
                0.0,
                transport_dense(self._weights[i], self._weights[j], ground.tolist()),
            )
            if len(self._memo) >= self.memo_limit:
                self._memo.clear()
            self._memo[key] = value
            self.stats.solves += 1
        else:
            self.stats.memo_hits += 1
        self._pair_cache[(i, j)] = (ground, value)
        return value
