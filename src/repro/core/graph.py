"""The bipartite MDP graph ``G_M = (V, Lambda, E, Psi, p, r)``.

Paper Section III-B: state nodes ``V`` and action nodes ``Lambda`` form
a directed bipartite graph.  *Decision edges* ``E`` run from a state to
each action available there (unweighted); *transition edges* ``Psi``
run from an action node to its successor states, weighted by
probability ``p`` and reward ``r``.  The graph corresponds one-to-one
with the MDP, so solving on the graph solves the MDP.

The paper only materialises action nodes that connect states with
*different battery selections* (switch decisions); pass an
``action_filter`` to reproduce that pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from .mdp import MDP, Action, State

__all__ = ["ActionNode", "MDPGraph"]


@dataclass(frozen=True)
class ActionNode:
    """An action node: one (state, action) pair of the MDP."""

    state: State
    action: Action

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ActionNode({self.state!r}, {self.action!r})"


class MDPGraph:
    """Bipartite graph view over an :class:`~repro.core.mdp.MDP`."""

    def __init__(
        self,
        mdp: MDP,
        action_filter: Optional[Callable[[State, Action, Dict[State, float]], bool]] = None,
    ) -> None:
        self.mdp = mdp
        #: State nodes V (all MDP states are kept).
        self.state_nodes: List[State] = list(mdp.states)
        #: Action nodes Lambda, possibly filtered.
        self.action_nodes: List[ActionNode] = []
        #: Decision edges E: state -> its action nodes.
        self._decisions: Dict[State, List[ActionNode]] = {s: [] for s in mdp.states}
        #: Transition edges Psi: action node -> {successor: (p, r)}.
        self._transitions: Dict[ActionNode, Dict[State, Tuple[float, float]]] = {}

        for (s, a), dist in mdp.transitions.items():
            if action_filter is not None and not action_filter(s, a, dist):
                continue
            node = ActionNode(s, a)
            self.action_nodes.append(node)
            self._decisions[s].append(node)
            self._transitions[node] = {
                sp: (p, mdp.reward(s, a, sp)) for sp, p in dist.items()
            }

        self._state_index = {s: i for i, s in enumerate(self.state_nodes)}
        self._action_index = {n: i for i, n in enumerate(self.action_nodes)}

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def n_state_nodes(self) -> int:
        """|V|."""
        return len(self.state_nodes)

    @property
    def n_action_nodes(self) -> int:
        """|Lambda|."""
        return len(self.action_nodes)

    def out_actions(self, state: State) -> List[ActionNode]:
        """Action-node out-neighbours ``N_u`` of a state node."""
        return list(self._decisions[state])

    def successor_dist(self, node: ActionNode) -> Dict[State, float]:
        """Transition distribution ``p_a`` of an action node."""
        return {sp: pr[0] for sp, pr in self._transitions[node].items()}

    def rewards_of(self, node: ActionNode) -> Dict[State, float]:
        """Per-successor rewards of an action node."""
        return {sp: pr[1] for sp, pr in self._transitions[node].items()}

    def mean_reward(self, node: ActionNode) -> float:
        """``mu`` -- the expected one-step reward of the action node."""
        return sum(p * r for p, r in self._transitions[node].values())

    def is_absorbing(self, state: State) -> bool:
        """A state node with zero out-degree (scheduling target)."""
        return not self._decisions[state]

    @property
    def absorbing_states(self) -> List[State]:
        """All absorbing state nodes."""
        return [s for s in self.state_nodes if self.is_absorbing(s)]

    def state_index(self, state: State) -> int:
        """Dense index of a state node."""
        return self._state_index[state]

    def action_index(self, node: ActionNode) -> int:
        """Dense index of an action node."""
        return self._action_index[node]

    def max_action_out_degree(self) -> int:
        """``K_max``: the largest successor count of any action node."""
        if not self.action_nodes:
            return 0
        return max(len(self._transitions[n]) for n in self.action_nodes)

    def max_state_out_degree(self) -> int:
        """``L_max``: the largest action count of any state node."""
        if not self.state_nodes:
            return 0
        return max(len(v) for v in self._decisions.values())
