"""Core contribution: MDP, bipartite graph, structural similarity,
exact solvers, competitiveness bounds, and the online scheduler."""

from .abstraction import Clustering, abstract_mdp, cluster_states, lift_policy
from .bounds import (
    BoundCheck,
    competitiveness_factor,
    value_difference_bound,
    verify_action_bound,
    verify_value_bound,
)
from .emd import EMDStats, PairwiseEMD, emd, emd_1d, emd_dicts
from .graph import ActionNode, MDPGraph
from .hausdorff import directed_hausdorff, hausdorff, hausdorff_matrix
from .mdp import MDP, random_mdp
from .minflow import MinCostFlow, transport, transport_dense
from .online import DecisionRecord, OnlineScheduler, SchedulerStats
from .policy import Policy, RandomPolicy, TabularPolicy, rollout_return
from .similarity import SimilarityResult, SolverStats, StructuralSimilarity
from .solver import Solution, policy_evaluation, policy_iteration, value_iteration

__all__ = [
    "Clustering",
    "abstract_mdp",
    "cluster_states",
    "lift_policy",
    "BoundCheck",
    "competitiveness_factor",
    "value_difference_bound",
    "verify_action_bound",
    "verify_value_bound",
    "EMDStats",
    "PairwiseEMD",
    "emd",
    "emd_1d",
    "emd_dicts",
    "ActionNode",
    "MDPGraph",
    "directed_hausdorff",
    "hausdorff",
    "hausdorff_matrix",
    "MDP",
    "random_mdp",
    "MinCostFlow",
    "transport",
    "transport_dense",
    "DecisionRecord",
    "OnlineScheduler",
    "SchedulerStats",
    "Policy",
    "RandomPolicy",
    "TabularPolicy",
    "rollout_return",
    "SimilarityResult",
    "SolverStats",
    "StructuralSimilarity",
    "Solution",
    "policy_evaluation",
    "policy_iteration",
    "value_iteration",
]
