"""Policy objects over MDPs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

import numpy as np

from .mdp import MDP, Action, State

__all__ = ["Policy", "TabularPolicy", "RandomPolicy", "rollout_return"]


class Policy:
    """Maps a state to an action (None on absorbing states)."""

    def action(self, state: State) -> Optional[Action]:
        """The action to take in ``state``."""
        raise NotImplementedError


@dataclass
class TabularPolicy(Policy):
    """A fixed lookup-table policy."""

    table: Dict[State, Action]

    def action(self, state: State) -> Optional[Action]:
        return self.table.get(state)


@dataclass
class RandomPolicy(Policy):
    """Uniform random over available actions; the exploration default."""

    mdp: MDP
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def action(self, state: State) -> Optional[Action]:
        acts = self.mdp.available_actions(state)
        if not acts:
            return None
        return acts[int(self._rng.integers(len(acts)))]


def rollout_return(
    mdp: MDP,
    policy: Policy,
    start: State,
    rho: float,
    horizon: int = 200,
    n_rollouts: int = 32,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the discounted return (Eq. 6) under a policy."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(n_rollouts):
        s = start
        discount = 1.0
        acc = 0.0
        for _ in range(horizon):
            a = policy.action(s)
            if a is None:
                break
            sp = mdp.sample_successor(s, a, rng)
            acc += discount * mdp.reward(s, a, sp)
            discount *= rho
            s = sp
        total += acc
    return total / n_rollouts
