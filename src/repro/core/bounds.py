"""The competitiveness bound (paper Eq. 10 and Theorem, Section III-D).

With ``C_S = 1`` and ``C_A = rho`` the converged structural distances
bound optimal-value differences:

    |V*_u - V*_v|  <=  delta_S*(u, v) / (1 - rho)
    |Q*_a - Q*_b|  <=  delta_A*(a, b) / (1 - rho)

Since rewards live in [0, 1] and ``sum rho^k = 1/(1-rho)``, a scheduler
that acts from a state's nearest structural neighbour is within
``O(1/(1-rho))`` of the optimal policy -- the paper's worst-case
competitiveness.  This module provides the bound arithmetic and
empirical verifiers used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .mdp import MDP
from .similarity import SimilarityResult
from .solver import Solution

__all__ = [
    "value_difference_bound",
    "competitiveness_factor",
    "BoundCheck",
    "verify_value_bound",
    "verify_action_bound",
]

State = Hashable


def value_difference_bound(delta: float, rho: float) -> float:
    """``delta / (1 - rho)`` -- the Eq. (10) right-hand side."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    if delta < 0:
        raise ValueError("distance must be non-negative")
    return delta / (1.0 - rho)


def competitiveness_factor(rho: float) -> float:
    """The worst-case competitiveness ``O(1/(1-rho))`` headline factor.

    E.g. the paper's example: rho = 0.05 gives ~1.05-competitiveness.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    return 1.0 / (1.0 - rho)


@dataclass(frozen=True)
class BoundCheck:
    """Outcome of checking Eq. (10) over all pairs."""

    pairs_checked: int
    violations: int
    worst_gap: float
    #: The pair realising the worst gap (diagnostic).
    worst_pair: Tuple[State, State]

    @property
    def holds(self) -> bool:
        """True when no pair violates the bound (beyond tolerance)."""
        return self.violations == 0


def verify_value_bound(
    mdp: MDP,
    solution: Solution,
    similarity: SimilarityResult,
    rho: float,
    tolerance: float = 1e-3,
) -> BoundCheck:
    """Check ``|V*_u - V*_v| <= delta_S*(u,v)/(1-rho)`` on every pair.

    ``tolerance`` absorbs fixed-point and EMD solver residuals.
    """
    states: List[State] = list(mdp.states)
    violations = 0
    worst_gap = -float("inf")
    worst_pair: Tuple[State, State] = (states[0], states[0])
    checked = 0
    for i, u in enumerate(states):
        for v in states[i + 1:]:
            checked += 1
            lhs = abs(solution.value(u) - solution.value(v))
            rhs = value_difference_bound(similarity.delta_s(u, v), rho)
            gap = lhs - rhs
            if gap > worst_gap:
                worst_gap = gap
                worst_pair = (u, v)
            if gap > tolerance:
                violations += 1
    return BoundCheck(checked, violations, worst_gap, worst_pair)


def verify_action_bound(
    mdp: MDP,
    solution: Solution,
    similarity: SimilarityResult,
    rho: float,
    tolerance: float = 1e-3,
) -> BoundCheck:
    """Check ``|Q*_a - Q*_b| <= delta_A*(a,b)/(1-rho)`` on every pair."""
    nodes = similarity.graph.action_nodes
    violations = 0
    worst_gap = -float("inf")
    worst_pair = (nodes[0], nodes[0]) if nodes else (None, None)
    checked = 0
    for i, a in enumerate(nodes):
        qa = solution.q_values[(a.state, a.action)]
        for b in nodes[i + 1:]:
            checked += 1
            qb = solution.q_values[(b.state, b.action)]
            lhs = abs(qa - qb)
            rhs = value_difference_bound(similarity.delta_a(a, b), rho)
            gap = lhs - rhs
            if gap > worst_gap:
                worst_gap = gap
                worst_pair = (a, b)
            if gap > tolerance:
                violations += 1
    return BoundCheck(checked, violations, worst_gap, worst_pair)
