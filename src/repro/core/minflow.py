"""Minimum-cost flow by successive shortest paths (SSP).

The paper's Algorithm 1 computes Earth Mover's Distances with the SSP
algorithm of Jewell (1962); we implement SSP with Dijkstra over reduced
costs (Johnson potentials) so each augmentation is a non-negative-edge
shortest-path run.  Capacities and costs are floats, as the transport
problems come from probability distributions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["MinCostFlow", "transport", "transport_dense"]

_EPS = 1e-12


@dataclass
class _Edge:
    to: int
    cap: float
    cost: float
    #: Index of the reverse edge in ``graph[to]``.
    rev: int


class MinCostFlow:
    """A min-cost-flow network over integer node ids.

    Usage: ``add_edge`` to build, then :meth:`solve` to push a given
    amount of flow from source to sink at minimum cost.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("network needs at least one node")
        self.n = n_nodes
        self.graph: List[List[_Edge]] = [[] for _ in range(n_nodes)]

    def add_edge(self, frm: int, to: int, cap: float, cost: float) -> None:
        """Add a directed edge with capacity and per-unit cost."""
        if not (0 <= frm < self.n and 0 <= to < self.n):
            raise IndexError("edge endpoint out of range")
        if cap < 0:
            raise ValueError("capacity must be non-negative")
        self.graph[frm].append(_Edge(to, cap, cost, len(self.graph[to])))
        self.graph[to].append(_Edge(frm, 0.0, -cost, len(self.graph[frm]) - 1))

    def solve(self, source: int, sink: int, max_flow: float) -> Tuple[float, float]:
        """Push up to ``max_flow`` units; returns (flow_sent, total_cost).

        Successive shortest paths: repeatedly find the cheapest
        augmenting path under reduced costs and saturate it.  Stops
        early when the sink becomes unreachable.
        """
        if max_flow < 0:
            raise ValueError("max_flow must be non-negative")
        flow = 0.0
        cost = 0.0
        potential = [0.0] * self.n
        while flow + _EPS < max_flow:
            dist, parent = self._dijkstra(source, potential)
            if dist[sink] == math.inf:
                break
            for i in range(self.n):
                if dist[i] < math.inf:
                    potential[i] += dist[i]
            # Find bottleneck along the path.
            push = max_flow - flow
            v = sink
            while v != source:
                u, ei = parent[v]
                push = min(push, self.graph[u][ei].cap)
                v = u
            if push <= _EPS:
                break
            # Apply.
            v = sink
            while v != source:
                u, ei = parent[v]
                edge = self.graph[u][ei]
                edge.cap -= push
                self.graph[edge.to][edge.rev].cap += push
                cost += push * edge.cost
                v = u
            flow += push
        return flow, cost

    def _dijkstra(
        self, source: int, potential: Sequence[float]
    ) -> Tuple[List[float], List[Optional[Tuple[int, int]]]]:
        dist = [math.inf] * self.n
        parent: List[Optional[Tuple[int, int]]] = [None] * self.n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + _EPS:
                continue
            for ei, edge in enumerate(self.graph[u]):
                if edge.cap <= _EPS:
                    continue
                reduced = edge.cost + potential[u] - potential[edge.to]
                # Guard tiny negative drift from float arithmetic.
                if reduced < -1e-6:
                    reduced = 0.0
                nd = d + reduced
                if nd + _EPS < dist[edge.to]:
                    dist[edge.to] = nd
                    parent[edge.to] = (u, ei)
                    heapq.heappush(heap, (nd, edge.to))
        return dist, parent


def transport(
    supply: Sequence[float],
    demand: Sequence[float],
    cost: Sequence[Sequence[float]],
) -> float:
    """Solve a balanced transportation problem; returns minimum cost.

    ``supply`` and ``demand`` must sum to the same total (within
    tolerance); ``cost[i][j]`` is the unit cost from supply node ``i``
    to demand node ``j``.  This is the kernel of the EMD computation.
    """
    m, n = len(supply), len(demand)
    if m == 0 or n == 0:
        raise ValueError("supply and demand must be non-empty")
    total_supply = sum(supply)
    total_demand = sum(demand)
    if abs(total_supply - total_demand) > 1e-6 * max(1.0, total_supply):
        raise ValueError("transport problem must be balanced")
    if any(s < -_EPS for s in supply) or any(d < -_EPS for d in demand):
        raise ValueError("supplies and demands must be non-negative")

    # Nodes: 0 = source, 1..m = supplies, m+1..m+n = demands, m+n+1 = sink.
    net = MinCostFlow(m + n + 2)
    source, sink = 0, m + n + 1
    for i, s in enumerate(supply):
        if s > _EPS:
            net.add_edge(source, 1 + i, s, 0.0)
    for j, d in enumerate(demand):
        if d > _EPS:
            net.add_edge(1 + m + j, sink, d, 0.0)
    for i in range(m):
        if supply[i] <= _EPS:
            continue
        row = cost[i]
        for j in range(n):
            if demand[j] <= _EPS:
                continue
            net.add_edge(1 + i, 1 + m + j, math.inf, float(row[j]))
    sent, total_cost = net.solve(source, sink, total_supply)
    if sent < total_supply - 1e-6:
        raise RuntimeError("transport failed to route all supply")
    return total_cost


def transport_dense(
    supply: Sequence[float],
    demand: Sequence[float],
    cost: Sequence[Sequence[float]],
) -> float:
    """Exact transport specialised to small dense problems.

    Same contract and optimum as :func:`transport`, but the SSP runs
    directly on the bipartite supply/demand structure with flat lists:
    no edge objects, no heap (a linear-scan Dijkstra is faster below a
    few dozen nodes).  This is the kernel behind the fast Algorithm 1
    path, where every EMD instance is a k x k problem with k equal to
    an action node's out-degree.
    """
    m, n = len(supply), len(demand)
    if m == 0 or n == 0:
        raise ValueError("supply and demand must be non-empty")
    total_supply = sum(supply)
    total_demand = sum(demand)
    if abs(total_supply - total_demand) > 1e-6 * max(1.0, total_supply):
        raise ValueError("transport problem must be balanced")
    if any(s < -_EPS for s in supply) or any(d < -_EPS for d in demand):
        raise ValueError("supplies and demands must be non-negative")

    rem_s = [float(s) for s in supply]
    rem_d = [float(d) for d in demand]
    rows = cost  # used read-only; rows must support float arithmetic
    flow = [[0.0] * n for _ in range(m)]
    u = [0.0] * m  # supply-side Johnson potentials
    v = [0.0] * n  # demand-side Johnson potentials
    inf = math.inf
    routed = 0.0
    total_cost = 0.0

    while routed + _EPS < total_supply:
        # Multi-source Dijkstra from every supply with remaining mass.
        dist_s = [0.0 if rem_s[i] > _EPS else inf for i in range(m)]
        dist_d = [inf] * n
        par_d = [-1] * n  # supply that relaxed demand j (forward edge)
        par_s = [-1] * m  # demand that relaxed supply i (backward edge)
        done_s = [False] * m
        done_d = [False] * n
        while True:
            best = inf
            bi = -1
            from_supply = True
            for i in range(m):
                if not done_s[i] and dist_s[i] < best:
                    best, bi, from_supply = dist_s[i], i, True
            for j in range(n):
                if not done_d[j] and dist_d[j] < best:
                    best, bi, from_supply = dist_d[j], j, False
            if bi < 0:
                break
            if from_supply:
                done_s[bi] = True
                row = rows[bi]
                base = dist_s[bi] + u[bi]
                for j in range(n):
                    if done_d[j]:
                        continue
                    reduced = base + row[j] - v[j]
                    if reduced < dist_s[bi]:
                        # Guard tiny negative drift from float arithmetic.
                        reduced = dist_s[bi]
                    if reduced < dist_d[j]:
                        dist_d[j] = reduced
                        par_d[j] = bi
            else:
                done_d[bi] = True
                base = dist_d[bi] + v[bi]
                for i in range(m):
                    if done_s[i] or flow[i][bi] <= _EPS:
                        continue
                    reduced = base - rows[i][bi] - u[i]
                    if reduced < dist_d[bi]:
                        reduced = dist_d[bi]
                    if reduced < dist_s[i]:
                        dist_s[i] = reduced
                        par_s[i] = bi

        # Cheapest reachable demand that still needs mass.
        target = -1
        target_dist = inf
        for j in range(n):
            if rem_d[j] > _EPS and dist_d[j] < target_dist:
                target_dist = dist_d[j]
                target = j
        if target < 0:
            break
        for i in range(m):
            if dist_s[i] < inf:
                u[i] += dist_s[i]
        for j in range(n):
            if dist_d[j] < inf:
                v[j] += dist_d[j]

        # Walk the augmenting path back to a source supply.
        path = []  # (i, j, forward)
        j = target
        while True:
            i = par_d[j]
            path.append((i, j, True))
            pj = par_s[i]
            if pj < 0:
                break
            path.append((i, pj, False))
            j = pj
        push = min(rem_d[target], rem_s[path[-1][0]])
        for i, j, forward in path:
            if not forward:
                push = min(push, flow[i][j])
        if push <= _EPS:
            break
        for i, j, forward in path:
            if forward:
                flow[i][j] += push
                total_cost += push * rows[i][j]
            else:
                flow[i][j] -= push
                total_cost -= push * rows[i][j]
        rem_s[path[-1][0]] -= push
        rem_d[target] -= push
        routed += push

    if routed < total_supply - 1e-6:
        raise RuntimeError("transport failed to route all supply")
    return total_cost
