"""Structural similarity recursion over the MDP graph (Algorithm 1).

Following the paper (after Wang et al., IJCAI'19, and SimRank): state
similarity ``sigma_S`` and action similarity ``sigma_A`` are defined by
mutual recursion --

* two action nodes are similar when their rewards are close and their
  successor-state distributions are close under the Earth Mover's
  Distance measured with the current state distance (Eq. 4, second
  line):  ``sigma_A(a,b) = 1 - (1-C_A) * delta_rwd(a,b)
  - C_A * delta_EMD(p_a, p_b; delta_S)``;

* two state nodes are similar when their action neighbourhoods are
  close under the Hausdorff distance measured with the current action
  distance (Eq. 4, first line):
  ``sigma_S(u,v) = C_S * (1 - Hausdorff(N_u, N_v; delta_A))``.

Base cases (Eq. 3): a state is self-similar; an absorbing state is
maximally distant from any non-absorbing state; two absorbing states
have the configured distance ``d_uv``.

The recursion is iterated from the identity matrices until the
matrices converge (the paper proves termination and uniqueness for
discounts in (0,1)); the fixed point feeds the competitiveness bound of
Eq. (10) -- see :mod:`repro.core.bounds`.

Two interchangeable solvers run the recursion:

* the *reference* solver is the direct transcription of Algorithm 1
  (dense Python double loops, one SSP transport solve per action pair
  per iteration) and is kept as the semantic oracle;
* the *fast* solver (default) evaluates the same map through
  :class:`~repro.core.emd.PairwiseEMD` -- precompiled support index
  arrays, a precomputed reward-distance matrix, vectorised Hausdorff
  refreshes grouped by neighbourhood shape -- and converges to the
  same fixed point (the golden-regression tests pin both to 1e-8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from .. import obs
from .emd import EMDStats, PairwiseEMD, emd_dicts
from .graph import ActionNode, MDPGraph
from .hausdorff import hausdorff

__all__ = ["SimilarityResult", "SolverStats", "StructuralSimilarity"]

State = Hashable


@dataclass
class SolverStats:
    """Observability record of one :meth:`StructuralSimilarity.solve`."""

    #: Which path ran: "fast" or "reference".
    mode: str
    iterations: int = 0
    #: Wall-clock total and per-phase split (seconds).
    total_s: float = 0.0
    action_refresh_s: float = 0.0
    state_refresh_s: float = 0.0
    #: Max-norm matrix change after each iteration, in order.
    residuals: List[float] = field(default_factory=list)
    #: EMD engine counters (fast mode only).
    emd: Optional[EMDStats] = None


@dataclass
class SimilarityResult:
    """Converged similarity matrices plus convergence metadata."""

    graph: MDPGraph
    #: |V| x |V| state similarity matrix ``sigma_S*``.
    state_sim: np.ndarray
    #: |Lambda| x |Lambda| action similarity matrix ``sigma_A*``.
    action_sim: np.ndarray
    iterations: int
    residual: float
    elapsed_s: float
    #: Per-phase timing and cache counters of the solve that produced this.
    stats: Optional[SolverStats] = None

    # ------------------------------------------------------------------
    def sigma_s(self, u: State, v: State) -> float:
        """State similarity ``sigma_S*(u, v)`` in [0, 1]."""
        i = self.graph.state_index(u)
        j = self.graph.state_index(v)
        return float(self.state_sim[i, j])

    def delta_s(self, u: State, v: State) -> float:
        """State distance ``delta_S* = 1 - sigma_S*``."""
        return 1.0 - self.sigma_s(u, v)

    def sigma_a(self, a: ActionNode, b: ActionNode) -> float:
        """Action similarity ``sigma_A*(a, b)`` in [0, 1]."""
        i = self.graph.action_index(a)
        j = self.graph.action_index(b)
        return float(self.action_sim[i, j])

    def delta_a(self, a: ActionNode, b: ActionNode) -> float:
        """Action distance ``delta_A* = 1 - sigma_A*``."""
        return 1.0 - self.sigma_a(a, b)

    def most_similar_state(self, u: State, exclude_self: bool = True) -> Tuple[State, float]:
        """The known state most similar to ``u`` and its similarity.

        Ties break toward the lowest state index (``np.argmax`` keeps
        the first maximiser), so the choice is deterministic in the
        graph's state order for both solvers.
        """
        i = self.graph.state_index(u)
        row = self.state_sim[i].copy()
        if exclude_self:
            row[i] = -1.0
        j = int(np.argmax(row))
        return self.graph.state_nodes[j], float(row[j])


class StructuralSimilarity:
    """Iterative solver for the Algorithm 1 recursion.

    Parameters
    ----------
    graph:
        The bipartite MDP graph.
    c_s, c_a:
        Discount weights of Eq. (4).  For the competitiveness bound of
        Eq. (10), instantiate with ``c_s = 1.0`` and ``c_a = rho``.
    d_absorbing:
        Eq. (3)'s ``d_uv`` between two absorbing states; 0 identifies
        all scheduling targets, 1 keeps them fully distinct.
    tol, max_iter:
        Convergence controls over the max-norm matrix change.
    fast:
        Run the vectorised solver (default).  ``fast=False`` selects
        the reference transcription of Algorithm 1; both converge to
        the same fixed point and tests cross-check them.
    cache_tol:
        Sup-norm slack of the fast solver's EMD reuse cache: a pair's
        transport solve is skipped while its ground matrix moved less
        than this since the last solve, perturbing the fixed point by
        at most ``cache_tol / (1 - c)``.  The default keeps that far
        below the 1e-8 agreement the golden tests pin.
    """

    def __init__(
        self,
        graph: MDPGraph,
        c_s: float = 0.95,
        c_a: float = 0.95,
        d_absorbing: float = 1.0,
        tol: float = 1e-4,
        max_iter: int = 100,
        fast: bool = True,
        cache_tol: float = 1e-10,
    ) -> None:
        if not 0.0 < c_s <= 1.0:
            raise ValueError("c_s must lie in (0, 1]")
        if not 0.0 < c_a <= 1.0:
            raise ValueError("c_a must lie in (0, 1]")
        if not 0.0 <= d_absorbing <= 1.0:
            raise ValueError("d_absorbing must lie in [0, 1]")
        if cache_tol < 0:
            raise ValueError("cache_tol must be non-negative")
        self.graph = graph
        self.c_s = c_s
        self.c_a = c_a
        self.d_absorbing = d_absorbing
        self.tol = tol
        self.max_iter = max_iter
        self.fast = fast
        self.cache_tol = cache_tol

    # ------------------------------------------------------------------
    def solve(self) -> SimilarityResult:
        """Run the recursion to its fixed point."""
        ob = obs.session()
        if ob is None:
            return self._solve_fast() if self.fast else self._solve_reference()
        with ob.tracer.span("similarity.solve",
                            mode="fast" if self.fast else "reference"):
            result = self._solve_fast() if self.fast else self._solve_reference()
        # Mirror the per-solve SolverStats into the registry so the
        # telemetry blob is the one place these counts surface.
        stats = result.stats
        reg = ob.registry
        reg.counter("similarity.solves").inc()
        if stats is not None:
            reg.counter("similarity.iterations").inc(stats.iterations)
            reg.histogram("similarity.solve_s").observe(stats.total_s)
            if stats.emd is not None:
                emd = stats.emd
                reg.counter("similarity.emd.calls").inc(emd.calls)
                reg.counter("similarity.emd.solves").inc(emd.solves)
                reg.counter("similarity.emd.memo_hits").inc(emd.memo_hits)
                reg.counter("similarity.emd.reuse_hits").inc(emd.reuse_hits)
        return result

    # ------------------------------------------------------------------
    # Shared setup
    # ------------------------------------------------------------------
    def _base_cases(self, nv: int, absorbing: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Initial state matrix and the Eq. (3) fixed-entry mask."""
        state_sim = np.eye(nv)
        fixed = np.zeros((nv, nv), dtype=bool)
        np.fill_diagonal(fixed, True)
        cross = absorbing[:, None] != absorbing[None, :]
        state_sim[cross] = 0.0  # delta = 1
        fixed |= cross
        both = absorbing[:, None] & absorbing[None, :]
        both &= ~np.eye(nv, dtype=bool)
        state_sim[both] = 1.0 - self.d_absorbing
        fixed |= both
        return state_sim, fixed

    # ------------------------------------------------------------------
    # Reference path: direct Algorithm 1 transcription
    # ------------------------------------------------------------------
    def _solve_reference(self) -> SimilarityResult:
        g = self.graph
        nv = g.n_state_nodes
        na = g.n_action_nodes
        started = time.perf_counter()
        stats = SolverStats(mode="reference")

        # Line 1: S <- I, A <- I, with the Eq. (3) base cases applied.
        absorbing = np.array([g.is_absorbing(s) for s in g.state_nodes], dtype=bool)
        state_sim, fixed = self._base_cases(nv, absorbing)
        action_sim = np.eye(na)

        # Pre-compute per-action-node data.
        dists = [g.successor_dist(n) for n in g.action_nodes]
        mus = np.array([g.mean_reward(n) for n in g.action_nodes])
        neighbours = {s: g.out_actions(s) for s in g.state_nodes}

        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            # Lines 3-5: refresh action similarities from state distances.
            phase_started = time.perf_counter()

            def delta_s_lookup(u: State, v: State) -> float:
                return 1.0 - state_sim[g.state_index(u), g.state_index(v)]

            new_action = np.eye(na)
            for i in range(na):
                for j in range(i + 1, na):
                    d_emd = emd_dicts(dists[i], dists[j], delta_s_lookup)
                    d_rwd = abs(mus[i] - mus[j])
                    sim = 1.0 - (1.0 - self.c_a) * d_rwd - self.c_a * d_emd
                    sim = min(1.0, max(0.0, sim))
                    new_action[i, j] = sim
                    new_action[j, i] = sim
            stats.action_refresh_s += time.perf_counter() - phase_started

            # Lines 6-7: refresh state similarities from action distances.
            phase_started = time.perf_counter()

            def delta_a_lookup(a: ActionNode, b: ActionNode) -> float:
                return 1.0 - new_action[g.action_index(a), g.action_index(b)]

            new_state = state_sim.copy()
            for i, u in enumerate(g.state_nodes):
                for j in range(i + 1, nv):
                    if fixed[i, j]:
                        continue
                    v = g.state_nodes[j]
                    d_h = hausdorff(neighbours[u], neighbours[v], delta_a_lookup)
                    sim = self.c_s * (1.0 - d_h)
                    sim = min(1.0, max(0.0, sim))
                    new_state[i, j] = sim
                    new_state[j, i] = sim
            stats.state_refresh_s += time.perf_counter() - phase_started

            residual = max(
                float(np.max(np.abs(new_state - state_sim))) if nv else 0.0,
                float(np.max(np.abs(new_action - action_sim))) if na else 0.0,
            )
            stats.residuals.append(residual)
            state_sim = new_state
            action_sim = new_action
            if residual < self.tol:
                break

        elapsed = time.perf_counter() - started
        stats.iterations = iterations
        stats.total_s = elapsed
        return SimilarityResult(
            graph=g,
            state_sim=state_sim,
            action_sim=action_sim,
            iterations=iterations,
            residual=float(residual),
            elapsed_s=elapsed,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Fast path: vectorised refreshes + memoised EMD engine
    # ------------------------------------------------------------------
    def _solve_fast(self) -> SimilarityResult:
        g = self.graph
        nv = g.n_state_nodes
        na = g.n_action_nodes
        started = time.perf_counter()
        stats = SolverStats(mode="fast")

        absorbing = np.array([g.is_absorbing(s) for s in g.state_nodes], dtype=bool)
        state_sim, fixed = self._base_cases(nv, absorbing)
        action_sim = np.eye(na)

        # Compile the action side: support index arrays + reward matrix.
        state_of = {s: g.state_index(s) for s in g.state_nodes}
        engine = PairwiseEMD(
            [g.successor_dist(n) for n in g.action_nodes],
            state_of,
            reuse_tol=self.cache_tol,
        )
        stats.emd = engine.stats
        mus = np.array([g.mean_reward(n) for n in g.action_nodes])
        d_rwd = np.abs(mus[:, None] - mus[None, :]) if na else np.zeros((0, 0))

        # Compile the state side: non-fixed pairs grouped by the shape
        # of their action neighbourhoods so each Hausdorff refresh is a
        # single gather + min/max reduction per group.
        act_idx = [
            np.array([g.action_index(a) for a in g.out_actions(s)], dtype=np.intp)
            for s in g.state_nodes
        ]
        shape_groups: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for i in range(nv):
            for j in range(i + 1, nv):
                if fixed[i, j]:
                    continue
                shape_groups.setdefault(
                    (len(act_idx[i]), len(act_idx[j])), []
                ).append((i, j))
        state_groups = []
        for pairs in shape_groups.values():
            rows = np.array([p[0] for p in pairs], dtype=np.intp)
            cols = np.array([p[1] for p in pairs], dtype=np.intp)
            left = np.stack([act_idx[i] for i in rows])
            right = np.stack([act_idx[j] for j in cols])
            state_groups.append((rows, cols, left, right))

        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            # Lines 3-5, vectorised: one EMD refresh prices every action
            # pair against the current state-distance matrix.
            phase_started = time.perf_counter()
            delta_state = 1.0 - state_sim
            d_emd = engine.refresh(delta_state)
            new_action = np.clip(
                1.0 - (1.0 - self.c_a) * d_rwd - self.c_a * d_emd, 0.0, 1.0
            )
            np.fill_diagonal(new_action, 1.0)
            stats.action_refresh_s += time.perf_counter() - phase_started

            # Lines 6-7, vectorised per neighbourhood-shape group.
            phase_started = time.perf_counter()
            delta_action = 1.0 - new_action
            new_state = state_sim.copy()
            for rows, cols, left, right in state_groups:
                sub = delta_action[left[:, :, None], right[:, None, :]]
                d_h = np.maximum(sub.min(axis=2).max(axis=1),
                                 sub.min(axis=1).max(axis=1))
                values = np.clip(self.c_s * (1.0 - d_h), 0.0, 1.0)
                new_state[rows, cols] = values
                new_state[cols, rows] = values
            stats.state_refresh_s += time.perf_counter() - phase_started

            residual = max(
                float(np.max(np.abs(new_state - state_sim))) if nv else 0.0,
                float(np.max(np.abs(new_action - action_sim))) if na else 0.0,
            )
            stats.residuals.append(residual)
            state_sim = new_state
            action_sim = new_action
            if residual < self.tol:
                break

        elapsed = time.perf_counter() - started
        stats.iterations = iterations
        stats.total_s = elapsed
        return SimilarityResult(
            graph=g,
            state_sim=state_sim,
            action_sim=action_sim,
            iterations=iterations,
            residual=float(residual),
            elapsed_s=elapsed,
            stats=stats,
        )
