"""Structural similarity recursion over the MDP graph (Algorithm 1).

Following the paper (after Wang et al., IJCAI'19, and SimRank): state
similarity ``sigma_S`` and action similarity ``sigma_A`` are defined by
mutual recursion --

* two action nodes are similar when their rewards are close and their
  successor-state distributions are close under the Earth Mover's
  Distance measured with the current state distance (Eq. 4, second
  line):  ``sigma_A(a,b) = 1 - (1-C_A) * delta_rwd(a,b)
  - C_A * delta_EMD(p_a, p_b; delta_S)``;

* two state nodes are similar when their action neighbourhoods are
  close under the Hausdorff distance measured with the current action
  distance (Eq. 4, first line):
  ``sigma_S(u,v) = C_S * (1 - Hausdorff(N_u, N_v; delta_A))``.

Base cases (Eq. 3): a state is self-similar; an absorbing state is
maximally distant from any non-absorbing state; two absorbing states
have the configured distance ``d_uv``.

The recursion is iterated from the identity matrices until the
matrices converge (the paper proves termination and uniqueness for
discounts in (0,1)); the fixed point feeds the competitiveness bound of
Eq. (10) -- see :mod:`repro.core.bounds`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from .emd import emd_dicts
from .graph import ActionNode, MDPGraph
from .hausdorff import hausdorff

__all__ = ["SimilarityResult", "StructuralSimilarity"]

State = Hashable


@dataclass
class SimilarityResult:
    """Converged similarity matrices plus convergence metadata."""

    graph: MDPGraph
    #: |V| x |V| state similarity matrix ``sigma_S*``.
    state_sim: np.ndarray
    #: |Lambda| x |Lambda| action similarity matrix ``sigma_A*``.
    action_sim: np.ndarray
    iterations: int
    residual: float
    elapsed_s: float

    # ------------------------------------------------------------------
    def sigma_s(self, u: State, v: State) -> float:
        """State similarity ``sigma_S*(u, v)`` in [0, 1]."""
        i = self.graph.state_index(u)
        j = self.graph.state_index(v)
        return float(self.state_sim[i, j])

    def delta_s(self, u: State, v: State) -> float:
        """State distance ``delta_S* = 1 - sigma_S*``."""
        return 1.0 - self.sigma_s(u, v)

    def sigma_a(self, a: ActionNode, b: ActionNode) -> float:
        """Action similarity ``sigma_A*(a, b)`` in [0, 1]."""
        i = self.graph.action_index(a)
        j = self.graph.action_index(b)
        return float(self.action_sim[i, j])

    def delta_a(self, a: ActionNode, b: ActionNode) -> float:
        """Action distance ``delta_A* = 1 - sigma_A*``."""
        return 1.0 - self.sigma_a(a, b)

    def most_similar_state(self, u: State, exclude_self: bool = True) -> Tuple[State, float]:
        """The known state most similar to ``u`` and its similarity."""
        i = self.graph.state_index(u)
        row = self.state_sim[i].copy()
        if exclude_self:
            row[i] = -1.0
        j = int(np.argmax(row))
        return self.graph.state_nodes[j], float(row[j])


class StructuralSimilarity:
    """Iterative solver for the Algorithm 1 recursion.

    Parameters
    ----------
    graph:
        The bipartite MDP graph.
    c_s, c_a:
        Discount weights of Eq. (4).  For the competitiveness bound of
        Eq. (10), instantiate with ``c_s = 1.0`` and ``c_a = rho``.
    d_absorbing:
        Eq. (3)'s ``d_uv`` between two absorbing states; 0 identifies
        all scheduling targets, 1 keeps them fully distinct.
    tol, max_iter:
        Convergence controls over the max-norm matrix change.
    """

    def __init__(
        self,
        graph: MDPGraph,
        c_s: float = 0.95,
        c_a: float = 0.95,
        d_absorbing: float = 1.0,
        tol: float = 1e-4,
        max_iter: int = 100,
    ) -> None:
        if not 0.0 < c_s <= 1.0:
            raise ValueError("c_s must lie in (0, 1]")
        if not 0.0 < c_a <= 1.0:
            raise ValueError("c_a must lie in (0, 1]")
        if not 0.0 <= d_absorbing <= 1.0:
            raise ValueError("d_absorbing must lie in [0, 1]")
        self.graph = graph
        self.c_s = c_s
        self.c_a = c_a
        self.d_absorbing = d_absorbing
        self.tol = tol
        self.max_iter = max_iter

    # ------------------------------------------------------------------
    def solve(self) -> SimilarityResult:
        """Run the recursion to its fixed point."""
        g = self.graph
        nv = g.n_state_nodes
        na = g.n_action_nodes
        started = time.perf_counter()

        # Line 1: S <- I, A <- I.
        state_sim = np.eye(nv)
        action_sim = np.eye(na)

        absorbing = np.array([g.is_absorbing(s) for s in g.state_nodes])
        # Pre-compute per-action-node data.
        dists = [g.successor_dist(n) for n in g.action_nodes]
        mus = np.array([g.mean_reward(n) for n in g.action_nodes])
        neighbours = {s: g.out_actions(s) for s in g.state_nodes}

        # Apply the Eq. (3) base cases to fixed entries of S.
        fixed = np.zeros((nv, nv), dtype=bool)
        np.fill_diagonal(fixed, True)
        for i in range(nv):
            for j in range(nv):
                if i == j:
                    continue
                if absorbing[i] != absorbing[j]:
                    state_sim[i, j] = 0.0  # delta = 1
                    fixed[i, j] = True
                elif absorbing[i] and absorbing[j]:
                    state_sim[i, j] = 1.0 - self.d_absorbing
                    fixed[i, j] = True

        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            # Lines 3-5: refresh action similarities from state distances.
            def delta_s_lookup(u: State, v: State) -> float:
                return 1.0 - state_sim[g.state_index(u), g.state_index(v)]

            new_action = np.eye(na)
            for i in range(na):
                for j in range(i + 1, na):
                    d_emd = emd_dicts(dists[i], dists[j], delta_s_lookup)
                    d_rwd = abs(mus[i] - mus[j])
                    sim = 1.0 - (1.0 - self.c_a) * d_rwd - self.c_a * d_emd
                    sim = min(1.0, max(0.0, sim))
                    new_action[i, j] = sim
                    new_action[j, i] = sim

            # Lines 6-7: refresh state similarities from action distances.
            def delta_a_lookup(a: ActionNode, b: ActionNode) -> float:
                return 1.0 - new_action[g.action_index(a), g.action_index(b)]

            new_state = state_sim.copy()
            for i, u in enumerate(g.state_nodes):
                for j in range(i + 1, nv):
                    if fixed[i, j]:
                        continue
                    v = g.state_nodes[j]
                    d_h = hausdorff(neighbours[u], neighbours[v], delta_a_lookup)
                    sim = self.c_s * (1.0 - d_h)
                    sim = min(1.0, max(0.0, sim))
                    new_state[i, j] = sim
                    new_state[j, i] = sim

            residual = max(
                float(np.max(np.abs(new_state - state_sim))),
                float(np.max(np.abs(new_action - action_sim))),
            )
            state_sim = new_state
            action_sim = new_action
            if residual < self.tol:
                break

        elapsed = time.perf_counter() - started
        return SimilarityResult(
            graph=g,
            state_sim=state_sim,
            action_sim=action_sim,
            iterations=iterations,
            residual=float(residual),
            elapsed_s=elapsed,
        )
