"""Markov decision process ``M = (S, A, T, R)`` (paper Section III-B).

States and actions are arbitrary hashable labels; transition and reward
functions are sparse dictionaries.  Rewards are normalised to [0, 1] as
the paper requires (the competitiveness bound of Eq. 10 relies on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

import numpy as np

__all__ = ["MDP", "random_mdp"]

State = Hashable
Action = Hashable


@dataclass
class MDP:
    """A finite MDP with sparse tables.

    Parameters
    ----------
    states:
        All state labels.
    actions:
        All action labels.
    transitions:
        ``{(s, a): {s': p}}``; each inner distribution must sum to 1.
    rewards:
        ``{(s, a, s'): r}`` with ``r`` in [0, 1].  Missing triples
        default to reward 0.
    """

    states: List[State]
    actions: List[Action]
    transitions: Dict[Tuple[State, Action], Dict[State, float]]
    rewards: Dict[Tuple[State, Action, State], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._state_set = set(self.states)
        self._action_set = set(self.actions)
        if len(self._state_set) != len(self.states):
            raise ValueError("duplicate states")
        if len(self._action_set) != len(self.actions):
            raise ValueError("duplicate actions")
        self.validate()
        self._actions_by_state: Dict[State, List[Action]] = {}
        for (s, a) in self.transitions:
            self._actions_by_state.setdefault(s, []).append(a)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for (s, a), dist in self.transitions.items():
            if s not in self._state_set:
                raise ValueError(f"unknown state {s!r} in transitions")
            if a not in self._action_set:
                raise ValueError(f"unknown action {a!r} in transitions")
            if not dist:
                raise ValueError(f"empty successor distribution for ({s!r}, {a!r})")
            total = sum(dist.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"transition probabilities for ({s!r}, {a!r}) sum to {total}"
                )
            for sp, p in dist.items():
                if sp not in self._state_set:
                    raise ValueError(f"unknown successor {sp!r}")
                if p < -1e-12:
                    raise ValueError("negative transition probability")
        for (s, a, sp), r in self.rewards.items():
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"reward {r} for ({s!r},{a!r},{sp!r}) outside [0,1]")

    # ------------------------------------------------------------------
    def available_actions(self, state: State) -> List[Action]:
        """Actions with a defined transition from ``state``."""
        return list(self._actions_by_state.get(state, []))

    def is_absorbing(self, state: State) -> bool:
        """True when no action leaves the state."""
        return not self._actions_by_state.get(state)

    def successors(self, state: State, action: Action) -> Dict[State, float]:
        """The successor distribution of (state, action)."""
        return dict(self.transitions[(state, action)])

    def reward(self, state: State, action: Action, successor: State) -> float:
        """R(s, a, s'), defaulting to 0 when unspecified."""
        return self.rewards.get((state, action, successor), 0.0)

    def expected_reward(self, state: State, action: Action) -> float:
        """Mean one-step reward of (state, action)."""
        dist = self.transitions[(state, action)]
        return sum(p * self.reward(state, action, sp) for sp, p in dist.items())

    @property
    def n_states(self) -> int:
        """|S|."""
        return len(self.states)

    @property
    def n_actions(self) -> int:
        """|A|."""
        return len(self.actions)

    def sample_successor(self, state: State, action: Action,
                         rng: np.random.Generator) -> State:
        """Draw one successor state."""
        dist = self.transitions[(state, action)]
        keys = list(dist)
        probs = np.array([dist[k] for k in keys], dtype=float)
        probs = probs / probs.sum()
        return keys[int(rng.choice(len(keys), p=probs))]


def random_mdp(
    n_states: int,
    n_actions: int,
    branching: int = 3,
    seed: int = 0,
    absorbing: int = 0,
) -> MDP:
    """A random MDP for tests and micro-benchmarks.

    Every non-absorbing state gets every action with a ``branching``-way
    successor distribution; the last ``absorbing`` states get none.
    """
    if n_states < 1 or n_actions < 1:
        raise ValueError("need at least one state and one action")
    if absorbing >= n_states:
        raise ValueError("at least one state must be non-absorbing")
    rng = np.random.default_rng(seed)
    states = [f"s{i}" for i in range(n_states)]
    actions = [f"a{j}" for j in range(n_actions)]
    transitions: Dict[Tuple[State, Action], Dict[State, float]] = {}
    rewards: Dict[Tuple[State, Action, State], float] = {}
    live = states[: n_states - absorbing]
    for s in live:
        for a in actions:
            succ = rng.choice(n_states, size=min(branching, n_states), replace=False)
            raw = rng.random(len(succ)) + 0.05
            raw /= raw.sum()
            dist = {states[int(i)]: float(p) for i, p in zip(succ, raw)}
            transitions[(s, a)] = dist
            for sp in dist:
                rewards[(s, a, sp)] = float(rng.random())
    return MDP(states, actions, transitions, rewards)
