"""Exact MDP solvers: value iteration, policy iteration, evaluation.

These implement the Bellman machinery of paper Eqs. (6)-(9): state
values ``V``, action values ``Q`` (the paper's ``P_a``), the optimal
policy, and policy evaluation for the competitiveness experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

from .mdp import MDP, Action, State

__all__ = ["Solution", "value_iteration", "policy_evaluation", "policy_iteration"]


@dataclass(frozen=True)
class Solution:
    """An MDP solution: optimal values, action values and policy."""

    values: Dict[State, float]
    q_values: Dict[Tuple[State, Action], float]
    policy: Dict[State, Action]
    iterations: int
    residual: float

    def value(self, state: State) -> float:
        """V*(s); absorbing states have value 0."""
        return self.values.get(state, 0.0)

    def action(self, state: State) -> Optional[Action]:
        """The optimal action, or None for absorbing states."""
        return self.policy.get(state)


def _q_from_values(
    mdp: MDP, values: Mapping[State, float], rho: float
) -> Dict[Tuple[State, Action], float]:
    q: Dict[Tuple[State, Action], float] = {}
    for (s, a), dist in mdp.transitions.items():
        q[(s, a)] = sum(
            p * (mdp.reward(s, a, sp) + rho * values.get(sp, 0.0))
            for sp, p in dist.items()
        )
    return q


def value_iteration(
    mdp: MDP,
    rho: float = 0.9,
    tol: float = 1e-8,
    max_iter: int = 100_000,
) -> Solution:
    """Solve the Bellman optimality equations by fixed-point iteration.

    ``rho`` is the discount factor of Eq. (6); convergence is geometric
    at rate ``rho`` (the contraction the paper's bound leans on).
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    values: Dict[State, float] = {s: 0.0 for s in mdp.states}
    residual = math.inf
    it = 0
    for it in range(1, max_iter + 1):
        residual = 0.0
        new_values = dict(values)
        for s in mdp.states:
            acts = mdp.available_actions(s)
            if not acts:
                continue
            best = -math.inf
            for a in acts:
                q = sum(
                    p * (mdp.reward(s, a, sp) + rho * values[sp])
                    for sp, p in mdp.transitions[(s, a)].items()
                )
                if q > best:
                    best = q
            new_values[s] = best
            residual = max(residual, abs(best - values[s]))
        values = new_values
        if residual < tol:
            break
    q = _q_from_values(mdp, values, rho)
    policy: Dict[State, Action] = {}
    for s in mdp.states:
        acts = mdp.available_actions(s)
        if acts:
            policy[s] = max(acts, key=lambda a: q[(s, a)])
    return Solution(values, q, policy, it, residual)


def policy_evaluation(
    mdp: MDP,
    policy: Mapping[State, Action],
    rho: float = 0.9,
    tol: float = 1e-8,
    max_iter: int = 100_000,
) -> Dict[State, float]:
    """Value of a fixed policy (Eq. 6 under pi instead of pi*)."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    values: Dict[State, float] = {s: 0.0 for s in mdp.states}
    for _ in range(max_iter):
        residual = 0.0
        for s in mdp.states:
            a = policy.get(s)
            if a is None:
                continue
            v = sum(
                p * (mdp.reward(s, a, sp) + rho * values[sp])
                for sp, p in mdp.transitions[(s, a)].items()
            )
            residual = max(residual, abs(v - values[s]))
            values[s] = v
        if residual < tol:
            break
    return values


def policy_iteration(
    mdp: MDP,
    rho: float = 0.9,
    tol: float = 1e-8,
    max_iter: int = 1_000,
) -> Solution:
    """Howard policy iteration; converges in few sweeps on our MDPs."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    policy: Dict[State, Action] = {}
    for s in mdp.states:
        acts = mdp.available_actions(s)
        if acts:
            policy[s] = acts[0]
    values: Dict[State, float] = {s: 0.0 for s in mdp.states}
    it = 0
    for it in range(1, max_iter + 1):
        values = policy_evaluation(mdp, policy, rho, tol)
        q = _q_from_values(mdp, values, rho)
        stable = True
        for s in mdp.states:
            acts = mdp.available_actions(s)
            if not acts:
                continue
            best = max(acts, key=lambda a: q[(s, a)])
            if q[(s, best)] > q[(s, policy[s])] + tol:
                policy[s] = best
                stable = False
        if stable:
            break
    q = _q_from_values(mdp, values, rho)
    return Solution(values, q, dict(policy), it, 0.0)
