"""State abstraction from structural similarity.

The similarity fixed point induces a pseudo-metric on states; states
within a distance threshold are behaviourally interchangeable up to
``threshold/(1-rho)`` in value (Eq. 10).  Clustering on that metric,
solving the small abstract MDP and lifting its policy is how CAPMAN
avoids the state-explosion the paper warns about ("hundreds of apps,
tens of devices, and two batteries").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .mdp import MDP, Action, State
from .similarity import SimilarityResult
from .solver import Solution, value_iteration

__all__ = ["Clustering", "cluster_states", "abstract_mdp", "lift_policy"]


@dataclass(frozen=True)
class Clustering:
    """A partition of the MDP's states."""

    #: Representative state per cluster, in creation order.
    representatives: Tuple[State, ...]
    #: Map from every state to its representative.
    assignment: Dict[State, State]

    @property
    def n_clusters(self) -> int:
        """Number of clusters."""
        return len(self.representatives)

    def members(self, representative: State) -> List[State]:
        """All states assigned to a representative."""
        return [s for s, r in self.assignment.items() if r == representative]


def cluster_states(similarity: SimilarityResult, threshold: float) -> Clustering:
    """Greedy leader clustering under the structural distance.

    States are scanned in graph order; each joins the first cluster
    whose representative is within ``threshold`` distance, else founds
    a new cluster.  With threshold 0 every state is its own cluster.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    reps: List[State] = []
    assignment: Dict[State, State] = {}
    graph = similarity.graph
    for s in graph.state_nodes:
        home = None
        for r in reps:
            if graph.is_absorbing(s) != graph.is_absorbing(r):
                continue
            if similarity.delta_s(s, r) <= threshold:
                home = r
                break
        if home is None:
            reps.append(s)
            home = s
        assignment[s] = home
    return Clustering(tuple(reps), assignment)


def abstract_mdp(mdp: MDP, clustering: Clustering) -> MDP:
    """Merge clustered states into an abstract MDP.

    Transitions of a representative average the member states'
    distributions per action (where defined) with successors mapped to
    their representatives; rewards average likewise.
    """
    reps = list(clustering.representatives)
    rep_of = clustering.assignment
    transitions: Dict[Tuple[State, Action], Dict[State, float]] = {}
    rewards: Dict[Tuple[State, Action, State], float] = {}

    for rep in reps:
        members = clustering.members(rep)
        # Collect the actions any member supports.
        actions = sorted(
            {a for m in members for a in mdp.available_actions(m)},
            key=repr,
        )
        for a in actions:
            acc: Dict[State, float] = {}
            racc: Dict[State, float] = {}
            n = 0
            for m in members:
                if (m, a) not in mdp.transitions:
                    continue
                n += 1
                for sp, p in mdp.transitions[(m, a)].items():
                    tgt = rep_of[sp]
                    acc[tgt] = acc.get(tgt, 0.0) + p
                    racc[tgt] = racc.get(tgt, 0.0) + p * mdp.reward(m, a, sp)
            if n == 0:
                continue
            total = sum(acc.values())
            dist = {sp: p / total for sp, p in acc.items()}
            transitions[(rep, a)] = dist
            for sp in dist:
                mass = acc[sp]
                rewards[(rep, a, sp)] = racc[sp] / mass if mass > 0 else 0.0

    actions_used = sorted({a for (_, a) in transitions}, key=repr)
    return MDP(reps, actions_used or list(mdp.actions), transitions, rewards)


def lift_policy(
    abstract_solution: Solution, clustering: Clustering
) -> Dict[State, Action]:
    """Extend the abstract policy to every original state."""
    lifted: Dict[State, Action] = {}
    for s, rep in clustering.assignment.items():
        a = abstract_solution.policy.get(rep)
        if a is not None:
            lifted[s] = a
    return lifted
