"""The online approximation scheduler (paper Sections III-C/III-D).

Solving the full MDP graph per decision is too slow for circuit-level
battery switching (micro/millisecond granularity).  CAPMAN instead:

1. solves the MDP and the structural-similarity recursion *offline /
   in the background* (when the device is idle), producing a similarity
   index over known states;
2. answers online decisions by table lookup for known states, or by
   reusing the decision of the *most similar* known state for novel or
   stale states -- with Eq. (10) bounding the value loss by
   ``delta_S/(1-rho)``, i.e. ``O(1/(1-rho))`` competitiveness;
3. spends a per-decision refinement budget that grows with ``rho``
   (more discounting horizon means more Bellman sweeps for the same
   precision), which is exactly the overhead curve of paper Figure 16.
"""

from __future__ import annotations

import math
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from ..durability.state import pack_state, unpack_state
from .graph import MDPGraph
from .mdp import MDP, Action, State
from .similarity import SimilarityResult, StructuralSimilarity
from .solver import Solution, value_iteration

__all__ = ["DecisionRecord", "OnlineScheduler", "SchedulerStats",
           "compile_decision_table"]


def compile_decision_table(
    policy_map: Mapping[State, Action],
    state_code: Callable[[State], int],
    n_states: int,
    action_code: Mapping[Action, int],
    default: int = -1,
) -> np.ndarray:
    """Flatten a solved policy into a dense ``(n_states,)`` int8 table.

    ``state_code`` maps each MDP state to its integer slot and
    ``action_code`` each action to its entry value.  Slots whose state
    is absent from ``policy_map`` -- and states whose action has no
    code -- keep ``default``, which plays the role of "the policy has
    no opinion" (callers route such lookups to their fallback rule,
    exactly as :meth:`OnlineScheduler.decide` callers treat a state
    missing from ``solution.policy``).  After compilation a decision
    is one fancy-indexing gather, which is what lets the fleet engine
    answer a whole batch of scheduler lookups per step.
    """
    table = np.full(n_states, default, dtype=np.int8)
    for state, action in policy_map.items():
        code = action_code.get(action)
        if code is not None:
            table[state_code(state)] = code
    return table


@dataclass
class SchedulerStats:
    """Hit/miss counters and per-phase timing of the online path."""

    #: Decisions answered from the O(1) decision cache.
    cache_hits: int = 0
    #: Decisions that ran the full lookup/similarity/fallback path.
    cache_misses: int = 0
    #: Seconds spent in per-decision Bellman refinement sweeps.
    refine_s: float = 0.0
    #: Seconds spent resolving decisions (lookup, similarity, fallback).
    lookup_s: float = 0.0
    #: Seconds spent in background work (similarity index, re-solves).
    background_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of decisions served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass(frozen=True)
class DecisionRecord:
    """One online decision with provenance and measured latency."""

    state: State
    action: Optional[Action]
    #: "exact" (known state), "similar" (borrowed), "fallback".
    source: str
    #: The state whose decision was borrowed, when source == "similar".
    surrogate: Optional[State]
    #: Structural distance to the surrogate (0 for exact decisions).
    delta_s: float
    #: Wall-clock decision latency in microseconds.
    latency_us: float


class OnlineScheduler:
    """Similarity-indexed online decision engine.

    Parameters
    ----------
    mdp:
        The (profiled) decision MDP.
    rho:
        Discount factor; also instantiates the similarity discounts as
        the bound requires (``C_S = 1``, ``C_A = rho``).
    precision:
        Target precision of the per-decision refinement; the sweep
        count scales as ``ln(1/precision) / (1 - rho)``.
    compute_speed:
        Relative device speed (divides the refinement budget's work,
        modelling the Nexus/Honor/Lenovo differences of Figure 16).
    decision_cache:
        Memoise resolved decisions so repeated states answer in O(1)
        without re-running the refinement budget (default on).  The
        cache is invalidated by :meth:`mark_stale`, :meth:`recompute`
        and :meth:`build_similarity_index`.  Disable it to measure the
        raw per-decision overhead (the Figure 16 calibration does).
    fast_similarity:
        Solver flavour for :meth:`build_similarity_index`; the default
        uses the vectorised Algorithm 1 path.
    """

    def __init__(
        self,
        mdp: MDP,
        rho: float = 0.9,
        precision: float = 1e-2,
        compute_speed: float = 1.0,
        similarity_tol: float = 1e-3,
        similarity_max_iter: int = 25,
        decision_cache: bool = True,
        fast_similarity: bool = True,
    ) -> None:
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must lie in [0, 1)")
        if compute_speed <= 0:
            raise ValueError("compute_speed must be positive")
        self.mdp = mdp
        self.rho = rho
        self.precision = precision
        self.compute_speed = compute_speed
        self.graph = MDPGraph(mdp)
        self.solution: Solution = value_iteration(mdp, rho)
        self.similarity: Optional[SimilarityResult] = None
        self._similarity_tol = similarity_tol
        self._similarity_max_iter = similarity_max_iter
        self._fast_similarity = fast_similarity
        self._stale: set = set()
        self.decisions: List[DecisionRecord] = []
        self.stats = SchedulerStats()
        self._cache_enabled = decision_cache
        #: state -> (action, source, surrogate, delta_s) of a resolved decision.
        self._decision_cache: Dict[State, Tuple[Optional[Action], str, Optional[State], float]] = {}

    # ------------------------------------------------------------------
    # Background work
    # ------------------------------------------------------------------
    def build_similarity_index(self) -> SimilarityResult:
        """Run Algorithm 1 in the background (bound instantiation)."""
        ob = obs.session()
        span = (ob.tracer.start("scheduler.build_similarity_index")
                if ob is not None else None)
        started = time.perf_counter()
        solver = StructuralSimilarity(
            self.graph,
            c_s=1.0,
            c_a=max(self.rho, 1e-6),
            tol=self._similarity_tol,
            max_iter=self._similarity_max_iter,
            fast=self._fast_similarity,
        )
        self.similarity = solver.solve()
        self._decision_cache.clear()
        elapsed = time.perf_counter() - started
        self.stats.background_s += elapsed
        if span is not None:
            span.finish()
            ob.registry.counter("scheduler.background_s").inc(elapsed)
        return self.similarity

    def mark_stale(self, state: State) -> None:
        """Flag a state whose statistics changed since the last solve."""
        self._stale.add(state)
        # Conservative: surrogate decisions may reference the stale
        # state, so the whole memo goes, not just this entry.
        self._decision_cache.clear()

    def recompute(self) -> None:
        """Full background refresh: re-solve values, clear staleness."""
        ob = obs.session()
        span = (ob.tracer.start("scheduler.recompute")
                if ob is not None else None)
        started = time.perf_counter()
        self.solution = value_iteration(self.mdp, self.rho)
        self._stale.clear()
        self._decision_cache.clear()
        elapsed = time.perf_counter() - started
        self.stats.background_s += elapsed
        if span is not None:
            span.finish()
            ob.registry.counter("scheduler.background_s").inc(elapsed)

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def decide(self, state: State) -> DecisionRecord:
        """Return the scheduled action for ``state``, measured.

        Known fresh states answer from the solved policy; stale or
        unknown states borrow from the most similar known state when a
        similarity index exists, falling back to a one-step greedy
        choice otherwise.  With the decision cache on, a state seen
        before answers in O(1) from the memo.
        """
        ob = obs.session()
        started = time.perf_counter()

        if self._cache_enabled:
            cached = self._decision_cache.get(state)
            if cached is not None:
                action, source, surrogate, delta = cached
                self.stats.cache_hits += 1
                latency_us = (time.perf_counter() - started) * 1e6
                if ob is not None:
                    reg = ob.registry
                    reg.counter("scheduler.cache_hits").inc()
                    reg.histogram("scheduler.decide_s").observe(latency_us * 1e-6)
                record = DecisionRecord(state, action, source, surrogate, delta, latency_us)
                self.decisions.append(record)
                return record
        self.stats.cache_misses += 1

        self._refinement_sweeps(state)
        refined = time.perf_counter()
        self.stats.refine_s += refined - started

        source = "exact"
        surrogate: Optional[State] = None
        delta = 0.0
        action: Optional[Action]

        known = state in self.solution.policy
        fresh = state not in self._stale
        if known and fresh:
            action = self.solution.policy[state]
        elif self.similarity is not None and state in self.similarity.graph._state_index:
            surrogate, sim = self.similarity.most_similar_state(state)
            delta = 1.0 - sim
            action = self.solution.policy.get(surrogate)
            if action is not None and action not in self.mdp.available_actions(state):
                action = self._greedy(state)
                source = "fallback"
            else:
                source = "similar"
        else:
            action = self._greedy(state)
            source = "fallback"

        if self._cache_enabled:
            self._decision_cache[state] = (action, source, surrogate, delta)

        now = time.perf_counter()
        self.stats.lookup_s += now - refined
        latency_us = (now - started) * 1e6
        if ob is not None:
            reg = ob.registry
            reg.counter("scheduler.cache_misses").inc()
            reg.counter("scheduler.refine_s").inc(refined - started)
            reg.counter("scheduler.lookup_s").inc(now - refined)
            reg.histogram("scheduler.decide_s").observe(latency_us * 1e-6)
        record = DecisionRecord(state, action, source, surrogate, delta, latency_us)
        self.decisions.append(record)
        return record

    def mean_latency_us(self) -> float:
        """Average measured decision latency (Figure 16's y-axis)."""
        if not self.decisions:
            return 0.0
        return sum(d.latency_us for d in self.decisions) / len(self.decisions)

    def refinement_sweep_count(self) -> int:
        """Bellman sweeps per decision implied by (rho, precision).

        Value iteration needs about ``ln(1/eps) / (1 - rho)`` sweeps to
        reach precision eps; divided by the device's compute speed.
        This is the knob behind the Figure 16 overhead curve.
        """
        sweeps = math.log(1.0 / self.precision) / max(1.0 - self.rho, 1e-6)
        return max(1, int(math.ceil(sweeps / self.compute_speed)))

    def compile_action_table(
        self,
        state_code: Callable[[State], int],
        n_states: int,
        action_code: Mapping[Action, int],
        default: int = -1,
    ) -> np.ndarray:
        """Export the solved policy as a dense action table.

        Equivalent to answering :meth:`decide` for every known fresh
        state up front: known states always resolve to
        ``solution.policy[state]`` (refinement sweeps touch values,
        never the solved policy), so the table reproduces the online
        path's action for every state it covers and leaves ``default``
        where ``decide`` would take the similarity/greedy fallback.
        """
        return compile_decision_table(self.solution.policy, state_code,
                                      n_states, action_code, default)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """All mutable solver state, isolated from later mutation.

        The solution values (mutated by refinement sweeps), the
        similarity index, staleness set, decision log/stats and the
        decision memo are deep-copied via pickle so the checkpoint is a
        true snapshot, not a live alias.  Static configuration (mdp,
        rho, precision, ...) is identity, not state.
        """
        blob = pickle.dumps({
            "solution": self.solution,
            "similarity": self.similarity,
            "stale": self._stale,
            "decisions": self.decisions,
            "stats": self.stats,
            "decision_cache": self._decision_cache,
        }, protocol=4)
        return pack_state(self, self._STATE_VERSION, {"pickle": blob})

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        data = pickle.loads(payload["pickle"])
        self.solution = data["solution"]
        self.similarity = data["similarity"]
        self._stale = data["stale"]
        self.decisions = data["decisions"]
        self.stats = data["stats"]
        self._decision_cache = data["decision_cache"]

    # ------------------------------------------------------------------
    def _greedy(self, state: State) -> Optional[Action]:
        acts = self.mdp.available_actions(state)
        if not acts:
            return None
        return max(acts, key=lambda a: self.mdp.expected_reward(state, a))

    def _refinement_sweeps(self, state: State) -> None:
        """Run the per-decision local Bellman refinement budget."""
        sweeps = self.refinement_sweep_count()
        sweeps = min(sweeps, 5000)
        values = self.solution.values
        acts = self.mdp.available_actions(state)
        if not acts:
            return
        for _ in range(sweeps):
            best = -math.inf
            for a in acts:
                q = sum(
                    p * (self.mdp.reward(state, a, sp) + self.rho * values.get(sp, 0.0))
                    for sp, p in self.mdp.transitions[(state, a)].items()
                )
                if q > best:
                    best = q
            values[state] = best
