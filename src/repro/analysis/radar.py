"""The Figure 4 radar-map analysis of battery chemistries.

Normalises the five feature dimensions across the catalogue and
computes the paper's two observations quantitatively: no single
chemistry dominates every axis, but a big+LITTLE pair covers the map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..battery.chemistry import CHEMISTRIES, Chemistry

__all__ = ["RADAR_AXES", "radar_rows", "dominates", "pareto_front", "pair_coverage"]

#: The five radar axes in display order.
RADAR_AXES: Tuple[str, ...] = (
    "cost_efficiency",
    "lifetime",
    "discharge_rate",
    "energy_density",
    "safety",
)


def radar_rows(
    chemistries: Iterable[Chemistry] = tuple(CHEMISTRIES.values()),
) -> Dict[str, Dict[str, float]]:
    """Normalised [0, 1] feature rows keyed by chemistry name."""
    return {c.name: c.ratings.normalized() for c in chemistries}


def dominates(a: Chemistry, b: Chemistry) -> bool:
    """True when ``a`` is at least as good on every axis and better on one."""
    ra, rb = a.ratings.as_dict(), b.ratings.as_dict()
    at_least = all(ra[axis] >= rb[axis] for axis in RADAR_AXES)
    strictly = any(ra[axis] > rb[axis] for axis in RADAR_AXES)
    return at_least and strictly


def pareto_front(
    chemistries: Sequence[Chemistry] = tuple(CHEMISTRIES.values()),
) -> List[Chemistry]:
    """Chemistries not dominated by any other (the paper's observation
    one: nobody provides optimal coverage of all five dimensions)."""
    front: List[Chemistry] = []
    for c in chemistries:
        if not any(dominates(other, c) for other in chemistries if other is not c):
            front.append(c)
    return front


def pair_coverage(a: Chemistry, b: Chemistry) -> float:
    """Mean over axes of the pair's best normalised rating.

    1.0 means the pair jointly tops every axis; used to show that a
    big+LITTLE combination covers the radar far better than any single
    chemistry.
    """
    na, nb = a.ratings.normalized(), b.ratings.normalized()
    return sum(max(na[axis], nb[axis]) for axis in RADAR_AXES) / len(RADAR_AXES)
