"""Curve fitting helpers used by the figure reproductions.

The paper overlays fitted curves on its scatter data (e.g. the V-edge
voltage fit in Figure 3 and the discharge curves in Figure 12).  We
provide least-squares polynomial and exponential fits plus simple
goodness-of-fit reporting, built on numpy only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = ["FitResult", "fit_polynomial", "fit_exponential", "r_squared"]


@dataclass(frozen=True)
class FitResult:
    """A fitted model plus its quality."""

    #: Callable evaluating the fitted curve.
    predict: Callable[[np.ndarray], np.ndarray]
    #: Model parameters (meaning depends on the fit family).
    params: Tuple[float, ...]
    #: Coefficient of determination on the training data.
    r2: float

    def __call__(self, x: Sequence[float]) -> np.ndarray:
        """Evaluate the fit at new points."""
        return self.predict(np.asarray(x, dtype=float))


def r_squared(y: Sequence[float], y_hat: Sequence[float]) -> float:
    """Coefficient of determination of predictions against data."""
    y = np.asarray(y, dtype=float)
    y_hat = np.asarray(y_hat, dtype=float)
    if y.shape != y_hat.shape:
        raise ValueError("shapes must match")
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_polynomial(x: Sequence[float], y: Sequence[float], degree: int = 2) -> FitResult:
    """Least-squares polynomial fit of a given degree."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size == 0:
        raise ValueError("x and y must be non-empty and equally sized")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    coeffs = np.polyfit(x, y, degree)

    def predict(xs: np.ndarray) -> np.ndarray:
        return np.polyval(coeffs, xs)

    return FitResult(predict, tuple(float(c) for c in coeffs), r_squared(y, predict(x)))


def fit_exponential(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * exp(b x) + c`` by log-linearisation.

    Several candidate offsets ``c`` are tried and the one with the best
    coefficient of determination in the *original* space wins --
    adequate for the V-edge recovery tail and the Figure 16 overhead
    trend.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 3:
        raise ValueError("need at least three samples")
    y_min = float(y.min())
    candidates = [y_min - 1e-9, 0.5 * y_min - 1e-9]
    if y_min > 0:
        candidates.append(0.0)

    best: FitResult = None  # type: ignore[assignment]
    for c in candidates:
        shifted = np.maximum(y - c, 1e-12)
        b, log_a = np.polyfit(x, np.log(shifted), 1)
        a = float(np.exp(log_a))

        def predict(xs: np.ndarray, a=a, b=b, c=c) -> np.ndarray:
            return a * np.exp(b * xs) + c

        fit = FitResult(predict, (a, float(b), float(c)),
                        r_squared(y, predict(x)))
        if best is None or fit.r2 > best.r2:
            best = fit
    return best
