"""Text reporting for the benchmark harness.

Formats the tables and series the benchmarks print, in the same
rows/columns the paper reports, plus the service-time comparison
arithmetic the headline numbers are quoted from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..sim.discharge import DischargeResult

__all__ = [
    "format_table",
    "format_series",
    "gain_percent",
    "ComparisonRow",
    "comparison_table",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_series(
    name: str, points: Sequence[Tuple[float, float]], max_points: int = 24
) -> str:
    """Render an (x, y) series as one compact line per point group."""
    if len(points) > max_points:
        stride = max(1, len(points) // max_points)
        points = list(points[::stride])
    body = ", ".join(f"({x:.4g}, {y:.4g})" for x, y in points)
    return f"{name}: {body}"


def gain_percent(value: float, baseline: float) -> float:
    """Percentage improvement of ``value`` over ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (value / baseline - 1.0) * 100.0


@dataclass(frozen=True)
class ComparisonRow:
    """One policy's outcome relative to a reference policy."""

    policy: str
    service_time_s: float
    gain_over_reference_pct: float
    energy_j: float
    switch_count: int
    little_ratio: float
    max_cpu_temp_c: float


def comparison_table(
    results: Mapping[str, DischargeResult],
    reference: str = "Practice",
) -> List[ComparisonRow]:
    """Build the Figure 12-style comparison rows against a reference."""
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} missing from results")
    base = results[reference].service_time_s
    rows: List[ComparisonRow] = []
    for name, res in results.items():
        rows.append(
            ComparisonRow(
                policy=name,
                service_time_s=res.service_time_s,
                gain_over_reference_pct=gain_percent(res.service_time_s, base),
                energy_j=res.energy_delivered_j,
                switch_count=res.switch_count,
                little_ratio=res.little_ratio,
                max_cpu_temp_c=res.max_cpu_temp_c,
            )
        )
    rows.sort(key=lambda r: -r.service_time_s)
    return rows
