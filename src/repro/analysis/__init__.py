"""Analysis helpers: fitting, radar normalisation, reporting."""

from .fitting import FitResult, fit_exponential, fit_polynomial, r_squared
from .radar import RADAR_AXES, dominates, pair_coverage, pareto_front, radar_rows
from .reporting import (
    ComparisonRow,
    comparison_table,
    format_series,
    format_table,
    gain_percent,
)

__all__ = [
    "FitResult",
    "fit_exponential",
    "fit_polynomial",
    "r_squared",
    "RADAR_AXES",
    "dominates",
    "pair_coverage",
    "pareto_front",
    "radar_rows",
    "ComparisonRow",
    "comparison_table",
    "format_series",
    "format_table",
    "gain_percent",
]
