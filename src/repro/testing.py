"""Importable test doubles shared by the test suite and smoke scripts.

Chaos and distributed-sweep tests need policies that are slow (so a
SIGKILL lands *mid-cell*) or hostile (so containment is exercised)
while remaining **picklable by module path** -- a distributed worker
is a fresh ``python -m repro.sim.distributed`` process that can import
``repro.testing`` but not a pytest-mangled test module.  Keeping these
doubles here, next to the code they stress, is what lets the same
classes serve unit tests, the CI smoke scripts and ad-hoc two-terminal
experiments.

The delays burn wall time only; the simulated physics (and therefore
every result byte) are identical to the undelayed base policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .capman.baselines import DualPolicy

__all__ = ["SlowDualPolicy"]


@dataclass
class SlowDualPolicy(DualPolicy):
    """A DualPolicy that wastes ``delay_s`` of wall time per cell.

    Slowing the cell down guarantees fault injection (worker SIGKILL,
    cache partition) lands while work is genuinely in flight instead
    of after the sweep already finished.
    """

    delay_s: float = 0.4

    def build_pack(self):
        time.sleep(self.delay_s)
        return super().build_pack()
