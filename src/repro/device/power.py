"""Component power models (paper Table II) and the state power table
(paper Table III).

Table II gives the parametric models:

* CPU:    ``P = gamma_freq * u + C``        (linear in utilisation)
* Screen: ``P = (alpha_b + alpha_w)/2 * B + C``  (linear in brightness)
* WiFi:   piecewise linear in packet rate with threshold ``t``
* TEC:    ``P = alpha * I * dT + I^2 R``    (see :mod:`repro.thermal.tec`)

Table III gives the measured average per-state powers that anchor the
models for the tested phones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from .states import CpuState, DeviceState, ScreenState, TecState, WifiState

__all__ = [
    "CpuPowerModel",
    "ScreenPowerModel",
    "WifiPowerModel",
    "StatePowerTable",
    "PAPER_STATE_POWER_MW",
]

#: Paper Table III: average power (mW) of every hardware state.
PAPER_STATE_POWER_MW: Dict[str, Dict[str, float]] = {
    "cpu": {"C0": 612.0, "C1": 462.0, "C2": 310.0, "sleep": 55.0},
    "screen": {"off": 22.0, "on": 790.0},
    "wifi": {"idle": 60.0, "access": 1284.0, "send": 1548.0},
    "tec": {"off": 0.0, "on": 29.17},
}


@dataclass(frozen=True)
class CpuPowerModel:
    """``P = gamma[freq] * u + C`` with utilisation ``u`` in [0, 100].

    ``gamma_by_freq`` holds one slope per frequency index (Table II's
    ``freq = 0, 1, ..., n``).
    """

    gamma_by_freq: Sequence[float] = (2.2, 3.4, 5.0)
    constant_mw: float = 55.0

    def power_mw(self, utilization: float, freq_index: int = 0) -> float:
        """Power at a utilisation percentage and frequency index (mW)."""
        if not 0.0 <= utilization <= 100.0:
            raise ValueError("utilization must lie in [0, 100]")
        if not 0 <= freq_index < len(self.gamma_by_freq):
            raise ValueError(f"freq_index {freq_index} out of range")
        return self.gamma_by_freq[freq_index] * utilization + self.constant_mw

    @property
    def n_freqs(self) -> int:
        """Number of available frequency levels."""
        return len(self.gamma_by_freq)


@dataclass(frozen=True)
class ScreenPowerModel:
    """``P = (alpha_b + alpha_w)/2 * B_level + C`` with B in [0, 255]."""

    alpha_black: float = 2.0
    alpha_white: float = 4.0
    constant_mw: float = 22.0

    def power_mw(self, brightness: int, on: bool = True) -> float:
        """Panel power at a brightness level (mW)."""
        if not on:
            return self.constant_mw
        if not 0 <= brightness <= 255:
            raise ValueError("brightness must lie in [0, 255]")
        slope = 0.5 * (self.alpha_black + self.alpha_white)
        return slope * brightness + self.constant_mw


@dataclass(frozen=True)
class WifiPowerModel:
    """Piecewise-linear WiFi model with packet-rate threshold ``t``.

    Below the threshold (light traffic) the low-slope regime applies;
    above it the radio enters the high-power regime.  The paper uses a
    100 kB/s threshold on Android 5.0.1.
    """

    gamma_low: float = 2.4
    gamma_high: float = 4.6
    constant_low_mw: float = 60.0
    constant_high_mw: float = 824.0
    threshold_kbps: float = 100.0

    def power_mw(self, packet_rate_kbps: float) -> float:
        """Radio power at a packet rate (mW)."""
        if packet_rate_kbps < 0:
            raise ValueError("packet rate must be non-negative")
        if packet_rate_kbps <= self.threshold_kbps:
            return self.gamma_low * packet_rate_kbps + self.constant_low_mw
        return self.gamma_high * (packet_rate_kbps - self.threshold_kbps) + self.constant_high_mw


@dataclass
class StatePowerTable:
    """Average power of every component state (Table III), in mW.

    This is the coarse per-state bookkeeping the MDP rewards are
    computed against; the parametric Table II models refine within a
    state (utilisation, brightness, packet rate).
    """

    cpu_mw: Dict[CpuState, float] = field(default_factory=lambda: {
        CpuState.C0: PAPER_STATE_POWER_MW["cpu"]["C0"],
        CpuState.C1: PAPER_STATE_POWER_MW["cpu"]["C1"],
        CpuState.C2: PAPER_STATE_POWER_MW["cpu"]["C2"],
        CpuState.SLEEP: PAPER_STATE_POWER_MW["cpu"]["sleep"],
    })
    screen_mw: Dict[ScreenState, float] = field(default_factory=lambda: {
        ScreenState.OFF: PAPER_STATE_POWER_MW["screen"]["off"],
        ScreenState.ON: PAPER_STATE_POWER_MW["screen"]["on"],
    })
    wifi_mw: Dict[WifiState, float] = field(default_factory=lambda: {
        WifiState.IDLE: PAPER_STATE_POWER_MW["wifi"]["idle"],
        WifiState.ACCESS: PAPER_STATE_POWER_MW["wifi"]["access"],
        WifiState.SEND: PAPER_STATE_POWER_MW["wifi"]["send"],
    })
    tec_mw: Dict[TecState, float] = field(default_factory=lambda: {
        TecState.OFF: PAPER_STATE_POWER_MW["tec"]["off"],
        TecState.ON: PAPER_STATE_POWER_MW["tec"]["on"],
    })

    def scaled(self, factor: float) -> "StatePowerTable":
        """A copy with all component powers scaled by ``factor``.

        Used to derive the Honor/Lenovo profiles from the Nexus table.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return StatePowerTable(
            cpu_mw={k: v * factor for k, v in self.cpu_mw.items()},
            screen_mw={k: v * factor for k, v in self.screen_mw.items()},
            wifi_mw={k: v * factor for k, v in self.wifi_mw.items()},
            tec_mw=dict(self.tec_mw),
        )

    def state_power_mw(self, state: DeviceState) -> float:
        """Total average power of a device state vector (mW)."""
        return (
            self.cpu_mw[state.cpu]
            + self.screen_mw[state.screen]
            + self.wifi_mw[state.wifi]
            + self.tec_mw[state.tec]
        )

    def state_power_w(self, state: DeviceState) -> float:
        """Total average power of a device state vector (W)."""
        return self.state_power_mw(state) / 1000.0
