"""System-call / binder-event action vocabulary.

Following Pathak et al. (EuroSys'11), the MDP's actions are system
calls and binder messages that move devices between power states.  The
paper records over 200 distinct calls; we generate a structured
vocabulary of the same order: a set of semantic *classes* (wakeups,
screen events, network I/O, compute bursts, timers, ...) each expanded
into numbered concrete calls, plus the effect every class has on the
device state vector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .states import CpuState, DeviceState, ScreenState, WifiState

__all__ = [
    "SyscallClass",
    "Syscall",
    "SyscallVocabulary",
    "default_vocabulary",
]


class SyscallClass(enum.Enum):
    """Semantic classes of system calls relevant to power states."""

    WAKE_UP = "wake_up"              # full wakeup: CPU to C0, screen on
    SCREEN_ON = "screen_on"
    SCREEN_OFF = "screen_off"
    CPU_BOOST = "cpu_boost"          # governor ramps to C0
    CPU_RELAX = "cpu_relax"          # governor drops a level
    CPU_IDLE = "cpu_idle"            # enter a deeper C-state
    SUSPEND = "suspend"              # whole device to sleep
    NET_CONNECT = "net_connect"      # wifi idle -> access
    NET_SEND = "net_send"            # wifi -> send
    NET_DONE = "net_done"            # wifi back to idle
    TIMER = "timer"                  # periodic housekeeping, no change
    SENSOR = "sensor"                # sensor read, brief CPU activity
    BINDER_CALL = "binder_call"      # IPC, brief CPU activity
    MEDIA_DECODE = "media_decode"    # steady medium compute


@dataclass(frozen=True)
class Syscall:
    """One concrete call: a class instance with a stable name/id."""

    name: str
    klass: SyscallClass

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: How each class rewrites the device component states.  ``None``
#: leaves a component unchanged.
_EFFECTS: Dict[SyscallClass, Tuple[Optional[CpuState], Optional[ScreenState], Optional[WifiState]]] = {
    SyscallClass.WAKE_UP: (CpuState.C0, ScreenState.ON, None),
    SyscallClass.SCREEN_ON: (CpuState.C1, ScreenState.ON, None),
    SyscallClass.SCREEN_OFF: (None, ScreenState.OFF, None),
    SyscallClass.CPU_BOOST: (CpuState.C0, None, None),
    SyscallClass.CPU_RELAX: (CpuState.C1, None, None),
    SyscallClass.CPU_IDLE: (CpuState.C2, None, None),
    SyscallClass.SUSPEND: (CpuState.SLEEP, ScreenState.OFF, WifiState.IDLE),
    SyscallClass.NET_CONNECT: (CpuState.C1, None, WifiState.ACCESS),
    SyscallClass.NET_SEND: (None, None, WifiState.SEND),
    SyscallClass.NET_DONE: (None, None, WifiState.IDLE),
    SyscallClass.TIMER: (None, None, None),
    SyscallClass.SENSOR: (CpuState.C2, None, None),
    SyscallClass.BINDER_CALL: (CpuState.C1, None, None),
    SyscallClass.MEDIA_DECODE: (CpuState.C1, ScreenState.ON, None),
}

#: Concrete call names per class; expanding these yields a vocabulary
#: of the ~200-call order the paper records.
_MEMBERS: Dict[SyscallClass, List[str]] = {
    SyscallClass.WAKE_UP: ["input_event", "power_key", "alarm_fire", "push_wakeup",
                           "notification_wake", "usb_attach"],
    SyscallClass.SCREEN_ON: ["surfaceflinger_on", "display_unblank", "backlight_on",
                             "doze_exit"],
    SyscallClass.SCREEN_OFF: ["display_blank", "backlight_off", "doze_enter",
                              "screen_timeout"],
    SyscallClass.CPU_BOOST: ["sched_boost", "touch_boost", "app_launch", "gc_burst",
                             "jit_compile", "render_frame", "game_tick", "ml_infer"],
    SyscallClass.CPU_RELAX: ["governor_down", "frame_done", "vsync_idle"],
    SyscallClass.CPU_IDLE: ["cpuidle_enter", "tickless_idle", "cluster_gate"],
    SyscallClass.SUSPEND: ["autosleep", "pm_suspend", "lid_close"],
    SyscallClass.NET_CONNECT: ["socket_connect", "dns_resolve", "tls_handshake",
                               "wifi_assoc", "http_get"],
    SyscallClass.NET_SEND: ["send_burst", "upload_chunk", "stream_fetch", "sync_push",
                            "ota_download"],
    SyscallClass.NET_DONE: ["socket_close", "radio_tail_end", "sync_done"],
    SyscallClass.TIMER: ["hrtimer_tick", "watchdog_pet", "cron_job", "jiffy_update"],
    SyscallClass.SENSOR: ["accel_read", "gyro_read", "light_sense", "gps_fix",
                          "proximity_poll"],
    SyscallClass.BINDER_CALL: ["binder_txn", "ams_call", "wms_relayout", "pm_query",
                               "content_resolve", "intent_broadcast"],
    SyscallClass.MEDIA_DECODE: ["codec_frame", "audio_mix", "video_decode",
                                "display_compose"],
}


class SyscallVocabulary:
    """The action alphabet of the MDP.

    Expands each semantic class into ``variants_per_name`` numbered
    concrete calls (default sizing yields >200 actions, matching the
    paper's reported cardinality) and maps every call to its effect on
    the device state vector.
    """

    def __init__(self, variants_per_name: int = 3) -> None:
        if variants_per_name < 1:
            raise ValueError("variants_per_name must be >= 1")
        self._calls: List[Syscall] = []
        self._by_name: Dict[str, Syscall] = {}
        for klass, names in _MEMBERS.items():
            for base in names:
                for i in range(variants_per_name):
                    name = base if i == 0 else f"{base}_{i}"
                    call = Syscall(name, klass)
                    self._calls.append(call)
                    self._by_name[name] = call

    def __len__(self) -> int:
        return len(self._calls)

    def __iter__(self):
        return iter(self._calls)

    def lookup(self, name: str) -> Syscall:
        """Find a call by name; raises KeyError if unknown."""
        return self._by_name[name]

    def calls_of(self, klass: SyscallClass) -> List[Syscall]:
        """All concrete calls of a semantic class."""
        return [c for c in self._calls if c.klass is klass]

    def representative(self, klass: SyscallClass) -> Syscall:
        """The first (canonical) call of a class."""
        return self.calls_of(klass)[0]

    @staticmethod
    def apply(call: Syscall, state: DeviceState) -> DeviceState:
        """The device state after a call fires (battery/TEC untouched)."""
        cpu, screen, wifi = _EFFECTS[call.klass]
        changes = {}
        if cpu is not None:
            changes["cpu"] = cpu
        if screen is not None:
            changes["screen"] = screen
        if wifi is not None:
            changes["wifi"] = wifi
        return state.with_(**changes) if changes else state


def default_vocabulary() -> SyscallVocabulary:
    """The standard >200-call vocabulary used across the library.

    Four numbered variants per base name yield 252 concrete calls --
    the same order as the paper's "over 200 system calls recorded".
    """
    return SyscallVocabulary(variants_per_name=4)
