"""Phone hardware profiles (paper Section V, Table III).

The paper prototypes CAPMAN on three phones -- Nexus, Honor, Lenovo --
with CPU frequencies from 1040 to 2000 MHz and Android ROMs 5.0-7.1.
The Table III power numbers are measured on the Nexus; the others are
derived profiles with different power scale and compute speed (the
compute speed drives the Figure 16 decision-overhead differences).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .power import CpuPowerModel, ScreenPowerModel, StatePowerTable, WifiPowerModel

__all__ = ["PhoneProfile", "NEXUS", "HONOR", "LENOVO", "PHONES"]


@dataclass(frozen=True)
class PhoneProfile:
    """Static description of one handset.

    Parameters
    ----------
    name:
        Marketing name.
    cpu_freqs_mhz:
        Available CPU frequency levels (low to high).
    android_version:
        ROM version string (informational).
    power_table:
        Table III per-state average powers for this handset.
    compute_speed:
        Relative single-core speed; scales the CAPMAN decision latency
        measured in Figure 16 (1.0 = Nexus).
    battery_volume_cc:
        Volume budget available for the battery pack.
    rail_voltage_v:
        Nominal supply-rail voltage the pack presents to the load;
        energy-to-charge conversions (e.g. per-cell throughput in the
        daily wear simulation) use this instead of a hardcoded 3.7 V.
    """

    name: str
    cpu_freqs_mhz: Tuple[int, ...]
    android_version: str
    power_table: StatePowerTable
    cpu_model: CpuPowerModel
    screen_model: ScreenPowerModel = field(default_factory=ScreenPowerModel)
    wifi_model: WifiPowerModel = field(default_factory=WifiPowerModel)
    compute_speed: float = 1.0
    battery_volume_cc: float = 18.0
    rail_voltage_v: float = 3.7

    def __post_init__(self) -> None:
        if not self.cpu_freqs_mhz:
            raise ValueError("a profile needs at least one CPU frequency")
        if self.compute_speed <= 0:
            raise ValueError("compute_speed must be positive")
        if self.rail_voltage_v <= 0:
            raise ValueError("rail_voltage_v must be positive")

    @property
    def n_freqs(self) -> int:
        """Number of CPU frequency levels."""
        return len(self.cpu_freqs_mhz)


def _nexus_cpu_model() -> CpuPowerModel:
    # Slopes anchored so 100% utilisation at each frequency reproduces
    # the Table III C-state powers (C2=310, C1=462, C0=612 mW) with the
    # 55 mW sleep floor as the constant term.
    return CpuPowerModel(gamma_by_freq=(2.55, 4.07, 5.57), constant_mw=55.0)


NEXUS = PhoneProfile(
    name="Nexus",
    cpu_freqs_mhz=(1040, 1600, 2000),
    android_version="5.0.1",
    power_table=StatePowerTable(),
    cpu_model=_nexus_cpu_model(),
    compute_speed=1.0,
    battery_volume_cc=18.0,
)

HONOR = PhoneProfile(
    name="Honor",
    cpu_freqs_mhz=(1100, 1700, 1900),
    android_version="6.0",
    power_table=StatePowerTable().scaled(0.92),
    cpu_model=CpuPowerModel(gamma_by_freq=(2.35, 3.74, 5.12), constant_mw=50.0),
    compute_speed=1.35,
    battery_volume_cc=17.0,
)

LENOVO = PhoneProfile(
    name="Lenovo",
    cpu_freqs_mhz=(1040, 1500, 1800),
    android_version="7.1",
    power_table=StatePowerTable().scaled(1.08),
    cpu_model=CpuPowerModel(gamma_by_freq=(2.75, 4.40, 6.02), constant_mw=60.0),
    compute_speed=1.7,
    battery_volume_cc=19.0,
)

#: The tested handsets keyed by name.
PHONES: Dict[str, PhoneProfile] = {p.name: p for p in (NEXUS, HONOR, LENOVO)}
