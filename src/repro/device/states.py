"""Device power states and the combinatorial state vector (paper Fig. 7).

Each hardware component of the phone exposes a small set of power
states; the MDP state space is the cross product of the component
states plus the active battery.  The paper reports ~50 state nodes in
its finite MDP; enumerating the full vector below gives
``4 * 2 * 3 * 2 * 2 = 96`` raw combinations, of which the reachable
subset under a workload profile is of that order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from ..battery.switch import BatterySelection

__all__ = [
    "CpuState",
    "ScreenState",
    "WifiState",
    "TecState",
    "DeviceState",
    "enumerate_states",
]


class CpuState(enum.Enum):
    """CPU C-states: running levels C0..C2 plus sleep (Table III)."""

    C0 = "C0"
    C1 = "C1"
    C2 = "C2"
    SLEEP = "sleep"

    @property
    def is_active(self) -> bool:
        """True for any running C-state."""
        return self is not CpuState.SLEEP


class ScreenState(enum.Enum):
    """Screen panel state."""

    OFF = "off"
    ON = "on"


class WifiState(enum.Enum):
    """WiFi radio state (Table III: idle / access / send)."""

    IDLE = "idle"
    ACCESS = "access"
    SEND = "send"


class TecState(enum.Enum):
    """Thermoelectric cooler state."""

    OFF = "off"
    ON = "on"


@dataclass(frozen=True)
class DeviceState:
    """The full device power-state vector used as an MDP state.

    Hashable and immutable so it can key transition tables.
    """

    cpu: CpuState = CpuState.SLEEP
    screen: ScreenState = ScreenState.OFF
    wifi: WifiState = WifiState.IDLE
    tec: TecState = TecState.OFF
    battery: BatterySelection = BatterySelection.BIG

    def with_(self, **changes) -> "DeviceState":
        """A copy with some components replaced."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        """Compact readable label, e.g. ``C0/on/send/off/LITTLE``."""
        return "/".join(
            (
                self.cpu.value,
                self.screen.value,
                self.wifi.value,
                self.tec.value,
                self.battery.value,
            )
        )

    @property
    def is_awake(self) -> bool:
        """True unless the whole device is asleep and dark."""
        return self.cpu.is_active or self.screen is ScreenState.ON

    def component_tuple(self) -> Tuple[str, str, str, str, str]:
        """The raw component values, for serialisation."""
        return (
            self.cpu.value,
            self.screen.value,
            self.wifi.value,
            self.tec.value,
            self.battery.value,
        )


def enumerate_states(include_battery: bool = True) -> Iterator[DeviceState]:
    """Yield every combination of component states.

    With ``include_battery=False`` the battery dimension is fixed to
    BIG, halving the space (useful for profiling displays).
    """
    batteries = list(BatterySelection) if include_battery else [BatterySelection.BIG]
    for cpu, screen, wifi, tec, batt in itertools.product(
        CpuState, ScreenState, WifiState, TecState, batteries
    ):
        yield DeviceState(cpu, screen, wifi, tec, batt)
