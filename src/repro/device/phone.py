"""The assembled phone: profile + power models + thermal + TEC + pack.

:class:`Phone` is the physical plant the scheduler acts on.  Each
control step it takes a :class:`DemandSlice` (what the workload wants
for the next ``dt`` seconds), computes the electrical demand with the
Table II models, draws it from the battery pack, injects the resulting
heat into the RC thermal network, and reports what happened.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..battery.pack import BatteryPack, BigLittlePack, PackDraw
from ..battery.switch import BatterySelection
from ..durability.state import pack_state, unpack_state
from ..thermal.rc_network import ThermalNetwork, phone_thermal_network
from ..thermal.tec import TECUnit
from .profiles import NEXUS, PhoneProfile
from .states import CpuState, DeviceState, ScreenState, TecState, WifiState

__all__ = ["DemandSlice", "StepOutcome", "Phone", "derive_device_state"]


@dataclass(frozen=True)
class DemandSlice:
    """What the workload asks of the hardware for one interval.

    A slice is *demand*, not state: the phone turns it into component
    power states and watts.
    """

    #: CPU utilisation percentage in [0, 100].
    cpu_util: float = 0.0
    #: CPU frequency index into the profile's frequency list.
    freq_index: int = 0
    #: Whether the panel is lit.
    screen_on: bool = False
    #: Panel brightness in [0, 255] (ignored when off).
    brightness: int = 180
    #: Network packet rate in kB/s.
    wifi_kbps: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_util <= 100.0:
            raise ValueError("cpu_util must lie in [0, 100]")
        if self.wifi_kbps < 0:
            raise ValueError("wifi_kbps must be non-negative")
        if not 0 <= self.brightness <= 255:
            raise ValueError("brightness must lie in [0, 255]")


@dataclass(frozen=True)
class StepOutcome:
    """Everything observable after one phone step."""

    #: Electrical power demanded, including TEC drive (W).
    demand_w: float
    #: Energy actually delivered by the pack (J).
    energy_j: float
    #: Rail voltage (V).
    voltage_v: float
    #: True when the pack could not meet the demand (end of cycle).
    shortfall: bool
    #: Which battery served the step (None on single packs).
    served_by: Optional[BatterySelection]
    #: CPU hot-spot temperature after the step (degC).
    cpu_temp_c: float
    #: Surface temperature after the step (degC).
    surface_temp_c: float
    #: Battery-region temperature after the step (degC).
    battery_temp_c: float
    #: The device state the slice mapped to.
    device_state: DeviceState


def derive_device_state(
    demand: DemandSlice,
    tec_on: bool,
    battery: BatterySelection,
    wifi_threshold_kbps: float = 100.0,
) -> DeviceState:
    """Map a demand slice onto the Figure 7 power-state vector.

    CPU: sleeping when idle and dark; C2/C1/C0 by rising utilisation.
    WiFi: idle / access / send by packet rate around the Table II
    threshold.  TEC and battery are taken from the actuators.
    """
    if demand.cpu_util <= 0.5 and not demand.screen_on and demand.wifi_kbps <= 0.0:
        cpu = CpuState.SLEEP
    elif demand.cpu_util < 30.0:
        cpu = CpuState.C2
    elif demand.cpu_util < 70.0:
        cpu = CpuState.C1
    else:
        cpu = CpuState.C0
    screen = ScreenState.ON if demand.screen_on else ScreenState.OFF
    if demand.wifi_kbps <= 0.0:
        wifi = WifiState.IDLE
    elif demand.wifi_kbps <= 2.0 * wifi_threshold_kbps:
        wifi = WifiState.ACCESS
    else:
        wifi = WifiState.SEND
    tec = TecState.ON if tec_on else TecState.OFF
    return DeviceState(cpu, screen, wifi, tec, battery)


class Phone:
    """A simulated handset.

    Parameters
    ----------
    profile:
        Hardware profile (defaults to the Nexus of Table III).
    pack:
        Battery pack; defaults to the paper's NCA+LMO big.LITTLE pack.
    thermal:
        RC thermal network; defaults to the 4-node phone network.
    tec:
        TEC unit bridging the CPU and surface nodes.
    ambient_c:
        Ambient temperature for reporting.
    """

    def __init__(
        self,
        profile: PhoneProfile = NEXUS,
        pack: Optional[BatteryPack] = None,
        thermal: Optional[ThermalNetwork] = None,
        tec: Optional[TECUnit] = None,
        ambient_c: float = 25.0,
    ) -> None:
        self.profile = profile
        self.pack: BatteryPack = pack if pack is not None else BigLittlePack()
        self.thermal = thermal if thermal is not None else phone_thermal_network(ambient_c)
        self.tec = tec if tec is not None else TECUnit()
        self.ambient_c = ambient_c
        self.clock_s = 0.0
        self._last_state: Optional[DeviceState] = None
        #: Memoised (base_w, cpu_w) per demand slice.  The electrical
        #: demand depends only on the immutable profile and the frozen
        #: slice, and workload traces loop the same few dozen slices
        #: for hours of simulated time -- so the power models run once
        #: per distinct slice instead of twice per control step.
        self._power_cache: Dict[DemandSlice, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def cpu_temp_c(self) -> float:
        """Current CPU hot-spot temperature (degC)."""
        return self.thermal.temperature("cpu")

    @property
    def surface_temp_c(self) -> float:
        """Current surface temperature (degC)."""
        return self.thermal.temperature("surface")

    @property
    def active_battery(self) -> Optional[BatterySelection]:
        """Currently selected battery (None for single packs)."""
        if isinstance(self.pack, BigLittlePack):
            return self.pack.active
        return None

    @property
    def depleted(self) -> bool:
        """True once the pack can no longer serve load."""
        return self.pack.depleted

    @property
    def last_device_state(self) -> Optional[DeviceState]:
        """Device state of the most recent step."""
        return self._last_state

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def select_battery(self, target: BatterySelection) -> bool:
        """Route demand to a battery (no-op on single packs)."""
        if isinstance(self.pack, BigLittlePack):
            return self.pack.select(target, self.clock_s)
        return False

    def set_tec(self, on: bool) -> None:
        """Command the TEC on or off."""
        self.tec.set_on(on)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _demand_powers(self, demand: DemandSlice) -> Tuple[float, float]:
        """Memoised (total base power, CPU share) for a slice (W)."""
        cached = self._power_cache.get(demand)
        if cached is not None:
            return cached
        p = self.profile
        freq = min(demand.freq_index, p.n_freqs - 1)
        if demand.cpu_util <= 0.5 and not demand.screen_on and demand.wifi_kbps <= 0:
            cpu_mw = p.power_table.cpu_mw[CpuState.SLEEP]
        else:
            cpu_mw = p.cpu_model.power_mw(demand.cpu_util, freq)
        screen_mw = p.screen_model.power_mw(demand.brightness, on=demand.screen_on)
        wifi_mw = p.wifi_model.power_mw(demand.wifi_kbps)
        powers = ((cpu_mw + screen_mw + wifi_mw) / 1000.0, cpu_mw / 1000.0)
        self._power_cache[demand] = powers
        return powers

    def demand_power_w(self, demand: DemandSlice) -> float:
        """Electrical power the slice implies, excluding the TEC (W)."""
        return self._demand_powers(demand)[0]

    def step(self, demand: DemandSlice, dt: float) -> StepOutcome:
        """Advance the plant ``dt`` seconds under a demand slice."""
        if not (dt > 0 and math.isfinite(dt)):
            raise ValueError("dt must be positive and finite")

        base_w, cpu_w = self._demand_powers(demand)
        total_w = base_w + self.tec.power_w()

        draw: PackDraw = self.pack.draw(total_w, dt, self.clock_s)

        # Heat routing: CPU compute heats the hot spot; panel and radio
        # heat spreads on the surface; battery losses heat the pack bay.
        p = self.profile
        other_w = max(0.0, base_w - cpu_w)
        injections: Dict[str, float] = {
            "cpu": cpu_w,
            "surface": other_w * 0.6,
            "battery": draw.heat_j / dt,
        }
        tec_flows = self.tec.heat_flows(dt, self.cpu_temp_c, self.surface_temp_c)
        for node, watts in tec_flows.items():
            injections[node] = injections.get(node, 0.0) + watts
        self.thermal.step(dt, injections)

        self.pack.set_temperature(self.thermal.temperature("battery"))
        self.clock_s += dt

        battery = self.active_battery or BatterySelection.BIG
        state = derive_device_state(
            demand, self.tec.is_on, battery, p.wifi_model.threshold_kbps
        )
        self._last_state = state
        return StepOutcome(
            demand_w=total_w,
            energy_j=draw.energy_j,
            voltage_v=draw.voltage_v,
            shortfall=draw.shortfall,
            served_by=draw.served_by,
            cpu_temp_c=self.cpu_temp_c,
            surface_temp_c=self.surface_temp_c,
            battery_temp_c=self.thermal.temperature("battery"),
            device_state=state,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Composite plant state: clock, pack, thermal network, TEC.

        The power-model memo (``_power_cache``) is a pure function of
        the immutable profile and is deliberately excluded.
        """
        return pack_state(self, self._STATE_VERSION, {
            "clock_s": self.clock_s,
            # DeviceState is a frozen dataclass of enums: picklable and
            # value-comparable, so storing the object is safe.
            "last_state": self._last_state,
            "pack": self.pack.state_dict(),
            "thermal": self.thermal.state_dict(),
            "tec": self.tec.state_dict(),
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore in place, mutating the existing plant components."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.clock_s = payload["clock_s"]
        self._last_state = payload["last_state"]
        self.pack.load_state_dict(payload["pack"])
        self.thermal.load_state_dict(payload["thermal"])
        self.tec.load_state_dict(payload["tec"])
