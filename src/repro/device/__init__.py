"""Device substrate: power states, power models, profiles, phone."""

from .phone import DemandSlice, Phone, StepOutcome, derive_device_state
from .power import (
    CpuPowerModel,
    PAPER_STATE_POWER_MW,
    ScreenPowerModel,
    StatePowerTable,
    WifiPowerModel,
)
from .profiles import HONOR, LENOVO, NEXUS, PHONES, PhoneProfile
from .states import (
    CpuState,
    DeviceState,
    ScreenState,
    TecState,
    WifiState,
    enumerate_states,
)
from .syscalls import Syscall, SyscallClass, SyscallVocabulary, default_vocabulary

__all__ = [
    "DemandSlice",
    "Phone",
    "StepOutcome",
    "derive_device_state",
    "CpuPowerModel",
    "PAPER_STATE_POWER_MW",
    "ScreenPowerModel",
    "StatePowerTable",
    "WifiPowerModel",
    "HONOR",
    "LENOVO",
    "NEXUS",
    "PHONES",
    "PhoneProfile",
    "CpuState",
    "DeviceState",
    "ScreenState",
    "TecState",
    "WifiState",
    "enumerate_states",
    "Syscall",
    "SyscallClass",
    "SyscallVocabulary",
    "default_vocabulary",
]
