"""The evaluation baselines of paper Section V.

* ``Oracle``   -- offline analysis with full knowledge of the trace,
  serving as ground truth.  It tunes its burst threshold by simulating
  scaled-down discharge cycles over the actual future workload before
  the cycle starts.
* ``Practice`` -- the original phone: one battery of the same total
  capacity (a standard LCO cell) and no TEC.
* ``Dual``     -- big.LITTLE pack, but always drains the LITTLE battery
  first (failover to big when LITTLE is exhausted).
* ``Heuristic``-- big.LITTLE pack with a utilisation-based prediction
  model built from the Table II power models: predicted-heavy steps go
  to the LITTLE battery, gentle ones to the big battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..battery.cell import Cell
from ..battery.chemistry import LCO, pick_big_little
from ..battery.pack import BatteryPack, BigLittlePack, SingleBatteryPack
from ..battery.switch import BatterySelection, BatterySwitch
from ..device.phone import Phone
from ..sim.discharge import PolicyContext, SchedulingPolicy
from ..workload.traces import Trace

__all__ = ["PracticePolicy", "DualPolicy", "HeuristicPolicy", "OraclePolicy"]

#: Per-cell capacity used across the evaluation (paper: 2500 mAh).
DEFAULT_CELL_MAH = 2500.0


def _standard_pack(capacity_mah: float = DEFAULT_CELL_MAH) -> BigLittlePack:
    big_chem, little_chem = pick_big_little()
    return BigLittlePack.from_chemistries(big_chem, little_chem, capacity_mah)


@dataclass
class PracticePolicy(SchedulingPolicy):
    """Single stock battery (LCO) with the combined capacity, no TEC."""

    capacity_mah: float = 2.0 * DEFAULT_CELL_MAH
    name: str = "Practice"
    uses_tec: bool = False

    def build_pack(self) -> BatteryPack:
        return SingleBatteryPack(cell=Cell(LCO, self.capacity_mah))

    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        return None


@dataclass
class DualPolicy(SchedulingPolicy):
    """big.LITTLE pack drained LITTLE-first."""

    capacity_mah: float = DEFAULT_CELL_MAH
    name: str = "Dual"
    uses_tec: bool = False

    def build_pack(self) -> BatteryPack:
        return _standard_pack(self.capacity_mah)

    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        if ctx.soc_little > 0.02:
            return BatterySelection.LITTLE
        return BatterySelection.BIG


@dataclass
class HeuristicPolicy(SchedulingPolicy):
    """Utilisation-based big.LITTLE split (the paper's ``Heuristic``).

    Predicts demand from CPU utilisation alone via the Table II CPU
    model: utilisation above ``util_threshold`` routes to the LITTLE
    battery, below it to the big battery (with hysteresis).  Being
    blind to the screen and radio, it misclassifies network-heavy,
    low-utilisation bursts -- the weakness CAPMAN's full power-state
    model fixes.
    """

    capacity_mah: float = DEFAULT_CELL_MAH
    util_threshold: float = 70.0
    util_hysteresis: float = 12.0
    name: str = "Heuristic"
    uses_tec: bool = False

    def build_pack(self) -> BatteryPack:
        return _standard_pack(self.capacity_mah)

    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        util = ctx.demand.cpu_util
        if ctx.active is BatterySelection.LITTLE:
            if util < self.util_threshold - self.util_hysteresis:
                return BatterySelection.BIG
            return None
        if util > self.util_threshold:
            return BatterySelection.LITTLE
        return None


@dataclass
class OraclePolicy(SchedulingPolicy):
    """Offline ground truth: tunes itself on the full future trace.

    Before the cycle starts the oracle replays the trace on
    capacity-scaled packs for each candidate burst threshold and keeps
    the threshold that maximises service time; online, it routes each
    step using the *actual* demand (it reads the future, not a
    prediction).  With the TEC available, it mirrors CAPMAN's cooling.
    """

    capacity_mah: float = DEFAULT_CELL_MAH
    candidate_thresholds_w: Tuple[float, ...] = (1.0, 1.3, 1.6, 2.0, 2.4)
    #: Capacity scale for the tuning pre-runs (smaller = faster tuning).
    tuning_scale: float = 0.05
    name: str = "Oracle"
    uses_tec: bool = True

    _threshold_w: float = field(init=False, default=2.0, repr=False)

    def build_pack(self) -> BatteryPack:
        return _standard_pack(self.capacity_mah)

    def on_cycle_start(self, trace: Trace, phone: Phone) -> None:
        # Import here to avoid a circular import at module load.
        from ..sim.discharge import run_discharge_cycle

        best_time = -1.0
        best = self._threshold_w
        for threshold in self.candidate_thresholds_w:
            probe = _FixedThresholdPolicy(
                capacity_mah=self.capacity_mah * self.tuning_scale,
                threshold_w=threshold,
                time_scale=self.tuning_scale,
            )
            result = run_discharge_cycle(
                probe, trace, profile=phone.profile,
                control_dt=2.0, max_duration_s=3.0 * 3600.0,
            )
            if result.service_time_s > best_time:
                best_time = result.service_time_s
                best = threshold
        self._threshold_w = best

    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        # Hysteresis keeps the oracle from paying switch costs on
        # demand wiggle right at the threshold.
        if ctx.active is BatterySelection.LITTLE:
            want_little = ctx.predicted_power_w > 0.75 * self._threshold_w
        else:
            want_little = ctx.predicted_power_w > self._threshold_w
        if want_little and ctx.soc_little > 0.02:
            return BatterySelection.LITTLE
        if ctx.soc_big > 0.02:
            return BatterySelection.BIG
        return BatterySelection.LITTLE


@dataclass
class _FixedThresholdPolicy(SchedulingPolicy):
    """Internal probe used by the oracle's offline tuning sweep.

    Runs on a time-compressed pack (capacity scaled down, KiBaM
    diffusion scaled up) so threshold ranking is done in the same
    rate-capacity regime as the real cycle but much faster.
    """

    capacity_mah: float = DEFAULT_CELL_MAH
    threshold_w: float = 2.0
    time_scale: float = 1.0
    name: str = "OracleProbe"
    uses_tec: bool = True

    def build_pack(self) -> BatteryPack:
        big_chem, little_chem = pick_big_little()
        switch = BatterySwitch()
        if self.time_scale < 1.0:
            big_chem = big_chem.time_compressed(self.time_scale)
            little_chem = little_chem.time_compressed(self.time_scale)
            # Switch costs must shrink with the pack or they would
            # dominate the compressed cycle and skew threshold ranking.
            switch = BatterySwitch(
                switch_energy_j=switch.switch_energy_j * self.time_scale,
                switch_heat_j=switch.switch_heat_j * self.time_scale,
            )
        pack = BigLittlePack.from_chemistries(big_chem, little_chem, self.capacity_mah)
        pack.switch = switch
        return pack

    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        if ctx.active is BatterySelection.LITTLE:
            want_little = ctx.predicted_power_w > 0.75 * self.threshold_w
        else:
            want_little = ctx.predicted_power_w > self.threshold_w
        if want_little and ctx.soc_little > 0.02:
            return BatterySelection.LITTLE
        if ctx.soc_big > 0.02:
            return BatterySelection.BIG
        return BatterySelection.LITTLE
