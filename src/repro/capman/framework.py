"""The CAPMAN framework facade (paper Figure 5).

:class:`Capman` wires the whole framework onto a live phone for
real-time use outside the experiment harness: the profiler/monitor
collects runtime statistics, the MDP + online scheduler produce battery
decisions, and the actuator realises them together with the TEC
thermostat.  Call :meth:`tick` once per control interval with the
current demand; everything else -- learning, replanning, switching,
cooling -- happens inside.

The :mod:`repro.sim.discharge` harness remains the tool for controlled
experiments (it owns the clock and replays identical traces across
policies); this facade is the deployment-shaped API.

Passing a :class:`~repro.faults.supervisor.Supervisor` hardens the
facade for deployment: sensor readings are sanitized before the
controller sees them, commanded vs. observed actuator state is
verified every tick, and the tick degrades gracefully -- the rail is
held in single-battery mode, the workload is frequency-throttled in
thermal fallback -- with every transition on the supervisor's event
log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..battery.pack import BigLittlePack
from ..battery.switch import BatterySelection
from ..device.phone import DemandSlice, Phone, StepOutcome
from ..device.syscalls import Syscall
from ..sim.discharge import PolicyContext
from .actuator import CapmanActuator
from .controller import CapmanPolicy

if TYPE_CHECKING:  # repro.faults imports the sim package; avoid the cycle.
    from ..faults.supervisor import Supervisor

__all__ = ["CapmanTick", "Capman"]


@dataclass(frozen=True)
class CapmanTick:
    """What one control tick did."""

    #: The step's physical outcome.
    outcome: StepOutcome
    #: Battery the framework selected for the step.
    selection: BatterySelection
    #: True if a physical switch event occurred this tick.
    switched: bool
    #: Whether the TEC is powered after the tick.
    tec_on: bool
    #: Supervisor degraded mode after the tick ("normal" unsupervised).
    mode: str = "normal"


class Capman:
    """CAPMAN attached to a phone.

    Parameters
    ----------
    phone:
        A phone whose pack is a big.LITTLE pack.  Build one with
        ``Phone(pack=CapmanPolicy().build_pack())`` or let
        :meth:`create` do it.
    policy:
        The controller; defaults to a fresh :class:`CapmanPolicy` sized
        to the phone's pack.
    supervisor:
        Optional :class:`~repro.faults.supervisor.Supervisor`.  When
        present, every tick sanitizes the sensor readings, verifies
        the switch and TEC against their commands, holds the rail in
        single-battery mode and throttles the demand in thermal
        fallback.
    """

    def __init__(self, phone: Phone, policy: Optional[CapmanPolicy] = None,
                 supervisor: Optional["Supervisor"] = None) -> None:
        if not isinstance(phone.pack, BigLittlePack):
            raise TypeError("CAPMAN requires a big.LITTLE pack")
        self.phone = phone
        self.policy = policy or CapmanPolicy(
            capacity_mah=phone.pack.big.capacity_mah
        )
        self.actuator = CapmanActuator(phone)
        self.supervisor = supervisor
        # The controller learns online; it only needs the phone profile.
        from ..workload.traces import Trace
        from ..workload.base import Segment

        bootstrap = Trace([Segment(DemandSlice(), 1.0)], name="live")
        self.policy.on_cycle_start(bootstrap, phone)
        self._last_demand: Optional[DemandSlice] = None
        #: Last tick's change request: (target, switch_count at command).
        self._pending_cmd: Optional[tuple] = None

    @classmethod
    def create(cls, capacity_mah: float = 2500.0, **phone_kwargs) -> "Capman":
        """A ready-to-run phone + framework pair."""
        policy = CapmanPolicy(capacity_mah=capacity_mah)
        phone = Phone(pack=policy.build_pack(), **phone_kwargs)
        return cls(phone, policy)

    # ------------------------------------------------------------------
    def tick(
        self,
        demand: DemandSlice,
        dt: float,
        syscall: Optional[Syscall] = None,
    ) -> CapmanTick:
        """Run one control interval: decide, actuate, advance physics.

        ``syscall`` marks the event that started a new demand segment
        (feeds the MDP's action statistics); pass None for
        continuation ticks.
        """
        phone = self.phone
        pack = phone.pack
        sup = self.supervisor
        assert isinstance(pack, BigLittlePack)

        now_s = phone.clock_s
        readings = {
            "cpu_temp": phone.cpu_temp_c,
            "surface_temp": phone.surface_temp_c,
            "soc_big": pack.big.state_of_charge,
            "soc_little": pack.little.state_of_charge,
        }
        if sup is not None:
            # Sanity-check every reading, then score last tick's
            # actuation against what the hardware actually did.
            readings = sup.sanitize(now_s, readings)
            if self._pending_cmd is not None:
                commanded, evt_base = self._pending_cmd
                committed = any(e.target is commanded
                                for e in pack.switch.events[evt_base:])
                sup.verify_switch(pack.active, commanded,
                                  pack.cell_for(commanded).depleted, now_s,
                                  committed=committed)
            tec = phone.tec
            sup.verify_tec(self.actuator.tec_is_on, tec.is_on,
                           readings["cpu_temp"], now_s)
        self._pending_cmd = None

        segment_start = syscall is not None or self._last_demand != demand
        ctx = PolicyContext(
            now_s=now_s,
            demand=demand,
            syscall=syscall,
            predicted_power_w=phone.demand_power_w(demand),
            cpu_temp_c=readings["cpu_temp"],
            surface_temp_c=readings["surface_temp"],
            soc_big=readings["soc_big"],
            soc_little=readings["soc_little"],
            active=pack.active,
            segment_start=segment_start,
        )
        self._last_demand = demand

        choice = self.policy.decide_battery(ctx)
        if sup is not None and choice is not None and choice is not pack.active:
            if sup.switch_locked and not sup.switch_probe_due(now_s):
                # Single-battery safe mode: hold the current rail.
                choice = None
        if choice is not None and choice is not pack.active:
            self._pending_cmd = (choice, pack.switch.switch_count)
        selection = choice or pack.active
        switched = self.actuator.apply(selection, now_s)
        if sup is not None:
            demand = sup.throttle(demand, readings["cpu_temp"])
        outcome = phone.step(demand, dt)
        return CapmanTick(
            outcome=outcome,
            selection=pack.active,
            switched=switched,
            tec_on=self.actuator.tec_is_on,
            mode=sup.mode if sup is not None else "normal",
        )

    # ------------------------------------------------------------------
    @property
    def depleted(self) -> bool:
        """True once the pack can no longer serve demand."""
        return self.phone.depleted

    @property
    def state_of_charge(self) -> float:
        """Pack-wide state of charge."""
        return self.phone.pack.state_of_charge

    def control_signal(self, t_end: Optional[float] = None):
        """The Figure 9 TTL waveform up to ``t_end`` (default: now)."""
        return self.actuator.control_signal(
            t_end if t_end is not None else self.phone.clock_s
        )
