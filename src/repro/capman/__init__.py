"""CAPMAN framework: controller, profiler, actuator, calibration,
and the evaluation baselines."""

from .actuator import CapmanActuator
from .baselines import DualPolicy, HeuristicPolicy, OraclePolicy, PracticePolicy
from .calibration import CalibrationPoint, RuntimeCalibrator
from .controller import CapmanPolicy
from .framework import Capman, CapmanTick
from .profiler import BatteryCostModel, PowerProfiler, device_key_cache_info, device_key_of

__all__ = [
    "Capman",
    "CapmanTick",
    "CapmanActuator",
    "DualPolicy",
    "HeuristicPolicy",
    "OraclePolicy",
    "PracticePolicy",
    "CalibrationPoint",
    "RuntimeCalibrator",
    "CapmanPolicy",
    "BatteryCostModel",
    "PowerProfiler",
    "device_key_of",
    "device_key_cache_info",
]
