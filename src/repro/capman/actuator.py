"""The actuator: MDP output to physical switch signal + TEC trigger.

Paper Section III-E / IV: the battery decision is a binary choice
realised by flipping a TTL-level control signal (Figure 9) into the
comparator + MOSFET switch facility (Figure 11); the TEC is powered
directly from the switch facility whenever the monitored spot exceeds
45 degC.  :class:`CapmanActuator` wraps a phone's switch and TEC with
that interface and exposes the reconstructed control waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..battery.pack import BigLittlePack
from ..battery.switch import BatterySelection, ttl_signal
from ..device.phone import Phone
from ..thermal.hotspot import HOT_SPOT_THRESHOLD_C, ThermostatController

__all__ = ["CapmanActuator"]


@dataclass
class CapmanActuator:
    """Applies scheduling decisions to a phone's hardware.

    Parameters
    ----------
    phone:
        The phone whose switch facility and TEC are driven.  The
        phone's pack must be a big.LITTLE pack.
    threshold_c:
        TEC trigger temperature (the paper's 45 degC hot-spot line).
    """

    phone: Phone
    threshold_c: float = HOT_SPOT_THRESHOLD_C

    _thermostat: ThermostatController = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.phone.pack, BigLittlePack):
            raise TypeError("the actuator needs a big.LITTLE pack")
        self._thermostat = ThermostatController(threshold_c=self.threshold_c)

    # ------------------------------------------------------------------
    def apply(self, selection: Optional[BatterySelection], now_s: float) -> bool:
        """Commit a battery decision and refresh the TEC trigger.

        Returns True if a physical switch event occurred.  ``None``
        keeps the current battery (no signal flip).
        """
        switched = False
        if selection is not None:
            switched = self.phone.select_battery(selection)
        tec_on = self._thermostat.update(self.phone.cpu_temp_c, now_s)
        self.phone.set_tec(tec_on)
        return switched

    @property
    def active(self) -> BatterySelection:
        """The battery currently wired to the load."""
        pack = self.phone.pack
        assert isinstance(pack, BigLittlePack)
        return pack.active

    @property
    def switch_count(self) -> int:
        """Committed switch events so far."""
        pack = self.phone.pack
        assert isinstance(pack, BigLittlePack)
        return pack.switch.switch_count

    def control_signal(self, t_end: float) -> List[Tuple[float, float]]:
        """The Figure 9 TTL waveform reconstructed from the event log."""
        pack = self.phone.pack
        assert isinstance(pack, BigLittlePack)
        return ttl_signal(pack.switch.events, t_end, initial=pack.switch.initial)

    @property
    def tec_is_on(self) -> bool:
        """Whether the thermostat currently powers the TEC."""
        return self._thermostat.is_on
