"""Profile & Monitor: building the scheduling MDP from observations.

Paper Section IV ("Profile and Monitor"): CAPMAN abstracts software
patterns into device power states connected by system calls, with
power per state profiled offline (Table III).  This module turns an
observed stream of (device state, system call) events into:

* a *decision MDP* -- states are (device-state, battery) pairs, the
  two actions are "serve from big" / "serve from LITTLE", transitions
  follow the empirical next-device-state distribution, and rewards
  score each choice with the battery cost model; this is what the
  online scheduler solves;
* a *syscall MDP* -- the full paper-style formulation whose actions
  are (system-call class, battery choice) pairs, used by the
  structural-similarity analyses (Algorithm 1 / Figure 16).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Hashable, List, Optional, Tuple

from .. import obs
from ..battery.chemistry import BatteryRole, Chemistry, pick_big_little
from ..battery.switch import BatterySelection
from ..device.phone import DemandSlice, derive_device_state
from ..device.power import StatePowerTable
from ..device.profiles import NEXUS, PhoneProfile
from ..device.states import CpuState, ScreenState, WifiState
from ..device.syscalls import SyscallClass, SyscallVocabulary, default_vocabulary
from ..core.mdp import MDP
from ..workload.base import Segment
from ..workload.traces import Trace

__all__ = [
    "DeviceKey",
    "DecisionStateInterner",
    "device_key_of",
    "device_key_cache_info",
    "BatteryCostModel",
    "PowerProfiler",
]

#: The profiler's device abstraction: (cpu, screen, wifi) values.
DeviceKey = Tuple[str, str, str]

_CHOICES: Tuple[str, str] = ("use_big", "use_little")


@lru_cache(maxsize=8192)
def _device_key_cached(demand: DemandSlice, wifi_threshold_kbps: float) -> DeviceKey:
    state = derive_device_state(demand, tec_on=False,
                                battery=BatterySelection.BIG,
                                wifi_threshold_kbps=wifi_threshold_kbps)
    return (state.cpu.value, state.screen.value, state.wifi.value)


def device_key_of(demand: DemandSlice, wifi_threshold_kbps: float = 100.0) -> DeviceKey:
    """Map a demand slice onto the profiler's device-state key.

    The derivation is pure in (demand, threshold) and runs on every
    control step -- observation, dwell accounting, and the scheduler's
    state lookup all route through it -- so results are memoised
    (``DemandSlice`` is frozen/hashable).  ``device_key_cache_info()``
    exposes the hit/miss counters.
    """
    return _device_key_cached(demand, wifi_threshold_kbps)


def device_key_cache_info():
    """Hit/miss statistics of the memoised device-key derivation."""
    return _device_key_cached.cache_info()


def _selection_of(choice: str) -> BatterySelection:
    return BatterySelection.BIG if choice == "use_big" else BatterySelection.LITTLE


class DecisionStateInterner:
    """Interns decision-MDP states to dense integer codes.

    The decision MDP's states are ``(DeviceKey, battery.value)`` pairs
    (see :meth:`PowerProfiler.build_decision_mdp` and
    ``CapmanPolicy.decision_state``).  The fleet's batched CAPMAN
    driver flattens them to ``key_code * 2 + active_bit`` so a solved
    policy compiles into an ``(n_states,) int8`` action table and the
    per-step scheduler lookup becomes one fancy-indexing gather.

    Key codes are assigned in first-intern order and never move, so
    tables compiled at different replan epochs stay mutually
    addressable.  The active bit is 1 for the big battery, 0 for
    LITTLE, derived from the selection *value* -- the exact second
    element of the MDP state tuple.
    """

    _ACTIVE_BIT = {
        BatterySelection.BIG.value: 1,
        BatterySelection.LITTLE.value: 0,
    }

    def __init__(self) -> None:
        self._key_codes: Dict[DeviceKey, int] = {}

    @property
    def n_keys(self) -> int:
        return len(self._key_codes)

    @property
    def n_states(self) -> int:
        """Dense state-space size: every key times both batteries."""
        return 2 * len(self._key_codes)

    def key_code(self, key: DeviceKey) -> int:
        """Intern ``key``, returning its stable dense code."""
        code = self._key_codes.get(key)
        if code is None:
            code = len(self._key_codes)
            self._key_codes[key] = code
        return code

    def state_code(self, key: DeviceKey, active_big: bool) -> int:
        """Code of the (key, battery) state; interns the key."""
        return self.key_code(key) * 2 + (1 if active_big else 0)

    def state_code_of(self, state: Tuple[DeviceKey, str]) -> int:
        """Code of a raw MDP state tuple; the key must be interned.

        Raising on an unknown key is deliberate: the fleet interns
        every key of every schedule segment up front, so a miss here
        means the caller's coding drifted from the MDP's state space.
        """
        key, battery_value = state
        return self._key_codes[key] * 2 + self._ACTIVE_BIT[battery_value]


@dataclass(frozen=True)
class BatteryCostModel:
    """Scores serving a power level from a given chemistry.

    The cost mirrors the cell model's loss channels: ohmic loss
    (``I^2 R``), side-reaction loss (coulombic efficiency), and the
    quadratic overpotential loss that sets in when the draw outruns the
    bound well's replenishment -- plus the switch penalty and an
    *opportunity cost* on LITTLE-battery charge.  The opportunity term
    prices the LITTLE cell's scarce burst capability so the scheduler
    reserves it for surges instead of draining it on gentle load (the
    global capacity budgeting a per-step MDP reward cannot otherwise
    see).  Rewards map into [0, 1] via ``1 / (1 + cost / scale)``.
    """

    capacity_mah: float = 2500.0
    rail_voltage: float = 3.7
    #: Switch energy (~0.1 J) amortised over a typical ~5 s segment.
    switch_cost_w: float = 0.02
    scale_w: float = 0.35
    #: Mid-cycle derating of the bound well: the replenishment current
    #: shrinks as charge is consumed, so scheduling against the
    #: full-charge figure would under-protect the big battery late in
    #: the cycle.  0.7 plans for the typical mid-cycle point.
    well_derating: float = 0.7
    #: Reserve price on LITTLE charge (cost per watt served from it).
    little_reserve_per_w: float = 0.08

    def sustainable_current_a(self, chem: Chemistry) -> float:
        """Long-run current the bound well can replenish (A), derated."""
        capacity_as = self.capacity_mah / 1000.0 * 3600.0
        return self.well_derating * chem.kibam_k * capacity_as

    def cost_w(self, power_w: float, chem: Chemistry, switched: bool) -> float:
        """Expected loss rate (W) of serving ``power_w`` from ``chem``."""
        from ..battery.chemistry import RATE_LOSS_CAP

        if power_w < 0:
            raise ValueError("power must be non-negative")
        current = power_w / self.rail_voltage
        ohmic = current * current * chem.internal_resistance
        i_sus = self.sustainable_current_a(chem)
        if i_sus > 1e-12:
            extra = min(RATE_LOSS_CAP, chem.rate_loss_coeff * (current / i_sus) ** 2)
        else:
            extra = RATE_LOSS_CAP
        eta = chem.coulombic_efficiency * (1.0 - extra)
        parasitic = (1.0 / eta - 1.0) * power_w
        reserve = (
            self.little_reserve_per_w * power_w
            if chem.role is BatteryRole.LITTLE
            else 0.0
        )
        switch = self.switch_cost_w if switched else 0.0
        return ohmic + parasitic + reserve + switch

    def reward(self, power_w: float, chem: Chemistry, switched: bool) -> float:
        """Cost mapped into the MDP's [0, 1] reward range."""
        cost = self.cost_w(power_w, chem, switched)
        return 1.0 / (1.0 + cost / self.scale_w)


class PowerProfiler:
    """Accumulates observed device-state transitions and builds MDPs."""

    def __init__(
        self,
        profile: PhoneProfile = NEXUS,
        vocabulary: Optional[SyscallVocabulary] = None,
        cost_model: Optional[BatteryCostModel] = None,
    ) -> None:
        self.profile = profile
        self.vocabulary = vocabulary or default_vocabulary()
        self.cost_model = cost_model or BatteryCostModel()
        #: counts[d][d'] over observed consecutive device keys.
        self._counts: Dict[DeviceKey, Counter] = defaultdict(Counter)
        #: counts keyed by (d, syscall class) for the syscall MDP.
        self._class_counts: Dict[Tuple[DeviceKey, SyscallClass], Counter] = defaultdict(Counter)
        #: measured power per device key (running mean), in W.
        self._power_sum: Dict[DeviceKey, float] = defaultdict(float)
        self._power_n: Dict[DeviceKey, int] = defaultdict(int)
        #: time spent in each device key (s), for occupancy weighting.
        self._dwell_s: Dict[DeviceKey, float] = defaultdict(float)
        self._observations = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_trace(self, trace: Trace) -> None:
        """Feed every consecutive segment pair of a trace."""
        segments = list(trace)
        for prev, nxt in zip(segments, segments[1:]):
            self.observe(prev, nxt)

    def observe(self, prev: Segment, nxt: Segment,
                measured_power_w: Optional[float] = None) -> None:
        """Record one transition between consecutive segments.

        ``measured_power_w`` is the monitored electrical power of the
        *new* segment; when provided it refines the per-state power
        estimate (the runtime analogue of the offline Table III
        profiling), which the reward model then prefers over the
        static table.
        """
        threshold = self.profile.wifi_model.threshold_kbps
        d_prev = device_key_of(prev.demand, threshold)
        d_next = device_key_of(nxt.demand, threshold)
        self._counts[d_prev][d_next] += 1
        if nxt.syscall is not None:
            self._class_counts[(d_prev, nxt.syscall.klass)][d_next] += 1
        if measured_power_w is not None:
            if measured_power_w < 0:
                raise ValueError("measured power must be non-negative")
            self._power_sum[d_next] += measured_power_w
            self._power_n[d_next] += 1
        self._observations += 1

    def record_dwell(self, demand: DemandSlice, dt: float) -> None:
        """Accumulate time spent under a demand (occupancy statistics)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        key = device_key_of(demand, self.profile.wifi_model.threshold_kbps)
        self._dwell_s[key] += dt

    @property
    def n_observations(self) -> int:
        """Number of recorded transitions."""
        return self._observations

    @property
    def observed_device_keys(self) -> List[DeviceKey]:
        """All device keys seen as sources or targets."""
        keys = set(self._counts)
        for counter in self._counts.values():
            keys.update(counter)
        return sorted(keys)

    def state_power_w(self, key: DeviceKey) -> float:
        """Best power estimate for a device key (W), sans TEC.

        Prefers the monitored running mean when the key has been
        observed with power telemetry; falls back to the Table III
        state averages otherwise.
        """
        n = self._power_n.get(key, 0)
        if n > 0:
            return self._power_sum[key] / n
        table: StatePowerTable = self.profile.power_table
        cpu, screen, wifi = key
        return (
            table.cpu_mw[CpuState(cpu)]
            + table.screen_mw[ScreenState(screen)]
            + table.wifi_mw[WifiState(wifi)]
        ) / 1000.0

    # ------------------------------------------------------------------
    # Reserve-price calibration
    # ------------------------------------------------------------------
    def calibrate_reserve_price(self, little_energy_share: float = 0.5) -> float:
        """Waterfill the LITTLE battery's opportunity cost (per W).

        The LITTLE cell can carry roughly ``little_energy_share`` of a
        cycle's energy.  Allocating it optimally means serving the
        demand levels where the big battery's rate loss per watt is
        worst, until the share is spent.  The marginal state's loss
        density is then the price of LITTLE charge: the reward model
        charges it on every watt served from LITTLE, so the MDP only
        routes a state there when the avoided big-battery loss exceeds
        what the charge would be worth at the margin.
        """
        big_chem, little_chem = pick_big_little()
        base = self.cost_model
        keys = self.observed_device_keys
        if not keys:
            return base.little_reserve_per_w

        entries = []
        total_energy = 0.0
        for d in keys:
            p = self.state_power_w(d)
            if p <= 0:
                continue
            weight = self._dwell_s.get(d, 0.0)
            if weight <= 0:
                weight = float(sum(self._counts.get(d, {}).values()) or 1)
            cost_big = base.cost_w(p, big_chem, switched=False)
            little_model = BatteryCostModel(
                capacity_mah=base.capacity_mah,
                rail_voltage=base.rail_voltage,
                switch_cost_w=base.switch_cost_w,
                scale_w=base.scale_w,
                well_derating=base.well_derating,
                little_reserve_per_w=0.0,
            )
            cost_little = little_model.cost_w(p, little_chem, switched=False)
            delta_per_w = max(0.0, (cost_big - cost_little) / p)
            energy = weight * p
            entries.append((delta_per_w, energy))
            total_energy += energy
        if total_energy <= 0:
            return base.little_reserve_per_w

        entries.sort(key=lambda e: -e[0])
        budget = little_energy_share * total_energy
        spent = 0.0
        last_in = 0.0
        first_out = 0.0
        included = 0
        for i, (delta_per_w, energy) in enumerate(entries):
            if spent + energy <= budget:
                last_in = delta_per_w
                spent += energy
                included += 1
                continue
            if included == 0:
                # The worst state alone overflows the share: LITTLE
                # still serves it (partially, in reality) and nothing
                # else, so price just below it.
                last_in = delta_per_w
                if i + 1 < len(entries):
                    first_out = entries[i + 1][0]
            else:
                first_out = delta_per_w
            break
        # Price between the last state LITTLE serves and the first it
        # refuses, so the partition is reproduced by the reward model.
        return 0.5 * (last_in + first_out)

    # ------------------------------------------------------------------
    # MDP construction
    # ------------------------------------------------------------------
    def build_decision_mdp(self, calibrate: bool = True) -> MDP:
        """The 2-action battery-scheduling MDP (see module docstring).

        With ``calibrate`` (the default) the LITTLE reserve price is
        re-derived from the observed demand histogram before rewards
        are computed (see :meth:`calibrate_reserve_price`).
        """
        if not self._counts:
            raise ValueError("no observations recorded yet")
        ob = obs.session()
        span = (ob.tracer.start("profiler.build_decision_mdp")
                if ob is not None else None)
        if calibrate:
            import dataclasses

            price = self.calibrate_reserve_price()
            self.cost_model = dataclasses.replace(
                self.cost_model, little_reserve_per_w=price
            )
        big_chem, little_chem = pick_big_little()
        chem_of = {"use_big": big_chem, "use_little": little_chem}

        device_keys = self.observed_device_keys
        states: List[Hashable] = [
            (d, b.value) for d in device_keys for b in BatterySelection
        ]
        transitions: Dict[Tuple[Hashable, Hashable], Dict[Hashable, float]] = {}
        rewards: Dict[Tuple[Hashable, Hashable, Hashable], float] = {}

        for d, counter in self._counts.items():
            total = sum(counter.values())
            if total == 0:
                continue
            power = self.state_power_w(d)
            for b in BatterySelection:
                s = (d, b.value)
                for choice in _CHOICES:
                    b_next = _selection_of(choice)
                    chem = chem_of[choice]
                    # The chosen battery serves the *current* state's
                    # demand; the reward therefore scores ``power`` of
                    # ``d`` and is identical across successors.
                    r = self.cost_model.reward(
                        power, chem, switched=(b_next is not b)
                    )
                    dist: Dict[Hashable, float] = {}
                    for d_next, n in counter.items():
                        sp = (d_next, b_next.value)
                        dist[sp] = dist.get(sp, 0.0) + n / total
                        rewards[(s, choice, sp)] = r
                    transitions[(s, choice)] = dist
        if span is not None:
            span.annotate(states=len(states))
            span.finish()
            ob.registry.counter("profiler.mdp_builds").inc()
        return MDP(states, list(_CHOICES), transitions, rewards)

    def build_syscall_mdp(self) -> MDP:
        """The paper-style MDP with (syscall class, battery) actions.

        Used for the similarity / overhead analyses; its action space
        has the paper's reported order of magnitude once expanded over
        classes and battery choices.
        """
        if not self._class_counts:
            raise ValueError("no syscall-tagged observations recorded yet")
        ob = obs.session()
        span = (ob.tracer.start("profiler.build_syscall_mdp")
                if ob is not None else None)
        big_chem, little_chem = pick_big_little()
        chem_of = {
            BatterySelection.BIG: big_chem,
            BatterySelection.LITTLE: little_chem,
        }

        keys = set()
        for (d, _), counter in self._class_counts.items():
            keys.add(d)
            keys.update(counter)
        device_keys = sorted(keys)

        states: List[Hashable] = [
            (d, b.value) for d in device_keys for b in BatterySelection
        ]
        actions: List[Hashable] = []
        transitions: Dict[Tuple[Hashable, Hashable], Dict[Hashable, float]] = {}
        rewards: Dict[Tuple[Hashable, Hashable, Hashable], float] = {}

        seen_actions = set()
        for (d, klass), counter in self._class_counts.items():
            total = sum(counter.values())
            if total == 0:
                continue
            power = self.state_power_w(d)
            for b in BatterySelection:
                s = (d, b.value)
                for b_next in BatterySelection:
                    a = (klass.value, b_next.value)
                    if a not in seen_actions:
                        seen_actions.add(a)
                        actions.append(a)
                    chem = chem_of[b_next]
                    r = self.cost_model.reward(
                        power, chem, switched=(b_next is not b)
                    )
                    dist: Dict[Hashable, float] = {}
                    for d_next, n in counter.items():
                        sp = (d_next, b_next.value)
                        dist[sp] = dist.get(sp, 0.0) + n / total
                        rewards[(s, a, sp)] = r
                    transitions[(s, a)] = dist
        if span is not None:
            span.annotate(states=len(states), actions=len(actions))
            span.finish()
            ob.registry.counter("profiler.mdp_builds").inc()
        return MDP(states, actions, transitions, rewards)
