"""Runtime calibration: picking the discount factor per device.

Paper Figure 16: the decision overhead grows steeply as ``rho``
approaches 1 (about 300 microseconds on the Nexus), at which point
millisecond-scale battery control becomes unstable -- so each device
must be calibrated to the largest ``rho`` it can afford.  This module
measures real decision latencies of the online scheduler across a
``rho`` sweep and recommends a configuration under a latency budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.mdp import MDP
from ..core.online import OnlineScheduler

__all__ = ["CalibrationPoint", "RuntimeCalibrator"]


@dataclass(frozen=True)
class CalibrationPoint:
    """Measured overhead at one discount factor."""

    rho: float
    mean_latency_us: float
    p95_latency_us: float
    sweeps_per_decision: int


class RuntimeCalibrator:
    """Measures decision overhead as a function of ``rho``.

    Parameters
    ----------
    mdp:
        The decision MDP to schedule over.
    compute_speed:
        Relative device speed (1.0 = Nexus); faster devices do the
        same refinement in less time, separating the Figure 16 curves.
    precision:
        Refinement precision target passed to the scheduler.
    """

    def __init__(
        self,
        mdp: MDP,
        compute_speed: float = 1.0,
        precision: float = 1e-2,
    ) -> None:
        self.mdp = mdp
        self.compute_speed = compute_speed
        self.precision = precision

    def measure(self, rho: float, n_decisions: int = 64, seed: int = 0) -> CalibrationPoint:
        """Time ``n_decisions`` online decisions at a given ``rho``.

        The scheduler's decision cache is disabled here: calibration
        quantifies the *worst-case* (cold) per-decision overhead that
        Figure 16 plots, not the amortised cached latency.
        """
        scheduler = OnlineScheduler(
            self.mdp,
            rho=rho,
            precision=self.precision,
            compute_speed=self.compute_speed,
            decision_cache=False,
        )
        rng = np.random.default_rng(seed)
        live_states = [s for s in self.mdp.states if self.mdp.available_actions(s)]
        if not live_states:
            raise ValueError("MDP has no schedulable states")
        for _ in range(n_decisions):
            state = live_states[int(rng.integers(len(live_states)))]
            scheduler.decide(state)
        latencies = np.array([d.latency_us for d in scheduler.decisions])
        return CalibrationPoint(
            rho=rho,
            mean_latency_us=float(latencies.mean()),
            p95_latency_us=float(np.percentile(latencies, 95)),
            sweeps_per_decision=scheduler.refinement_sweep_count(),
        )

    def sweep(
        self,
        rhos: Sequence[float] = (0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99),
        n_decisions: int = 64,
        seed: int = 0,
    ) -> List[CalibrationPoint]:
        """Measure a whole ``rho`` sweep (the Figure 16 x-axis)."""
        return [self.measure(r, n_decisions, seed) for r in rhos]

    def recommend(
        self,
        budget_us: float,
        rhos: Sequence[float] = (0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99),
        n_decisions: int = 32,
        seed: int = 0,
    ) -> Optional[CalibrationPoint]:
        """Largest ``rho`` whose mean latency fits the budget.

        Returns None when even the smallest candidate busts the budget.
        """
        best: Optional[CalibrationPoint] = None
        for point in self.sweep(rhos, n_decisions, seed):
            if point.mean_latency_us <= budget_us:
                if best is None or point.rho > best.rho:
                    best = point
        return best
