"""The CAPMAN scheduling policy (paper Sections III-IV).

``CapmanPolicy`` is the full framework wired together:

* a :class:`~repro.capman.profiler.PowerProfiler` accumulates device
  power-state transitions online (no future knowledge);
* every ``replan_interval`` observations the decision MDP is rebuilt
  and handed to an :class:`~repro.core.online.OnlineScheduler`, which
  answers per-step battery decisions with the similarity-reuse fast
  path and the Eq. (10) competitiveness guarantee;
* before enough statistics exist, a conservative burst heuristic
  stands in -- reproducing the paper's observation that CAPMAN "drains
  fast in the beginning" on PCMark and then improves as it learns;
* the TEC is driven by the 45 degC thermostat (harness side), and the
  policy leans LITTLE while the hot spot is active, since the TEC's
  power surge is exactly the short-burst demand the LITTLE battery is
  for (paper Section III-E).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..battery.pack import BatteryPack, BigLittlePack
from ..battery.switch import BatterySelection
from ..battery.chemistry import pick_big_little
from ..core.online import OnlineScheduler
from ..device.phone import DemandSlice, Phone
from ..device.syscalls import Syscall
from ..sim.discharge import PolicyContext, SchedulingPolicy
from ..thermal.hotspot import HOT_SPOT_THRESHOLD_C
from ..workload.base import Segment
from ..workload.traces import Trace
from .profiler import PowerProfiler, device_key_of

__all__ = ["CapmanPolicy", "SOC_FLOOR"]

#: Reserve below which a cell is considered unavailable for selection.
#: Public because the fleet engine's batched CAPMAN driver must apply
#: the identical floor in its vectorised guard/lean masks.
SOC_FLOOR = 0.03
_SOC_FLOOR = SOC_FLOOR


@dataclass
class CapmanPolicy(SchedulingPolicy):
    """The CAPMAN framework as a scheduling policy.

    Parameters
    ----------
    capacity_mah:
        Per-cell capacity of the big.LITTLE pack.
    rho:
        MDP discount factor; trades decision quality against the
        decision overhead of Figure 16.
    replan_interval:
        Observations between MDP rebuild + re-solve passes (the
        background calibration cadence).
    min_observations:
        Observations required before trusting the learned model.
    fallback_threshold_w:
        Burst threshold of the stand-in heuristic used while learning.
    """

    capacity_mah: float = 2500.0
    rho: float = 0.9
    replan_interval: int = 40
    min_observations: int = 12
    fallback_threshold_w: float = 1.6
    name: str = "CAPMAN"
    uses_tec: bool = True

    _profiler: Optional[PowerProfiler] = field(init=False, default=None, repr=False)
    _scheduler: Optional[OnlineScheduler] = field(init=False, default=None, repr=False)
    _prev_demand: Optional[DemandSlice] = field(init=False, default=None, repr=False)
    _prev_syscall: Optional[Syscall] = field(init=False, default=None, repr=False)
    _since_replan: int = field(init=False, default=0, repr=False)

    # ------------------------------------------------------------------
    def build_pack(self) -> BatteryPack:
        big_chem, little_chem = pick_big_little()
        return BigLittlePack.from_chemistries(big_chem, little_chem, self.capacity_mah)

    def on_cycle_start(self, trace: Trace, phone: Phone) -> None:
        from .profiler import BatteryCostModel

        self._profiler = PowerProfiler(
            phone.profile,
            cost_model=BatteryCostModel(capacity_mah=self.capacity_mah),
        )
        self._scheduler = None
        self._prev_demand = None
        self._prev_syscall = None
        self._since_replan = 0

    # ------------------------------------------------------------------
    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        profiler = self._profiler
        if profiler is None:
            raise RuntimeError("on_cycle_start was never called")

        # Occupancy statistics: control steps are uniform, so one unit
        # per step weights states by time correctly.
        profiler.record_dwell(ctx.demand, 1.0)
        if ctx.segment_start:
            self._learn(ctx)

        choice = self._model_choice(ctx)
        if choice is None:
            choice = self._fallback_choice(ctx)

        # The TEC surge is burst demand: lean LITTLE while hot (paper
        # Section III-E: "CAPMAN actually favors LITTLE battery due to
        # frequently wake TEC").  A non-finite temperature (sparking
        # sensor, unsupervised) must not trigger the lean.
        if (math.isfinite(ctx.cpu_temp_c)
                and ctx.cpu_temp_c >= HOT_SPOT_THRESHOLD_C
                and ctx.soc_little > _SOC_FLOOR):
            choice = BatterySelection.LITTLE

        return self._guard(choice, ctx)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _learn(self, ctx: PolicyContext) -> None:
        profiler = self._profiler
        assert profiler is not None
        if self._prev_demand is not None:
            profiler.observe(
                Segment(self._prev_demand, 1.0, self._prev_syscall),
                Segment(ctx.demand, 1.0, ctx.syscall),
                measured_power_w=ctx.predicted_power_w,
            )
            self._since_replan += 1
        self._prev_demand = ctx.demand
        self._prev_syscall = ctx.syscall

        enough = profiler.n_observations >= self.min_observations
        due = self._scheduler is None or self._since_replan >= self.replan_interval
        if enough and due:
            mdp = profiler.build_decision_mdp()
            self._scheduler = OnlineScheduler(mdp, rho=self.rho)
            self._since_replan = 0

    # ------------------------------------------------------------------
    # Decision paths
    # ------------------------------------------------------------------
    @staticmethod
    def decision_state(key, active: BatterySelection):
        """The decision-MDP state consulted for a (device key, battery).

        The single place the (key, active) pair is packed into the MDP
        state shape; the fleet's compiled-table driver mirrors it via
        :class:`~repro.capman.profiler.DecisionStateInterner`.
        """
        return (key, active.value)

    def _model_choice(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        scheduler = self._scheduler
        if scheduler is None or self._profiler is None:
            return None
        key = device_key_of(ctx.demand, self._profiler.profile.wifi_model.threshold_kbps)
        state = self.decision_state(key, ctx.active)
        if state not in scheduler.solution.policy:
            return None
        record = scheduler.decide(state)
        if record.action == "use_little":
            return BatterySelection.LITTLE
        if record.action == "use_big":
            return BatterySelection.BIG
        return None

    def _fallback_choice(self, ctx: PolicyContext) -> BatterySelection:
        if not math.isfinite(ctx.predicted_power_w):
            # A corrupt power estimate is no basis for burst routing;
            # the BIG battery is the conservative default.
            return BatterySelection.BIG
        if ctx.predicted_power_w > self.fallback_threshold_w:
            return BatterySelection.LITTLE
        return BatterySelection.BIG

    @staticmethod
    def _guard(choice: BatterySelection, ctx: PolicyContext) -> BatterySelection:
        """Never select an effectively empty (or unreadable) cell."""
        little_out = (not math.isfinite(ctx.soc_little)
                      or ctx.soc_little <= _SOC_FLOOR)
        big_out = not math.isfinite(ctx.soc_big) or ctx.soc_big <= _SOC_FLOOR
        if choice is BatterySelection.LITTLE and little_out:
            return BatterySelection.BIG
        if choice is BatterySelection.BIG and big_out:
            return BatterySelection.LITTLE
        return choice

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> Optional[OnlineScheduler]:
        """The live online scheduler (None while still learning)."""
        return self._scheduler

    @property
    def profiler(self) -> Optional[PowerProfiler]:
        """The live profiler (None before a cycle starts)."""
        return self._profiler
