"""Observability spine: metrics registry, tracer, exporters.

One switch controls everything::

    from repro import obs

    obs.configure(enabled=True)            # or exporter=JsonlExporter(...)
    result = run_discharge_cycle(...)      # result.telemetry now populated
    print(obs.session().summary())
    obs.disable()

Design rules (enforced by ``tests/test_obs_invisible.py``):

* **Off by default, invisible when off.**  ``obs.session()`` returns
  ``None`` unless configured; every instrumented call site hoists
  ``ob = obs.session()`` once per phase and guards with
  ``if ob is not None`` -- with obs disabled the hot step loop performs
  zero registry/tracer calls and zero allocations attributable to this
  package, and all simulation outputs are byte-identical to an
  uninstrumented build.
* **One registry per scope.**  :meth:`ObsSession.scope` pushes a fresh
  :class:`MetricsRegistry`; instrumented code always writes to the
  innermost scope.  On :meth:`MetricsScope.close` the scope's registry
  folds into its parent (associative/commutative merge), so a sweep's
  session-level aggregate equals the fold of its per-cell blobs
  regardless of serial/parallel execution.
* **Telemetry is out-of-band.**  Results carry their
  :class:`RunTelemetry` on a ``compare=False`` field that the
  differential harness strips via :func:`invisible_view`.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import (LATENCY_BUCKETS_S, Counter, Gauge, Histogram,
                       MetricsRegistry)
from .tracer import Span, SpanMark, Tracer
from .telemetry import RunTelemetry, invisible_view
from .export import (Exporter, InMemoryExporter, JsonlExporter, NullExporter,
                     format_obs_table)

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanMark",
    "Tracer",
    "RunTelemetry",
    "invisible_view",
    "Exporter",
    "NullExporter",
    "InMemoryExporter",
    "JsonlExporter",
    "format_obs_table",
    "ObsSession",
    "MetricsScope",
    "configure",
    "disable",
    "session",
    "enabled",
]


class MetricsScope:
    """One harvesting window: a fresh registry + a tracer mark.

    Created by :meth:`ObsSession.scope`; while open, all instrumented
    code writes into this scope's registry.  :meth:`telemetry` freezes
    the scope's contents into a :class:`RunTelemetry`;
    :meth:`close` folds the registry into the parent scope so
    session-level totals still see everything.  Close is idempotent
    and runs from a ``finally`` at every call site, so an exception
    mid-cycle cannot leave the session's scope stack corrupted.
    """

    def __init__(self, obs_session: "ObsSession", kind: str,
                 label: str) -> None:
        self._session = obs_session
        self.kind = kind
        self.label = label
        self.registry = MetricsRegistry()
        self._mark: SpanMark = obs_session.tracer.mark()
        self._closed = False
        obs_session._registries.append(self.registry)

    def telemetry(self) -> RunTelemetry:
        """Freeze the scope's registry + span window into a blob."""
        return RunTelemetry(
            kind=self.kind,
            label=self.label,
            counters=self.registry.counter_values(),
            gauges=self.registry.gauge_values(),
            histograms=self.registry.histogram_dicts(),
            spans=self._session.tracer.window(self._mark),
        )

    def close(self) -> None:
        """Pop the scope and merge its registry into the parent."""
        if self._closed:
            return
        self._closed = True
        stack = self._session._registries
        # Unwind through this scope; a mis-nested inner scope left open
        # by an exception merges into its parent on the way out.
        while len(stack) > 1:
            popped = stack.pop()
            stack[-1].merge(popped)
            if popped is self.registry:
                return
        # Root registry (or already unwound): nothing to fold.

    def __enter__(self) -> "MetricsScope":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ObsSession:
    """The process-wide observability state while enabled.

    Holds the exporter, the tracer, and a stack of registries whose
    innermost element is where instruments write (:attr:`registry`).
    The stack bottom is the session registry -- the all-time totals of
    everything observed since :func:`configure`.
    """

    def __init__(self, exporter: Optional[Exporter] = None,
                 max_spans: int = 50_000) -> None:
        self.exporter: Exporter = exporter if exporter is not None \
            else NullExporter()
        self.tracer = Tracer(max_spans=max_spans,
                             on_finish=self.exporter.export_span)
        self._registries = [MetricsRegistry()]

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The innermost (write-target) registry."""
        return self._registries[-1]

    @property
    def root_registry(self) -> MetricsRegistry:
        """The session-lifetime aggregate registry."""
        return self._registries[0]

    def scope(self, kind: str, label: str = "") -> MetricsScope:
        """Open a harvesting window (see :class:`MetricsScope`)."""
        return MetricsScope(self, kind, label)

    def export_telemetry(self, telemetry: RunTelemetry) -> None:
        """Hand a harvested blob to the exporter."""
        self.exporter.export_telemetry(telemetry)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable tables of the session-lifetime aggregates."""
        reg = self.root_registry
        parts = []
        counters = reg.counter_values()
        if counters:
            parts.append(format_obs_table(
                ("counter", "value"),
                [(n, f"{v:g}") for n, v in sorted(counters.items())],
                title="== counters =="))
        gauges = reg.gauge_values()
        if gauges:
            parts.append(format_obs_table(
                ("gauge", "value"),
                [(n, f"{v:g}") for n, v in sorted(gauges.items())],
                title="== gauges =="))
        hists = reg._histograms
        if hists:
            parts.append(format_obs_table(
                ("histogram", "count", "mean", "p50", "p99"),
                [(n, h.count, f"{h.mean:.3g}", f"{h.quantile(0.5):.3g}",
                  f"{h.quantile(0.99):.3g}")
                 for n, h in sorted(hists.items())],
                title="== histograms =="))
        spans = self.tracer.window((0, 0))
        if spans:
            parts.append(format_obs_table(
                ("span", "count", "total_s", "max_s"),
                [(p, a["count"], f"{a['total_s']:.4f}", f"{a['max_s']:.4f}")
                 for p, a in sorted(spans.items())],
                title="== spans =="))
        if self.tracer.dropped:
            parts.append(f"({self.tracer.dropped} spans dropped over "
                         f"the {self.tracer.max_spans}-span cap)")
        return "\n\n".join(parts) if parts else "(no telemetry recorded)"


#: The singleton session; ``None`` means observability is off and every
#: instrumented call site takes its zero-cost branch.
_SESSION: Optional[ObsSession] = None


def configure(enabled: bool = True, exporter: Optional[Exporter] = None,
              max_spans: int = 50_000) -> Optional[ObsSession]:
    """Install (or tear down) the process-wide observability session.

    Replaces any existing session; the old exporter is closed.  With
    ``enabled=False`` this is :func:`disable`.
    """
    global _SESSION
    if _SESSION is not None:
        _SESSION.exporter.close()
        _SESSION = None
    if enabled:
        _SESSION = ObsSession(exporter=exporter, max_spans=max_spans)
    return _SESSION


def disable() -> None:
    """Turn observability off (the default state)."""
    configure(enabled=False)


def session() -> Optional[ObsSession]:
    """The active session, or ``None`` when off.

    Call sites hoist this once per phase::

        ob = obs.session()
        ...
        if ob is not None:
            ob.registry.counter("sim.steps").inc()
    """
    return _SESSION


def enabled() -> bool:
    return _SESSION is not None
