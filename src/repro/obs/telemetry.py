"""RunTelemetry: the machine-readable observability blob of one run.

A :class:`RunTelemetry` freezes a scope's registry contents (plain
dicts, JSON-ready) plus the span aggregates of the same window.  It is
what a discharge cycle attaches to its
:class:`~repro.sim.discharge.DischargeResult`, what sweep workers ship
back over the existing result channel, and what the parent folds into
one sweep-level blob with :meth:`merge` -- the same associative,
commutative semantics as
:meth:`repro.obs.registry.MetricsRegistry.merge`.

Invisibility contract
---------------------
Telemetry rides *on* results but is not *of* them: the simulation's
outputs are byte-identical with observability on or off.  The
differential harness compares runs through :func:`invisible_view`,
which strips the two timing-only carriers (the telemetry blob and the
measured ``wall_time_s``, which the sweep engine already zeroes for
its own determinism comparisons) and leaves every simulated quantity
in place.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

__all__ = ["RunTelemetry", "invisible_view"]


def _merge_histogram(a: Dict[str, Any], b: Dict[str, Any],
                     name: str) -> Dict[str, Any]:
    if list(a["boundaries"]) != list(b["boundaries"]):
        raise ValueError(
            f"telemetry histogram {name!r}: mismatched bucket layouts")
    return {
        "boundaries": list(a["boundaries"]),
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "count": a["count"] + b["count"],
        "sum": a["sum"] + b["sum"],
    }


@dataclass
class RunTelemetry:
    """Registry + span aggregates of one observed window.

    ``kind``/``label`` identify the producing harness ("discharge",
    "daily", "sweep", "chaos") and the run within it; merged blobs
    keep the kind/label of the receiving side.
    """

    kind: str = ""
    label: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: name -> {"boundaries": [...], "counts": [...], "count": n, "sum": s}
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: relative span path -> {"count": n, "total_s": t, "max_s": m}
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """A counter's value, defaulting to 0."""
        return self.counters.get(name, 0.0)

    def merge(self, other: "RunTelemetry") -> "RunTelemetry":
        """A new blob folding ``other`` into this one.

        Counters add, gauges take the max, histograms add bucket-wise
        (identical layouts required), span aggregates add with max of
        max -- associative and commutative, so folding a sweep's cell
        blobs in any completion order yields the same aggregate.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        histograms = dict(self.histograms)
        for name, parts in other.histograms.items():
            if name in histograms:
                histograms[name] = _merge_histogram(histograms[name], parts,
                                                    name)
            else:
                histograms[name] = parts
        spans = {path: dict(agg) for path, agg in self.spans.items()}
        for path, agg in other.spans.items():
            mine = spans.get(path)
            if mine is None:
                spans[path] = dict(agg)
            else:
                mine["count"] += agg["count"]
                mine["total_s"] += agg["total_s"]
                if agg["max_s"] > mine["max_s"]:
                    mine["max_s"] = agg["max_s"]
        return RunTelemetry(kind=self.kind, label=self.label,
                            counters=counters, gauges=gauges,
                            histograms=histograms, spans=spans)

    @classmethod
    def merged(cls, blobs: Iterable[Optional["RunTelemetry"]],
               kind: str = "", label: str = "") -> "RunTelemetry":
        """Fold an iterable of blobs (``None`` entries skipped)."""
        out = cls(kind=kind, label=label)
        for blob in blobs:
            if blob is not None:
                out = out.merge(blob)
        out.kind, out.label = kind, label
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSONL exporter wire format)."""
        return {
            "kind": self.kind,
            "label": self.label,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }


def invisible_view(result: Any) -> Any:
    """A deep copy of a run result with the timing-only carriers zeroed.

    Strips ``telemetry`` (set to ``None``) and ``wall_time_s`` (set to
    0.0, matching what the sweep engine's result channel already does)
    wherever present, recursing into a
    :class:`~repro.sim.daily.MultiDayResult`'s day cycles implicitly
    (day records carry no telemetry).  Everything else -- traces,
    metrics, events, counts -- is preserved bit-for-bit, so
    ``pickle.dumps(invisible_view(a)) == pickle.dumps(invisible_view(b))``
    is the differential harness's equality.
    """
    clone = pickle.loads(pickle.dumps(result, protocol=4))
    if hasattr(clone, "telemetry"):
        clone.telemetry = None
    if hasattr(clone, "wall_time_s"):
        clone.wall_time_s = 0.0
    return clone
