"""Hierarchical tracer: nested spans with monotonic-clock timings.

The span hierarchy mirrors the run structure::

    sweep -> cell -> discharge -> similarity.solve / scheduler.* / ...
                 \\-> daily -> day -> discharge -> ...

Every span is timed with :func:`time.monotonic` (bound at import so a
test monkeypatching ``time.time`` -- or a host whose wall clock steps
backwards, NTP-style -- cannot produce negative durations).  Finished
spans are appended to a bounded in-process list and handed to the
session's exporter; when the cap is hit further spans are *counted but
dropped* so a pathological run cannot exhaust memory through its own
observability.

Per-control-step events are deliberately **not** spans: at ~10^5 steps
per simulated day one object per step would dominate the enabled-mode
cost.  The step loop records into a fixed-bucket histogram instead
(``sim.step_wall_s``); spans mark the coarse phases around it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanMark", "Tracer"]

#: Monotonic clock, bound once: immune to wall-clock steps and to
#: monkeypatching of ``time.time``.
_monotonic = time.monotonic


class Span:
    """One finished span: name, ancestry path, timing, attributes."""

    __slots__ = ("name", "path", "attrs", "start_s", "duration_s")

    def __init__(self, name: str, path: Tuple[str, ...],
                 attrs: Tuple[Tuple[str, object], ...],
                 start_s: float, duration_s: float) -> None:
        self.name = name
        #: Full name chain from the tracer root, ``self.name`` last.
        self.path = path
        self.attrs = attrs
        #: Monotonic-clock start (meaningful only relative to other
        #: spans of the same process).
        self.start_s = start_s
        self.duration_s = duration_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": "/".join(self.path),
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({'/'.join(self.path)!r}, "
                f"duration_s={self.duration_s:.6f})")


class _OpenSpan:
    """A span in flight; ``finish()`` stamps it and files it."""

    __slots__ = ("_tracer", "name", "_path", "_attrs", "_start", "_done")

    def __init__(self, tracer: "Tracer", name: str,
                 path: Tuple[str, ...],
                 attrs: Tuple[Tuple[str, object], ...]) -> None:
        self._tracer = tracer
        self.name = name
        self._path = path
        self._attrs = attrs
        self._start = _monotonic()
        self._done = False

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span."""
        self._attrs = self._attrs + tuple(attrs.items())

    def finish(self) -> Optional[Span]:
        """Close the span (idempotent); returns the finished record."""
        if self._done:
            return None
        self._done = True
        span = Span(self.name, self._path, self._attrs, self._start,
                    _monotonic() - self._start)
        self._tracer._finish(self, span)
        return span

    # Context-manager sugar: ``with tracer.span("phase"):``
    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


#: Opaque marker for :meth:`Tracer.mark` / :meth:`Tracer.window`:
#: (finished-span index, stack depth) at mark time.
SpanMark = Tuple[int, int]


class Tracer:
    """Span stack + bounded finished-span store.

    Single-threaded by design (the simulator's control loops are);
    background threads such as the stall watchdog must not trace.
    """

    def __init__(self, max_spans: int = 50_000,
                 on_finish: Optional[Callable[[Span], None]] = None) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        #: Exporter hook, called with every finished span.
        self.on_finish = on_finish
        self._stack: List[_OpenSpan] = []
        self._finished: List[Span] = []
        #: Spans discarded after the cap was reached.
        self.dropped = 0

    # ------------------------------------------------------------------
    def start(self, name: str, **attrs: object) -> _OpenSpan:
        """Open a child span of whatever is currently on the stack."""
        parent = self._stack[-1]._path if self._stack else ()
        span = _OpenSpan(self, name, parent + (name,), tuple(attrs.items()))
        self._stack.append(span)
        return span

    def span(self, name: str, **attrs: object) -> _OpenSpan:
        """Like :meth:`start`, reads naturally in a ``with`` block."""
        return self.start(name, **attrs)

    def _finish(self, open_span: _OpenSpan, span: Span) -> None:
        # Unwind to (and including) the finishing span; out-of-order
        # finishes close the abandoned children implicitly.
        while self._stack:
            popped = self._stack.pop()
            if popped is open_span:
                break
        if len(self._finished) < self.max_spans:
            self._finished.append(span)
        else:
            self.dropped += 1
        if self.on_finish is not None:
            self.on_finish(span)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Open spans on the stack."""
        return len(self._stack)

    @property
    def finished(self) -> List[Span]:
        """Finished spans retained under the cap, oldest first."""
        return self._finished

    # ------------------------------------------------------------------
    # Windows (per-cycle / per-sweep telemetry extraction)
    # ------------------------------------------------------------------
    def mark(self) -> SpanMark:
        """A position marker for a later :meth:`window` call."""
        return (len(self._finished), len(self._stack))

    def window(self, mark: SpanMark) -> Dict[str, Dict[str, float]]:
        """Aggregate spans finished since ``mark``, by relative path.

        Paths are reported relative to the stack depth at mark time, so
        a cycle's telemetry reads ``discharge/similarity.solve``
        whether the cycle ran under a sweep/cell span (serial) or as a
        worker-process root (parallel fan-out).
        """
        index, depth = mark
        out: Dict[str, Dict[str, float]] = {}
        for span in self._finished[index:]:
            rel = "/".join(span.path[depth:]) or span.name
            agg = out.get(rel)
            if agg is None:
                out[rel] = {"count": 1, "total_s": span.duration_s,
                            "max_s": span.duration_s}
            else:
                agg["count"] += 1
                agg["total_s"] += span.duration_s
                if span.duration_s > agg["max_s"]:
                    agg["max_s"] = span.duration_s
        return out
