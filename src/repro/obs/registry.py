"""Process-local metrics registry: counters, gauges, histograms.

One registry is *the* place a run counts things.  Three instrument
kinds cover the stack's needs:

* :class:`Counter` -- monotonically non-decreasing totals (steps run,
  cache hits, mode transitions, seconds spent in a phase);
* :class:`Gauge`   -- last-written values (service time of the cycle
  that just finished, observed peak temperature);
* :class:`Histogram` -- fixed-bucket-layout distributions (per-step
  wall time, decision latency, checkpoint fsync latency).

Merge semantics (cross-worker aggregation)
------------------------------------------
Sweep workers each populate a private registry and ship the resulting
:class:`~repro.obs.telemetry.RunTelemetry` back over the existing
result channel; the parent folds them together with :meth:`merge`.
The merge is **associative and commutative** so the fold order (and
hence the worker count / completion order) cannot change the
aggregate:

* counters add,
* gauges take the maximum (a cross-run gauge aggregate is its
  high-water mark),
* histograms add bucket-wise -- which requires *identical bucket
  layouts*, the reason layouts are fixed at first use and conflicting
  re-declarations raise.

(The counter/histogram additions are exact for integer-valued
amounts; float amounts are associative up to IEEE rounding.)

Nothing in this module reads any clock; time measurement lives in
:mod:`repro.obs.tracer` and in the instrumented call sites, which all
use monotonic clocks.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default latency layout: log-spaced from 1 us to 100 s.  Covers the
#: paper's decision-latency range (Figure 16: us..ms) as well as the
#: slowest phases we time (background solves, checkpoint fsyncs).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 3.16e-6, 1e-5, 3.16e-5, 1e-4, 3.16e-4,
    1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1,
    1.0, 3.16, 10.0, 31.6, 100.0,
)


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only grow)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-written value (merge takes the maximum)."""

    __slots__ = ("name", "_value", "_set")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self._value = float(value)
        self._set = True

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket-layout distribution.

    ``boundaries`` are the strictly increasing upper bounds of the
    first ``len(boundaries)`` buckets; one overflow bucket catches
    everything above the last boundary.  A value ``v`` lands in the
    first bucket whose boundary satisfies ``v <= boundary``.

    Invariants (pinned by the property tests):

    * ``sum(bucket_counts) == count`` always;
    * ``observe`` adds exactly one count, to exactly the bucket whose
      range contains the value.
    """

    __slots__ = ("name", "boundaries", "_counts", "_sum")

    def __init__(self, name: str,
                 boundaries: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram boundaries must strictly increase")
        self.name = name
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        # bisect_left: a value equal to a boundary belongs to that
        # boundary's bucket (v <= bound); above the last boundary the
        # index is len(boundaries) == the overflow slot.
        self._counts[bisect_left(self.boundaries, value)] += 1
        self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return tuple(self._counts)

    @property
    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the ``q``-th sample; the overflow bucket reports
        the last finite boundary)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        n = self.count
        if n == 0:
            return 0.0
        rank = q * n
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank and c:
                return self.boundaries[min(i, len(self.boundaries) - 1)]
        return self.boundaries[-1]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (the telemetry wire format)."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self._counts),
            "count": self.count,
            "sum": self._sum,
        }

    def _merge_parts(self, counts: Sequence[int], total: float) -> None:
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge a "
                f"{len(counts)}-bucket layout into {len(self._counts)} buckets")
        for i, c in enumerate(counts):
            self._counts[i] += c
        self._sum += total


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use.

    Instruments are interned by name: ``registry.counter("sim.steps")``
    always returns the same object, so hot loops can hoist the bound
    ``inc``/``observe`` method once and pay a plain call per event.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  boundaries: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != h.boundaries:
            raise ValueError(
                f"histogram {name!r} already exists with a different "
                f"bucket layout")
        return h

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def gauge_values(self) -> Dict[str, float]:
        return {name: g.value for name, g in self._gauges.items() if g._set}

    def histogram_dicts(self) -> Dict[str, Dict[str, object]]:
        return {name: h.as_dict() for name, h in self._histograms.items()}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Merge (cross-worker / scope-exit aggregation)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (see module docstring)."""
        self.merge_parts(other.counter_values(), other.gauge_values(),
                         other.histogram_dicts())

    def merge_parts(
        self,
        counters: Mapping[str, float],
        gauges: Mapping[str, float],
        histograms: Mapping[str, Mapping[str, object]],
    ) -> None:
        """Fold plain-dict instrument values (the telemetry wire form)."""
        for name, value in counters.items():
            self.counter(name).inc(value)
        for name, value in gauges.items():
            g = self.gauge(name)
            if not g._set or value > g.value:
                g.set(value)
        for name, parts in histograms.items():
            h = self.histogram(name, parts["boundaries"])  # type: ignore[arg-type]
            h._merge_parts(parts["counts"], parts["sum"])  # type: ignore[arg-type]

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``registries``."""
        out = cls()
        for reg in registries:
            out.merge(reg)
        return out
