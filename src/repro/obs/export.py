"""Exporters: where finished spans and telemetry blobs go.

Exporters are deliberately dumb sinks -- the session hands them
finished :class:`~repro.obs.tracer.Span` records as they close and
:class:`~repro.obs.telemetry.RunTelemetry` blobs as scopes are
harvested; they never reach back into the registry.  Three are
provided:

* :class:`NullExporter`     -- drops everything (the enabled-but-quiet
  mode the differential harness compares against);
* :class:`InMemoryExporter` -- keeps everything on lists (tests);
* :class:`JsonlExporter`    -- appends one JSON object per line to a
  file, ``{"type": "span" | "telemetry", ...}``.

This module imports only the stdlib: ``repro.obs`` sits below every
other package in the import graph (``sim``/``core``/``faults``/
``durability`` all import it), so it must not import them back.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from .tracer import Span
from .telemetry import RunTelemetry

__all__ = [
    "Exporter",
    "NullExporter",
    "InMemoryExporter",
    "JsonlExporter",
    "format_obs_table",
    "registry_snapshot",
]


def registry_snapshot(registry: Any,
                      spans: Optional[Dict[str, Dict[str, float]]] = None,
                      ) -> Dict[str, Any]:
    """A JSON-serialisable dump of a metrics registry.

    The shape served by scrape endpoints (``GET /metrics`` on the
    sweep service): counters and gauges as flat name->value maps,
    histograms with their bucket arrays, and -- optionally -- an
    aggregated span window (``Tracer.window()`` output).  Duck-typed
    on the three ``*_values``/``histogram_dicts`` accessors so it
    works for any registry-compatible object without importing
    :mod:`repro.obs.registry` here.
    """
    snapshot: Dict[str, Any] = {
        "counters": dict(registry.counter_values()),
        "gauges": dict(registry.gauge_values()),
        "histograms": dict(registry.histogram_dicts()),
    }
    if spans is not None:
        snapshot["spans"] = {name: dict(agg) for name, agg in spans.items()}
    return snapshot


class Exporter:
    """Base sink; both hooks default to no-ops."""

    def export_span(self, span: Span) -> None:
        pass

    def export_telemetry(self, telemetry: RunTelemetry) -> None:
        pass

    def close(self) -> None:
        pass


class NullExporter(Exporter):
    """Accepts and discards everything."""


class InMemoryExporter(Exporter):
    """Retains spans and telemetry blobs for test assertions."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.telemetries: List[RunTelemetry] = []

    def export_span(self, span: Span) -> None:
        self.spans.append(span)

    def export_telemetry(self, telemetry: RunTelemetry) -> None:
        self.telemetries.append(telemetry)


class JsonlExporter(Exporter):
    """One JSON object per line: spans as they finish, telemetry as
    scopes are harvested.

    The stream is line-buffered per record (``flush()`` after each
    write) so a crashed run still leaves a readable prefix; records are
    self-describing via their ``"type"`` field.
    """

    def __init__(self, path_or_stream: Union[str, IO[str]]) -> None:
        if isinstance(path_or_stream, str):
            self._stream: IO[str] = open(path_or_stream, "a",
                                         encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = path_or_stream
            self._owns_stream = False

    def _write(self, record: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")
        self._stream.flush()

    def export_span(self, span: Span) -> None:
        record = span.as_dict()
        record["type"] = "span"
        self._write(record)

    def export_telemetry(self, telemetry: RunTelemetry) -> None:
        record = telemetry.as_dict()
        record["type"] = "telemetry"
        self._write(record)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


def format_obs_table(headers: Sequence[str],
                     rows: Sequence[Sequence[Any]],
                     title: Optional[str] = None) -> str:
    """Minimal fixed-width table (stdlib-only: ``repro.analysis`` has
    a richer formatter but importing it here would close an import
    cycle through ``repro.sim``)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            if len(c) > widths[i]:
                widths[i] = len(c)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
