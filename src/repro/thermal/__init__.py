"""Thermal substrate: RC network, TEC model, hot-spot control."""

from .hotspot import HOT_SPOT_THRESHOLD_C, ThermostatController, hot_spot_fraction
from .rc_network import ThermalNetwork, ThermalNode, phone_thermal_network
from .tec import TECModel, TECUnit

__all__ = [
    "HOT_SPOT_THRESHOLD_C",
    "ThermostatController",
    "hot_spot_fraction",
    "ThermalNetwork",
    "ThermalNode",
    "phone_thermal_network",
    "TECModel",
    "TECUnit",
]
