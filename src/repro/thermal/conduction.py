"""Explicit-Euler conduction kernel shared by scalar and fleet paths.

The per-substep arithmetic of :class:`~repro.thermal.rc_network.
ThermalNetwork.step` lives here as a pure function over *columns*: a
column is either a Python float (one device, the scalar object path) or
an ``(N,)`` float64 array (one value per fleet row).  Both callers run
the identical sequence of IEEE-754 operations in identical link order,
which is what makes the fleet's batch-of-1 output bit-for-bit equal to
the scalar network (see ``repro.battery.kinetics`` for the full
rationale and DESIGN.md section 11 for the testing contract).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["substep_count", "stable_substep", "euler_conduction"]


def substep_count(dt: float, sub: float) -> int:
    """Number of Euler substeps for a step of ``dt`` at stability ``sub``."""
    steps = max(1, int(math.ceil(dt / sub)))
    return min(steps, 100_000)


def stable_substep(
    capacities: Dict[str, float], links: Sequence[Tuple[str, str, float]]
) -> float:
    """A timestep comfortably below the network's fastest RC constant.

    ``capacities`` maps node name to heat capacity (J/K, ``inf`` for
    boundaries); ``links`` are ``(a, b, conductance)`` triples.
    """
    fastest = math.inf
    total_g: Dict[str, float] = {name: 0.0 for name in capacities}
    for a, b, g in links:
        total_g[a] += g
        total_g[b] += g
    for name, cap in capacities.items():
        if math.isinf(cap) or total_g[name] == 0.0:
            continue
        fastest = min(fastest, cap / total_g[name])
    if math.isinf(fastest):
        return 1.0
    return max(fastest * 0.25, 1e-3)


def euler_conduction(
    temps: List,
    injections: Sequence,
    links: Sequence[Tuple[int, int, float]],
    active: Sequence[Tuple[int, float]],
    steps: int,
    h,
) -> List:
    """Advance node temperatures by ``steps`` Euler substeps of ``h``.

    Parameters
    ----------
    temps:
        One column per node, mutated functionally (a new list is
        returned; the input list is not modified).
    injections:
        Per-node heat injections (W), one column per node, constant
        over the step.
    links:
        ``(index_a, index_b, conductance)`` in insertion order.
    active:
        ``(index, heat_capacity)`` for non-boundary nodes.
    steps, h:
        Substep count and length (``h`` may be a per-row array when the
        columns are arrays).
    """
    temps = list(temps)
    for _ in range(steps):
        flows = list(injections)
        for ia, ib, g in links:
            q = g * (temps[ia] - temps[ib])
            flows[ia] = flows[ia] - q
            flows[ib] = flows[ib] + q
        for i, cap in active:
            temps[i] = temps[i] + h * flows[i] / cap
    return temps
