"""Hot-spot policy: the 45 degC threshold controller for the TEC.

The paper defines a hot spot as surface temperature exceeding 45 degC
(Wienert et al.) and powers the TEC directly from the switch facility
whenever the monitored spot crosses that threshold.  We add a small
hysteresis band so the controller does not chatter around the
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..durability.state import pack_state, unpack_state

__all__ = ["HOT_SPOT_THRESHOLD_C", "ThermostatController", "hot_spot_fraction"]

#: The paper's hot-spot definition (degC).
HOT_SPOT_THRESHOLD_C = 45.0


@dataclass
class ThermostatController:
    """On/off thermostat with hysteresis.

    Turns the TEC on when the watched temperature rises to
    ``threshold_c`` and off once it falls below
    ``threshold_c - hysteresis_k``.
    """

    threshold_c: float = HOT_SPOT_THRESHOLD_C
    hysteresis_k: float = 2.0

    _on: bool = field(init=False, default=False, repr=False)
    _transitions: List[Tuple[float, bool]] = field(init=False, default_factory=list,
                                                   repr=False)

    def __post_init__(self) -> None:
        if self.hysteresis_k < 0:
            raise ValueError("hysteresis must be non-negative")

    @property
    def is_on(self) -> bool:
        """Current commanded state."""
        return self._on

    @property
    def transitions(self) -> Tuple[Tuple[float, bool], ...]:
        """Log of (time, new_state) switching decisions."""
        return tuple(self._transitions)

    def update(self, temperature_c: float, now_s: float = 0.0) -> bool:
        """Feed a temperature sample; returns the commanded state."""
        if not self._on and temperature_c >= self.threshold_c:
            self._on = True
            self._transitions.append((now_s, True))
        elif self._on and temperature_c < self.threshold_c - self.hysteresis_k:
            self._on = False
            self._transitions.append((now_s, False))
        return self._on

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable thermostat state (latched state + transition log)."""
        return pack_state(self, self._STATE_VERSION, {
            "on": self._on,
            "transitions": list(self._transitions),
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._on = payload["on"]
        self._transitions = [tuple(t) for t in payload["transitions"]]


def hot_spot_fraction(temps_c: List[float], threshold_c: float = HOT_SPOT_THRESHOLD_C) -> float:
    """Fraction of samples at or above the hot-spot threshold."""
    if not temps_c:
        return 0.0
    hot = sum(1 for t in temps_c if t >= threshold_c)
    return hot / len(temps_c)
