"""Thermoelectric cooler (TEC): physics (paper Eq. 1) and actuator.

Two layers:

* :class:`TECModel` -- the physical Peltier model of Eq. (1),
  ``Qc = S_T * Tc * I - I^2 R / 2 - K (Th - Tc)``, with the electrical
  power ``P = S_T * I * dT + I^2 R`` (Table II, last row).  It exposes
  the rated-current analysis behind paper Figure 6: the achievable
  temperature difference peaks at ``I* = S_T * Tc / R`` (about 1.0 A for
  the ATE-31-style part), which is why CAPMAN drives the TEC at its
  rated current rather than proportionally.

* :class:`TECUnit` -- the on/off actuator CAPMAN actually schedules.
  The paper profiles its chip offline and always powers it at maximum
  cooling efficiency, booking the measured electrical draw (Table III:
  29.17 mW) -- so the unit consumes the profiled draw and pumps heat
  from the CPU node to the surface node at a calibrated rate.  See
  DESIGN.md for this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from ..durability.state import pack_state, unpack_state

__all__ = ["TECModel", "TECUnit"]

_KELVIN = 273.15


@dataclass(frozen=True)
class TECModel:
    """Physical Peltier model (paper Eq. 1 and Table II).

    Parameters
    ----------
    seebeck_v_per_k:
        Thermoelectric coefficient ``S_T`` (V/K).
    resistance_ohm:
        Electrical resistance ``R`` (ohm).
    conductance_w_per_k:
        Thermal conductance ``K`` between the two faces (W/K).
    """

    seebeck_v_per_k: float = 0.05
    resistance_ohm: float = 15.0
    conductance_w_per_k: float = 0.25

    @classmethod
    def ate31(cls) -> "TECModel":
        """Constants styled after the ATE-31-2.2A used in the prototype.

        Chosen so the rated operating current lands at ~1.0 A near room
        temperature, reproducing the peak of paper Figure 6 (bottom).
        """
        return cls(seebeck_v_per_k=0.05, resistance_ohm=15.0, conductance_w_per_k=0.25)

    # ------------------------------------------------------------------
    def heat_pumped_w(self, current_a: float, hot_c: float, cold_c: float) -> float:
        """``Qc`` of Eq. (1): heat removed from the cold face (W)."""
        tc = cold_c + _KELVIN
        return (
            self.seebeck_v_per_k * tc * current_a
            - 0.5 * current_a ** 2 * self.resistance_ohm
            - self.conductance_w_per_k * (hot_c - cold_c)
        )

    def electrical_power_w(self, current_a: float, hot_c: float, cold_c: float) -> float:
        """``P = S_T I dT + I^2 R`` (Table II, TEC row), in watts."""
        dt = hot_c - cold_c
        return self.seebeck_v_per_k * current_a * dt + current_a ** 2 * self.resistance_ohm

    def max_delta_t(self, current_a: float, cold_c: float = 25.0) -> float:
        """Steady-state face temperature difference at a given drive.

        Setting ``Qc = 0`` in Eq. (1) gives the largest sustainable
        ``Th - Tc``; this is the curve of paper Figure 6 (bottom),
        rising with current, peaking at the rated point, then falling
        as Joule heating wins.
        """
        tc = cold_c + _KELVIN
        dt = (
            self.seebeck_v_per_k * tc * current_a
            - 0.5 * current_a ** 2 * self.resistance_ohm
        ) / self.conductance_w_per_k
        return max(0.0, dt)

    def rated_current(self, cold_c: float = 25.0) -> float:
        """The current maximising :meth:`max_delta_t`: ``S_T Tc / R``."""
        return self.seebeck_v_per_k * (cold_c + _KELVIN) / self.resistance_ohm

    def delta_t_curve(
        self, currents: List[float], cold_c: float = 25.0
    ) -> List[Tuple[float, float]]:
        """(current, max dT) samples for the Figure 6 sweep."""
        return [(i, self.max_delta_t(i, cold_c)) for i in currents]


@dataclass
class TECUnit:
    """On/off TEC actuator placed between two thermal nodes.

    Parameters
    ----------
    drive_power_w:
        Electrical draw while on.  Default is the paper's measured
        Table III figure (29.17 mW).
    pump_w:
        Heat-pump rate from the cold node to the hot node while on,
        calibrated so the 45 degC hot-spot threshold is holdable.
    cold_node, hot_node:
        Thermal-network node names the unit bridges.
    """

    drive_power_w: float = 0.02917
    pump_w: float = 0.9
    cold_node: str = "cpu"
    hot_node: str = "surface"
    model: TECModel = field(default_factory=TECModel.ate31)

    _on: bool = field(init=False, default=False, repr=False)
    _on_time_s: float = field(init=False, default=0.0, repr=False)
    _energy_j: float = field(init=False, default=0.0, repr=False)

    # ------------------------------------------------------------------
    @property
    def is_on(self) -> bool:
        """Whether the TEC is currently powered."""
        return self._on

    @property
    def on_time_s(self) -> float:
        """Cumulative powered time (s)."""
        return self._on_time_s

    @property
    def energy_used_j(self) -> float:
        """Cumulative electrical energy drawn (J)."""
        return self._energy_j

    def set_on(self, on: bool) -> None:
        """Command the unit on or off."""
        self._on = on

    def power_w(self) -> float:
        """Instantaneous electrical draw (W)."""
        return self.drive_power_w if self._on else 0.0

    def heat_flows(self, dt: float, cold_temp_c: float, hot_temp_c: float):
        """Per-node heat injections (W) for one step, and bookkeeping.

        Returns a dict suitable for :meth:`ThermalNetwork.step`: while
        on, ``pump_w`` leaves the cold node and arrives (plus the
        electrical dissipation) at the hot node.  Pumping throttles off
        as the cold node approaches ambient so the TEC cannot drive the
        hot spot arbitrarily cold.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not self._on:
            return {}
        self._on_time_s += dt
        self._energy_j += self.drive_power_w * dt
        # Diminishing pumping as the faces diverge (Eq. 1 trend)...
        efficiency = max(0.2, 1.0 - 0.02 * max(0.0, hot_temp_c - cold_temp_c))
        pumped = self.pump_w * efficiency
        # ...and as the cold face approaches ambient: a TEC on a phone
        # die cannot refrigerate the spot arbitrarily far below it.
        headroom = max(0.0, min(1.0, (cold_temp_c - 25.0) / 5.0))
        pumped *= headroom
        return {
            self.cold_node: -pumped,
            self.hot_node: pumped + self.drive_power_w,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable actuator state (commanded state + bookkeeping)."""
        return pack_state(self, self._STATE_VERSION, {
            "on": self._on,
            "on_time_s": self._on_time_s,
            "energy_j": self._energy_j,
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._on = payload["on"]
        self._on_time_s = payload["on_time_s"]
        self._energy_j = payload["energy_j"]
