"""Lumped-parameter RC thermal network for a smartphone body.

Substitute for the physical thermal environment of the paper's testbed
(DESIGN.md substitution table).  Each node has a heat capacity; nodes
are linked by thermal conductances; one boundary node (ambient) is held
at fixed temperature.  Heat injected at the CPU node by compute load,
at the battery node by internal losses, and *pumped* between nodes by
the TEC, produces the hot-spot dynamics of paper Figure 6 (top).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..durability.state import StateMismatchError, pack_state, unpack_state
from .conduction import euler_conduction, stable_substep, substep_count

__all__ = ["ThermalNode", "ThermalNetwork", "phone_thermal_network"]


@dataclass
class ThermalNode:
    """One lumped thermal mass.

    Parameters
    ----------
    name:
        Node identifier.
    heat_capacity:
        Thermal capacitance in J/K.  ``math.inf`` makes the node a
        fixed-temperature boundary (e.g. ambient).
    temperature_c:
        Initial temperature in Celsius.
    """

    name: str
    heat_capacity: float
    temperature_c: float = 25.0

    @property
    def is_boundary(self) -> bool:
        """True for fixed-temperature (infinite-capacity) nodes."""
        return math.isinf(self.heat_capacity)


class ThermalNetwork:
    """A graph of thermal nodes with conductive links.

    Temperatures advance by explicit Euler with automatic substepping
    chosen from the fastest RC time constant, so the integration is
    stable for any caller-supplied ``dt``.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, ThermalNode] = {}
        self._links: List[Tuple[str, str, float]] = []
        #: Flattened hot-loop form (see :meth:`_compile`); rebuilt
        #: lazily after any topology change.
        self._compiled: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: ThermalNode) -> None:
        """Register a node; names must be unique."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate thermal node {node.name!r}")
        if node.heat_capacity <= 0:
            raise ValueError("heat capacity must be positive")
        self._nodes[node.name] = node
        self._compiled = None

    def link(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Connect two nodes with a thermal conductance (W/K)."""
        if conductance_w_per_k <= 0:
            raise ValueError("conductance must be positive")
        for name in (a, b):
            if name not in self._nodes:
                raise KeyError(f"unknown thermal node {name!r}")
        self._links.append((a, b, conductance_w_per_k))
        self._compiled = None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def temperature(self, name: str) -> float:
        """Current temperature of a node (degC)."""
        return self._nodes[name].temperature_c

    def temperatures(self) -> Dict[str, float]:
        """Snapshot of all node temperatures."""
        return {n.name: n.temperature_c for n in self._nodes.values()}

    def set_temperature(self, name: str, temp_c: float) -> None:
        """Force a node temperature (mostly for boundaries/tests)."""
        self._nodes[name].temperature_c = temp_c

    @property
    def node_names(self) -> List[str]:
        """Names of all registered nodes."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, dt: float, injections_w: Mapping[str, float]) -> Dict[str, float]:
        """Advance ``dt`` seconds with per-node heat injections (W).

        Negative injections remove heat (a TEC's cold side).  Returns
        the post-step temperature snapshot.
        """
        if not (dt > 0 and math.isfinite(dt)):
            raise ValueError("dt must be positive and finite")
        for name, power in injections_w.items():
            if name not in self._nodes:
                raise KeyError(f"unknown thermal node {name!r}")
            if not math.isfinite(power):
                raise ValueError(
                    f"injection at {name!r} must be finite, got {power!r}")

        names, links, active, sub = self._compile()
        steps = substep_count(dt, sub)
        get = injections_w.get
        temps = euler_conduction(
            [self._nodes[name].temperature_c for name in names],
            [get(name, 0.0) for name in names],
            links, active, steps, dt / steps)
        for i, name in enumerate(names):
            self._nodes[name].temperature_c = temps[i]
        return self.temperatures()

    def _compile(self) -> Tuple:
        """Flatten the (static) topology for the substep loop.

        Node/link iteration order and every floating-point operation
        match the straightforward dict-based loop exactly; only the
        name lookups and the stability analysis are hoisted out.
        """
        if self._compiled is None:
            names = list(self._nodes)
            index = {name: i for i, name in enumerate(names)}
            links = [(index[a], index[b], g) for a, b, g in self._links]
            active = [(index[name], node.heat_capacity)
                      for name, node in self._nodes.items()
                      if not node.is_boundary]
            self._compiled = (names, links, active, self._stable_substep())
        return self._compiled

    def compiled_topology(self) -> Tuple:
        """``(names, index_links, active_pairs, stable_substep)`` for
        callers that vectorise this network (the fleet batch path)."""
        return self._compile()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable state: the node temperatures (topology is config)."""
        return pack_state(self, self._STATE_VERSION,
                          {"temperatures": self.temperatures()})

    def load_state_dict(self, state: dict) -> None:
        """Restore node temperatures in place.

        The node-name set must match exactly — a checkpoint from a
        different topology is a configuration mismatch, not a restore.
        """
        payload = unpack_state(self, state, self._STATE_VERSION)
        temps = payload["temperatures"]
        if set(temps) != set(self._nodes):
            raise StateMismatchError(
                f"thermal node set mismatch: checkpoint has "
                f"{sorted(temps)}, network has {sorted(self._nodes)}")
        for name, temp in temps.items():
            self._nodes[name].temperature_c = temp

    def _stable_substep(self) -> float:
        """A timestep comfortably below the fastest RC constant."""
        return stable_substep(
            {name: node.heat_capacity for name, node in self._nodes.items()},
            self._links)


def phone_thermal_network(
    ambient_c: float = 25.0,
    cpu_capacity: float = 12.0,
    battery_capacity: float = 60.0,
    surface_capacity: float = 90.0,
) -> ThermalNetwork:
    """Build the standard 4-node phone network used throughout.

    Nodes: ``cpu`` (the hot spot the TEC sits on), ``battery``,
    ``surface`` (back cover / cooling plate), ``ambient`` (boundary).
    Conductances are sized so a sustained full-tilt SoC (Table III's
    ~612 mW C0 draw) settles the CPU die just above the 45 degC
    hot-spot line with only passive cooling, while moderate loads stay
    in the 30s -- matching the paper's hot-spot regime.
    """
    net = ThermalNetwork()
    net.add_node(ThermalNode("cpu", cpu_capacity, ambient_c))
    net.add_node(ThermalNode("battery", battery_capacity, ambient_c))
    net.add_node(ThermalNode("surface", surface_capacity, ambient_c))
    net.add_node(ThermalNode("ambient", math.inf, ambient_c))
    net.link("cpu", "surface", 0.023)
    net.link("cpu", "battery", 0.008)
    net.link("battery", "surface", 0.05)
    net.link("surface", "ambient", 0.35)
    return net
