"""The paper's benchmark workloads as synthetic generators.

* :class:`GeekbenchWorkload` -- resource intensive; keeps the system
  fully occupied so the power profile is easy to predict.
* :class:`PCMarkWorkload` -- CPU intensive with occasional user
  interactions; exercises CAPMAN when the software pattern changes.
* :class:`VideoWorkload` -- stable playback of short videos: steady
  medium compute, lit screen, periodic network fetches.
* :class:`EtaStaticWorkload` -- the paper's ``eta-Static`` batch: a mix
  of PCMark and Video segments controlled by the ratio ``eta``.
* :class:`IdleWorkload` -- screen on, system idle (the Figure 2(a)
  "keep the phone on" micro-workload).
* :class:`SkewedBurstWorkload` -- skewed arrivals of power surges, the
  regime the paper's headline +114% number is quoted under.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..device.phone import DemandSlice
from ..device.syscalls import SyscallClass, SyscallVocabulary, default_vocabulary
from .base import Segment, Workload

__all__ = [
    "GeekbenchWorkload",
    "PCMarkWorkload",
    "VideoWorkload",
    "EtaStaticWorkload",
    "IdleWorkload",
    "SkewedBurstWorkload",
]


def _clip_util(value: float) -> float:
    return float(min(100.0, max(0.0, value)))


class GeekbenchWorkload(Workload):
    """Saturating CPU+memory benchmark: utilisation pegged near 100%."""

    name = "Geekbench"

    def __init__(self, seed: int = 0, segment_s: float = 5.0) -> None:
        super().__init__(seed)
        self.segment_s = segment_s
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        boost = self._vocab.representative(SyscallClass.CPU_BOOST)
        timer = self._vocab.representative(SyscallClass.TIMER)
        first = True
        while True:
            util = _clip_util(rng.normal(97.0, 2.0))
            demand = DemandSlice(
                cpu_util=util, freq_index=2, screen_on=True, brightness=150,
                wifi_kbps=0.0,
            )
            yield Segment(demand, self.segment_s, boost if first else timer)
            first = False


class PCMarkWorkload(Workload):
    """CPU-intensive phases broken by user interactions.

    Work phases run high utilisation; interactions insert short bursts
    (app launches) and brief idles (reading the screen), so the demand
    pattern shifts and the scheduler has something to learn.
    """

    name = "PCMark"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        v = self._vocab
        boost = v.representative(SyscallClass.CPU_BOOST)
        relax = v.representative(SyscallClass.CPU_RELAX)
        binder = v.representative(SyscallClass.BINDER_CALL)
        while True:
            # Work phase: 10-40 s of heavy compute.
            work_s = float(rng.uniform(10.0, 40.0))
            util = _clip_util(rng.normal(78.0, 8.0))
            yield Segment(
                DemandSlice(cpu_util=util, freq_index=2, screen_on=True,
                            brightness=170, wifi_kbps=10.0),
                work_s,
                boost,
            )
            # User interaction: a launch burst then a reading pause.
            if rng.random() < 0.7:
                yield Segment(
                    DemandSlice(cpu_util=100.0, freq_index=2, screen_on=True,
                                brightness=170, wifi_kbps=120.0),
                    float(rng.uniform(1.0, 3.0)),
                    binder,
                )
            pause_s = float(rng.exponential(6.0)) + 1.0
            yield Segment(
                DemandSlice(cpu_util=8.0, freq_index=0, screen_on=True,
                            brightness=170, wifi_kbps=2.0),
                pause_s,
                relax,
            )


class VideoWorkload(Workload):
    """Steady short-video playback: the gentle, big-battery-friendly load."""

    name = "Video"

    def __init__(self, seed: int = 0, fetch_period_s: float = 10.0) -> None:
        super().__init__(seed)
        self.fetch_period_s = fetch_period_s
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        v = self._vocab
        decode = v.representative(SyscallClass.MEDIA_DECODE)
        fetch = v.representative(SyscallClass.NET_SEND)
        done = v.representative(SyscallClass.NET_DONE)
        while True:
            # Playback stretch at a trickle of network.
            play_s = max(1.0, self.fetch_period_s - 2.0)
            util = _clip_util(rng.normal(35.0, 4.0))
            yield Segment(
                DemandSlice(cpu_util=util, freq_index=1, screen_on=True,
                            brightness=200, wifi_kbps=20.0),
                play_s,
                decode,
            )
            # Buffer refill burst.
            yield Segment(
                DemandSlice(cpu_util=45.0, freq_index=1, screen_on=True,
                            brightness=200, wifi_kbps=300.0),
                2.0,
                fetch,
            )
            yield Segment(
                DemandSlice(cpu_util=_clip_util(rng.normal(35.0, 4.0)),
                            freq_index=1, screen_on=True, brightness=200,
                            wifi_kbps=20.0),
                0.5,
                done,
            )


class EtaStaticWorkload(Workload):
    """The paper's eta-Static batch: PCMark/Video mixed by ratio eta.

    ``eta`` is the probability the next episode is PCMark-like.  The
    paper evaluates eta in {20%, 50%, 80%}.
    """

    def __init__(self, eta: float, seed: int = 0) -> None:
        if not 0.0 <= eta <= 1.0:
            raise ValueError("eta must lie in [0, 1]")
        super().__init__(seed)
        self.eta = eta
        self.name = f"eta-{int(round(eta * 100))}%"

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        pc = PCMarkWorkload(seed=self.seed + 101)
        vid = VideoWorkload(seed=self.seed + 202)
        pc_iter = pc._generate(np.random.default_rng(self.seed + 101))
        vid_iter = vid._generate(np.random.default_rng(self.seed + 202))
        while True:
            source = pc_iter if rng.random() < self.eta else vid_iter
            # Pull one episode (a few segments) from the chosen source.
            for _ in range(3):
                yield next(source)


class IdleWorkload(Workload):
    """Screen on, nothing running: Figure 2(a)'s idle micro-workload."""

    name = "Idle"

    def __init__(self, seed: int = 0, segment_s: float = 30.0) -> None:
        super().__init__(seed)
        self.segment_s = segment_s
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        timer = self._vocab.representative(SyscallClass.TIMER)
        while True:
            yield Segment(
                DemandSlice(cpu_util=float(rng.uniform(1.0, 4.0)), freq_index=0,
                            screen_on=True, brightness=120, wifi_kbps=0.0),
                self.segment_s,
                timer,
            )


class SkewedBurstWorkload(Workload):
    """Skewed arrivals of power surges over a quiet baseline.

    Inter-arrival times are Pareto-distributed (heavy tail), so bursts
    cluster -- the skewed-arrival regime of the paper's target software
    (Section III) under which CAPMAN's headline gain is reported.
    """

    name = "SkewedBurst"

    def __init__(self, seed: int = 0, pareto_shape: float = 1.5,
                 mean_gap_s: float = 12.0) -> None:
        if pareto_shape <= 1.0:
            raise ValueError("pareto_shape must exceed 1 for a finite mean")
        super().__init__(seed)
        self.pareto_shape = pareto_shape
        self.mean_gap_s = mean_gap_s
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        v = self._vocab
        wake = v.representative(SyscallClass.WAKE_UP)
        suspend = v.representative(SyscallClass.SUSPEND)
        scale = self.mean_gap_s * (self.pareto_shape - 1.0) / self.pareto_shape
        while True:
            gap_s = float((rng.pareto(self.pareto_shape) + 1.0) * scale)
            gap_s = min(gap_s, 600.0)
            yield Segment(
                DemandSlice(cpu_util=0.0, screen_on=False, wifi_kbps=0.0),
                max(gap_s, 0.5),
                suspend,
            )
            burst_s = float(rng.uniform(2.0, 8.0))
            util = _clip_util(rng.uniform(70.0, 100.0))
            yield Segment(
                DemandSlice(cpu_util=util, freq_index=2, screen_on=True,
                            brightness=200, wifi_kbps=float(rng.uniform(0.0, 250.0))),
                burst_s,
                wake,
            )
