"""Screen on/off toggling workloads (paper Figure 2(b)).

The paper toggles the phone on and off at frequency scales from once
per minute down to once per second and finds the NCA (big) chemistry
always wins the burst, but by a shrinking margin as the toggling
frequency rises.  :class:`ScreenToggleWorkload` reproduces the
stimulus; the Figure 2 benchmark sweeps its period.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..device.phone import DemandSlice
from ..device.syscalls import SyscallClass, default_vocabulary
from .base import Segment, Workload

__all__ = ["ScreenToggleWorkload"]


class ScreenToggleWorkload(Workload):
    """Wake the phone, hold it on briefly, suspend, repeat.

    Parameters
    ----------
    period_s:
        Full on+off cycle length; 60 is the paper's "each minute",
        1 its "each second".
    on_fraction:
        Share of the period spent awake.
    wake_util:
        CPU utilisation of the wake burst (screen redraw, app resume).
    """

    def __init__(
        self,
        period_s: float = 60.0,
        on_fraction: float = 0.25,
        wake_util: float = 85.0,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < on_fraction < 1.0:
            raise ValueError("on_fraction must lie in (0, 1)")
        super().__init__(seed)
        self.period_s = period_s
        self.on_fraction = on_fraction
        self.wake_util = wake_util
        self.name = f"ScreenToggle({period_s:g}s)"
        self._vocab = default_vocabulary()

    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        v = self._vocab
        wake = v.representative(SyscallClass.WAKE_UP)
        off = v.representative(SyscallClass.SCREEN_OFF)
        suspend = v.representative(SyscallClass.SUSPEND)
        on_s = self.period_s * self.on_fraction
        off_s = self.period_s - on_s
        while True:
            # Wake burst: the V-edge-triggering surge.
            burst_s = min(1.0, 0.5 * on_s)
            util = float(min(100.0, max(0.0, rng.normal(self.wake_util, 5.0))))
            yield Segment(
                DemandSlice(cpu_util=util, freq_index=2, screen_on=True,
                            brightness=180, wifi_kbps=50.0),
                burst_s,
                wake,
            )
            # Remaining on-time at moderate draw.
            if on_s - burst_s > 0:
                yield Segment(
                    DemandSlice(cpu_util=25.0, freq_index=1, screen_on=True,
                                brightness=180, wifi_kbps=5.0),
                    on_s - burst_s,
                    off,
                )
            # Off stretch.
            yield Segment(
                DemandSlice(cpu_util=0.0, screen_on=False, wifi_kbps=0.0),
                off_s,
                suspend,
            )
