"""Workload abstractions.

A *workload* is a seeded generator of :class:`Segment` objects -- a
demand slice held for a duration, tagged with the system call that
initiated it.  Policies never see the generator directly; experiments
materialise a :class:`~repro.workload.traces.Trace` once and replay it
for every policy so comparisons share identical demand.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..device.phone import DemandSlice
from ..device.syscalls import Syscall
from ..durability.state import (
    StateMismatchError,
    class_tag,
    pack_state,
    unpack_state,
)

__all__ = ["Segment", "Workload", "SegmentStream"]


@dataclass(frozen=True)
class Segment:
    """One homogeneous stretch of demand."""

    demand: DemandSlice
    duration_s: float
    #: The system call / binder event that started this segment (the
    #: MDP action); None for pure continuations.
    syscall: Optional[Syscall] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")


class Workload(abc.ABC):
    """Base class for demand generators.

    Subclasses implement :meth:`_generate`; the public API adds
    seeding.  Generators may be infinite -- consumers bound them by
    wall-clock duration.
    """

    name: str = "workload"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def segments(self) -> Iterator[Segment]:
        """A fresh, reproducible stream of segments."""
        rng = np.random.default_rng(self.seed)
        return self._generate(rng)

    @abc.abstractmethod
    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        """Yield segments forever (or until the scenario ends)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"

    def stream(self) -> "SegmentStream":
        """A resumable (checkpointable) view of :meth:`segments`."""
        return SegmentStream(self)


class SegmentStream:
    """A position-tracking, checkpointable segment iterator.

    Workload generation is a pure function of the workload's seed, so
    the stream's whole mutable state is *how far it has advanced*.  A
    restore rebuilds the underlying generator from the seed and
    fast-forwards it — including the NumPy ``Generator`` hidden inside
    the generator closure, whose state after ``k`` yields is uniquely
    determined by the seed — so the resumed stream is bit-identical to
    the uninterrupted one.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._iter: Iterator[Segment] = workload.segments()
        self._position = 0

    @property
    def position(self) -> int:
        """Number of segments consumed so far."""
        return self._position

    def __iter__(self) -> "SegmentStream":
        return self

    def __next__(self) -> Segment:
        segment = next(self._iter)
        self._position += 1
        return segment

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Seed identity plus stream position."""
        return pack_state(self, self._STATE_VERSION, {
            "workload_class": class_tag(self.workload),
            "workload_seed": self.workload.seed,
            "position": self._position,
        })

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the generator and fast-forward to the saved position."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        if payload["workload_class"] != class_tag(self.workload):
            raise StateMismatchError(
                f"stream checkpoint is for {payload['workload_class']}, "
                f"not {class_tag(self.workload)}")
        if payload["workload_seed"] != self.workload.seed:
            raise StateMismatchError(
                f"stream checkpoint seed {payload['workload_seed']} does "
                f"not match workload seed {self.workload.seed}")
        self._iter = self.workload.segments()
        self._position = 0
        for _ in range(payload["position"]):
            next(self)
