"""Workload abstractions.

A *workload* is a seeded generator of :class:`Segment` objects -- a
demand slice held for a duration, tagged with the system call that
initiated it.  Policies never see the generator directly; experiments
materialise a :class:`~repro.workload.traces.Trace` once and replay it
for every policy so comparisons share identical demand.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..device.phone import DemandSlice
from ..device.syscalls import Syscall

__all__ = ["Segment", "Workload"]


@dataclass(frozen=True)
class Segment:
    """One homogeneous stretch of demand."""

    demand: DemandSlice
    duration_s: float
    #: The system call / binder event that started this segment (the
    #: MDP action); None for pure continuations.
    syscall: Optional[Syscall] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")


class Workload(abc.ABC):
    """Base class for demand generators.

    Subclasses implement :meth:`_generate`; the public API adds
    seeding.  Generators may be infinite -- consumers bound them by
    wall-clock duration.
    """

    name: str = "workload"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def segments(self) -> Iterator[Segment]:
        """A fresh, reproducible stream of segments."""
        rng = np.random.default_rng(self.seed)
        return self._generate(rng)

    @abc.abstractmethod
    def _generate(self, rng: np.random.Generator) -> Iterator[Segment]:
        """Yield segments forever (or until the scenario ends)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, seed={self.seed})"
