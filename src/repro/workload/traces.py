"""Trace recording and replay.

Experiments materialise a workload into a :class:`Trace` once, then
replay the identical demand for every policy under comparison (and
hand the whole trace to the Oracle baseline, which is allowed to see
the future).  Traces serialise to JSON lines for reuse across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..device.phone import DemandSlice
from ..device.syscalls import Syscall, SyscallVocabulary, default_vocabulary
from .base import Segment, Workload

__all__ = ["Trace", "record_trace", "TraceWorkload"]


@dataclass
class Trace:
    """A finite, materialised sequence of segments."""

    segments: List[Segment]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a trace needs at least one segment")

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    @property
    def duration_s(self) -> float:
        """Total wall-clock span of the trace (s)."""
        return sum(s.duration_s for s in self.segments)

    @property
    def mean_power_proxy(self) -> float:
        """Duration-weighted mean CPU utilisation (rough heaviness)."""
        total = self.duration_s
        return sum(s.demand.cpu_util * s.duration_s for s in self.segments) / total

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines."""
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps({"name": self.name}) + "\n")
            for seg in self.segments:
                d = seg.demand
                fh.write(json.dumps({
                    "duration_s": seg.duration_s,
                    "syscall": seg.syscall.name if seg.syscall else None,
                    "cpu_util": d.cpu_util,
                    "freq_index": d.freq_index,
                    "screen_on": d.screen_on,
                    "brightness": d.brightness,
                    "wifi_kbps": d.wifi_kbps,
                }) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path],
             vocabulary: Optional[SyscallVocabulary] = None) -> "Trace":
        """Read a trace written by :meth:`save`."""
        vocab = vocabulary or default_vocabulary()
        path = Path(path)
        segments: List[Segment] = []
        name = "trace"
        with path.open() as fh:
            header = json.loads(fh.readline())
            name = header.get("name", name)
            for line in fh:
                row = json.loads(line)
                call: Optional[Syscall] = None
                if row["syscall"] is not None:
                    call = vocab.lookup(row["syscall"])
                segments.append(Segment(
                    DemandSlice(
                        cpu_util=row["cpu_util"],
                        freq_index=row["freq_index"],
                        screen_on=row["screen_on"],
                        brightness=row["brightness"],
                        wifi_kbps=row["wifi_kbps"],
                    ),
                    row["duration_s"],
                    call,
                ))
        return cls(segments, name=name)


def record_trace(workload: Workload, duration_s: float) -> Trace:
    """Materialise ``workload`` until at least ``duration_s`` seconds.

    The final segment is truncated so the trace length is exact.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    segments: List[Segment] = []
    elapsed = 0.0
    for seg in workload.segments():
        remaining = duration_s - elapsed
        if seg.duration_s >= remaining:
            segments.append(Segment(seg.demand, remaining, seg.syscall))
            elapsed = duration_s
            break
        segments.append(seg)
        elapsed += seg.duration_s
    return Trace(segments, name=workload.name)


class TraceWorkload(Workload):
    """Replay a recorded trace as a workload (optionally looping)."""

    def __init__(self, trace: Trace, loop: bool = False) -> None:
        super().__init__(seed=0)
        self.trace = trace
        self.loop = loop
        self.name = trace.name

    def _generate(self, rng) -> Iterator[Segment]:
        while True:
            for seg in self.trace:
                yield seg
            if not self.loop:
                return
