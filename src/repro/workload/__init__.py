"""Workload substrate: generators, toggling, traces."""

from .base import Segment, SegmentStream, Workload
from .generators import (
    EtaStaticWorkload,
    GeekbenchWorkload,
    IdleWorkload,
    PCMarkWorkload,
    SkewedBurstWorkload,
    VideoWorkload,
)
from .onoff import ScreenToggleWorkload
from .traces import Trace, TraceWorkload, record_trace

__all__ = [
    "Segment",
    "SegmentStream",
    "Workload",
    "EtaStaticWorkload",
    "GeekbenchWorkload",
    "IdleWorkload",
    "PCMarkWorkload",
    "SkewedBurstWorkload",
    "VideoWorkload",
    "ScreenToggleWorkload",
    "Trace",
    "TraceWorkload",
    "record_trace",
]
