"""Fault injection and supervised degraded-mode control.

Composable, seeded, deterministic fault models for the switch, TEC,
sensors and cells; a supervisor that detects actuation failures and
degrades gracefully; and the policy wrapper that threads both through
the simulation harness and sweep engine unchanged.
"""

from .events import EventLog, FaultEvent, RecoveryEvent
from .injectors import FaultyBatterySwitch, FaultyCell, FaultyTEC, SensorTap
from .schedule import (
    CellFault,
    FaultRuntime,
    FaultSchedule,
    FaultTrigger,
    Observation,
    ScheduleRuntime,
    SensorFault,
    SwitchFault,
    TecFault,
)
from .supervisor import (
    MODE_NORMAL,
    MODE_SAFE,
    MODE_SINGLE_BATTERY,
    MODE_THERMAL_FALLBACK,
    SensorGuard,
    SupervisedPolicy,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "EventLog",
    "FaultEvent",
    "RecoveryEvent",
    "FaultyBatterySwitch",
    "FaultyCell",
    "FaultyTEC",
    "SensorTap",
    "CellFault",
    "FaultRuntime",
    "FaultSchedule",
    "FaultTrigger",
    "Observation",
    "ScheduleRuntime",
    "SensorFault",
    "SwitchFault",
    "TecFault",
    "MODE_NORMAL",
    "MODE_SAFE",
    "MODE_SINGLE_BATTERY",
    "MODE_THERMAL_FALLBACK",
    "SensorGuard",
    "SupervisedPolicy",
    "Supervisor",
    "SupervisorConfig",
]
