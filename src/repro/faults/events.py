"""Structured fault/recovery events on the control-tick stream.

Every injected-fault activation, every supervisor detection and every
degraded-mode transition is recorded as a frozen event with a
simulation timestamp, so a faulty run carries a complete, ordered
account of what went wrong and what the controller did about it.

Determinism contract: events carry only simulation-time data (no wall
clock, no unseeded randomness), so the same seed + schedule reproduce
the identical event log across invocations -- tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from ..durability.state import pack_state, unpack_state

__all__ = ["FaultEvent", "RecoveryEvent", "EventLog"]


@dataclass(frozen=True)
class FaultEvent:
    """Something went wrong (an injection activated or was detected).

    ``source`` identifies the component ("switch", "tec",
    "sensor:cpu_temp", "cell:big", "supervisor"); ``kind`` the event
    class ("stuck-active", "implausible-reading",
    "mode-enter:single-battery", ...).
    """

    time_s: float
    source: str
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent:
    """A fault cleared or a degraded mode was exited."""

    time_s: float
    source: str
    kind: str
    detail: str = ""


#: Either event flavour, as stored on the tick stream.
Event = Union[FaultEvent, RecoveryEvent]


@dataclass
class EventLog:
    """Append-only, time-ordered log shared by injectors and supervisor."""

    _events: List[Event] = field(default_factory=list)

    def record_fault(self, time_s: float, source: str, kind: str,
                     detail: str = "") -> FaultEvent:
        """Append a :class:`FaultEvent` and return it."""
        event = FaultEvent(time_s, source, kind, detail)
        self._events.append(event)
        return event

    def record_recovery(self, time_s: float, source: str, kind: str,
                        detail: str = "") -> RecoveryEvent:
        """Append a :class:`RecoveryEvent` and return it."""
        event = RecoveryEvent(time_s, source, kind, detail)
        self._events.append(event)
        return event

    @property
    def events(self) -> Tuple[Event, ...]:
        """Immutable snapshot of the log."""
        return tuple(self._events)

    @property
    def fault_count(self) -> int:
        """Number of :class:`FaultEvent` entries."""
        return sum(1 for e in self._events if isinstance(e, FaultEvent))

    @property
    def recovery_count(self) -> int:
        """Number of :class:`RecoveryEvent` entries."""
        return sum(1 for e in self._events if isinstance(e, RecoveryEvent))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """The recorded events (frozen, so a shallow copy suffices)."""
        return pack_state(self, self._STATE_VERSION,
                          {"events": list(self._events)})

    def load_state_dict(self, state: dict) -> None:
        """Restore in place — the list object is shared with injectors
        and the supervisor, so it is mutated, never reassigned."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._events[:] = payload["events"]
