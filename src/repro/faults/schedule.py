"""Deterministic fault schedules: what breaks, when, and how badly.

A :class:`FaultSchedule` is a frozen, declarative description of every
fault injected into one scenario -- the analogue of a workload trace
for the failure dimension.  Each fault couples a *model* (what breaks:
a stuck switch, a derated TEC, a noisy sensor, a leaking cell) to a
:class:`FaultTrigger` (when it is active: a time window, an armed
condition, an intermittent duty cycle).

Determinism contract: the schedule's ``seed`` derives one private
``random.Random`` stream per fault (keyed by schedule seed + fault
index), and triggers depend only on simulation time and observed
state.  The same seed + schedule therefore produce bit-identical fault
behaviour and an identical event log on every run -- which is also
what makes faulty scenario cells cacheable by the sweep engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..durability.state import StateMismatchError, pack_state, unpack_state
from .events import EventLog

__all__ = [
    "FaultTrigger",
    "SwitchFault",
    "TecFault",
    "SensorFault",
    "CellFault",
    "FaultSpec",
    "FaultSchedule",
    "Observation",
    "FaultRuntime",
    "ScheduleRuntime",
]

#: Comparison operators allowed in condition triggers.
_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class FaultTrigger:
    """When a fault is active.

    Parameters
    ----------
    start_s / end_s:
        Absolute activation window in simulation time.
    when:
        Optional arming condition ``(field, op, value)`` evaluated
        against the live :class:`Observation` (fields: ``time_s``,
        ``cpu_temp_c``, ``soc_big``, ``soc_little``).  The trigger
        latches the first time the condition holds and stays armed.
    period_s / duty:
        Optional intermittence: within the window the fault is active
        for the first ``duty`` fraction of every ``period_s`` cycle.
    """

    start_s: float = 0.0
    end_s: float = math.inf
    when: Optional[Tuple[str, str, float]] = None
    period_s: Optional[float] = None
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("trigger window must have end_s >= start_s")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError("duty must lie in (0, 1]")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.when is not None and self.when[1] not in _OPS:
            raise ValueError(f"unknown condition operator {self.when[1]!r}")

    def phase_active(self, now_s: float) -> bool:
        """Window + intermittence check (condition latching is runtime state)."""
        if not self.start_s <= now_s < self.end_s:
            return False
        if self.period_s is None:
            return True
        return ((now_s - self.start_s) % self.period_s) < self.duty * self.period_s

    def condition_met(self, obs: "Observation") -> bool:
        """Evaluate the arming condition against an observation."""
        if self.when is None:
            return True
        fld, op, value = self.when
        return _OPS[op](getattr(obs, fld), value)


# ----------------------------------------------------------------------
# Fault models (what breaks)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SwitchFault:
    """Battery-switch degradation.

    ``stuck`` refuses every request; ``drop_probability`` drops a
    request with the fault's seeded RNG; ``extra_dwell_s`` models a
    slow comparator (requests inside the extended dwell are refused);
    ``contact_growth_j`` grows the per-switch energy cost after every
    committed event (contact-resistance wear).
    """

    trigger: FaultTrigger = field(default_factory=FaultTrigger)
    stuck: bool = False
    drop_probability: float = 0.0
    extra_dwell_s: float = 0.0
    contact_growth_j: float = 0.0

    @property
    def target(self) -> str:
        return "switch"


@dataclass(frozen=True)
class TecFault:
    """TEC degradation / hard failure.

    ``stuck_off`` ignores on-commands (dead driver); ``stuck_on``
    ignores off-commands; ``derate`` scales the pumped heat while
    active (worn-out module).
    """

    trigger: FaultTrigger = field(default_factory=FaultTrigger)
    stuck_off: bool = False
    stuck_on: bool = False
    derate: float = 1.0

    def __post_init__(self) -> None:
        if self.stuck_off and self.stuck_on:
            raise ValueError("a TEC cannot be stuck off and stuck on at once")
        if not 0.0 <= self.derate <= 1.0:
            raise ValueError("derate must lie in [0, 1]")

    @property
    def target(self) -> str:
        return "tec"


@dataclass(frozen=True)
class SensorFault:
    """Corruption of one sensor channel the controller consumes.

    Channels: ``cpu_temp``, ``surface_temp``, ``soc_big``,
    ``soc_little`` (the SoC gauges stand in for the voltage-derived
    fuel gauge).  ``dropout_probability`` holds the last reported
    value; ``nan_probability`` emits a NaN spike.
    """

    channel: str = "cpu_temp"
    trigger: FaultTrigger = field(default_factory=FaultTrigger)
    noise_std: float = 0.0
    bias: float = 0.0
    dropout_probability: float = 0.0
    nan_probability: float = 0.0

    def __post_init__(self) -> None:
        for p in (self.dropout_probability, self.nan_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")

    @property
    def target(self) -> str:
        return f"sensor:{self.channel}"


@dataclass(frozen=True)
class CellFault:
    """Accelerated cell-aging anomaly.

    ``fade_per_s`` shrinks both KiBaM wells exponentially while active
    (capacity fade); ``leak_a`` adds a self-discharge current.
    """

    cell: str = "big"
    trigger: FaultTrigger = field(default_factory=FaultTrigger)
    fade_per_s: float = 0.0
    leak_a: float = 0.0

    def __post_init__(self) -> None:
        if self.cell not in ("big", "little"):
            raise ValueError("cell must be 'big' or 'little'")
        if self.fade_per_s < 0 or self.leak_a < 0:
            raise ValueError("fault magnitudes must be non-negative")

    @property
    def target(self) -> str:
        return f"cell:{self.cell}"


FaultSpec = Union[SwitchFault, TecFault, SensorFault, CellFault]


# ----------------------------------------------------------------------
# Schedule (declarative) and runtime (per-cycle state)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded collection of fault specs.

    Frozen and built only from frozen specs, so a schedule hashes
    cleanly into the sweep engine's content-addressed cache keys.
    An empty schedule is the nominal (fault-free) scenario.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    @property
    def label(self) -> str:
        """Scenario label: the explicit name, or nominal/faultsN."""
        if self.name:
            return self.name
        return "nominal" if not self.faults else f"faults{len(self.faults)}"

    def __bool__(self) -> bool:
        return bool(self.faults)

    def runtime(self) -> "ScheduleRuntime":
        """Fresh per-cycle runtime state (latches, RNG streams, log)."""
        return ScheduleRuntime(self)


@dataclass
class Observation:
    """Mutable snapshot of the true system state, fed to triggers.

    Updated once per control tick by the harness; condition triggers
    and injectors read it (injected hardware "knows" the true state --
    only the *controller* sees corrupted sensors).
    """

    time_s: float = 0.0
    cpu_temp_c: float = 25.0
    soc_big: float = 1.0
    soc_little: float = 1.0


class FaultRuntime:
    """One fault's live state: condition latch, RNG stream, activity edge.

    ``active()`` is the single query injectors use; it also records
    activation/clearing edges on the shared event log, so the log
    doubles as the injection ground truth.
    """

    def __init__(self, spec: FaultSpec, rng: random.Random,
                 bus: Observation, log: EventLog) -> None:
        self.spec = spec
        self.rng = rng
        self.bus = bus
        self.log = log
        self._latched = spec.trigger.when is None
        self._was_active = False

    def active(self) -> bool:
        """Whether the fault is active right now (logs edges)."""
        trigger = self.spec.trigger
        if not self._latched and trigger.condition_met(self.bus):
            self._latched = True
        is_active = self._latched and trigger.phase_active(self.bus.time_s)
        if is_active != self._was_active:
            if is_active:
                self.log.record_fault(
                    self.bus.time_s, self.spec.target, "injected",
                    type(self.spec).__name__)
            else:
                self.log.record_recovery(
                    self.bus.time_s, self.spec.target, "injection-cleared",
                    type(self.spec).__name__)
            self._was_active = is_active
        return is_active

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Latch, activity edge, and the private RNG stream state."""
        return pack_state(self, self._STATE_VERSION, {
            "latched": self._latched,
            "was_active": self._was_active,
            "rng_state": self.rng.getstate(),
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._latched = payload["latched"]
        self._was_active = payload["was_active"]
        self.rng.setstate(payload["rng_state"])


class ScheduleRuntime:
    """Per-cycle state for a whole schedule: bus, log, fault runtimes."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.bus = Observation()
        self.log = EventLog()
        self.runtimes: List[FaultRuntime] = [
            FaultRuntime(spec, random.Random(f"{schedule.seed}:{i}"),
                         self.bus, self.log)
            for i, spec in enumerate(schedule.faults)
        ]

    def observe(self, time_s: float, cpu_temp_c: float,
                soc_big: float, soc_little: float) -> None:
        """Refresh the true-state bus (call once per control tick)."""
        self.bus.time_s = time_s
        self.bus.cpu_temp_c = cpu_temp_c
        self.bus.soc_big = soc_big
        self.bus.soc_little = soc_little

    def of_type(self, cls) -> List[FaultRuntime]:
        """Runtimes whose spec is an instance of ``cls``."""
        return [rt for rt in self.runtimes if isinstance(rt.spec, cls)]

    def sensor_runtimes(self, channel: str) -> List[FaultRuntime]:
        """Sensor-fault runtimes for one channel, in spec order."""
        return [rt for rt in self.runtimes
                if isinstance(rt.spec, SensorFault) and rt.spec.channel == channel]

    def cell_runtimes(self, which: str) -> List[FaultRuntime]:
        """Cell-fault runtimes for the big or little cell."""
        return [rt for rt in self.runtimes
                if isinstance(rt.spec, CellFault) and rt.spec.cell == which]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Bus snapshot, shared event log, and every fault runtime."""
        return pack_state(self, self._STATE_VERSION, {
            "bus": (self.bus.time_s, self.bus.cpu_temp_c,
                    self.bus.soc_big, self.bus.soc_little),
            "log": self.log.state_dict(),
            "runtimes": [rt.state_dict() for rt in self.runtimes],
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore in place; bus and log objects keep their identity
        (injectors and the supervisor hold references to them)."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        if len(payload["runtimes"]) != len(self.runtimes):
            raise StateMismatchError(
                f"checkpoint has {len(payload['runtimes'])} fault runtimes, "
                f"schedule has {len(self.runtimes)}")
        (self.bus.time_s, self.bus.cpu_temp_c,
         self.bus.soc_big, self.bus.soc_little) = payload["bus"]
        self.log.load_state_dict(payload["log"])
        for rt, rt_state in zip(self.runtimes, payload["runtimes"]):
            rt.load_state_dict(rt_state)
