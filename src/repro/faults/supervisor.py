"""Supervised degraded-mode control.

The paper's actuator is real hardware -- a comparator/MOSFET battery
switch and a TEC driven off a 45 degC trigger -- and real hardware
fails.  This module adds the defensive layer a deployment needs:

* :class:`SensorGuard` -- range / rate-of-change / NaN sanity checks
  on every reading the controller consumes, with last-good-value
  substitution, so one frozen or sparking sensor cannot steer the
  scheduler off a cliff;
* :class:`Supervisor` -- compares commanded vs. observed actuator
  state with a bounded retry-then-fallback policy and degrades into
  explicit modes: **single-battery safe mode** when the switch stops
  honouring requests, **frequency-throttle thermal fallback** when the
  TEC is commanded on but the hot spot keeps climbing.  Every
  transition lands on the shared event log as a structured
  :class:`~repro.faults.events.FaultEvent` / ``RecoveryEvent``;
* :class:`SupervisedPolicy` -- wraps any
  :class:`~repro.sim.discharge.SchedulingPolicy` with a fault schedule
  plus supervision, so the whole stack (sweep engine, chaos grids, the
  live :class:`~repro.capman.framework.Capman` facade) runs faulty
  scenarios through the unchanged harness.

Mode state machine (see DESIGN.md section 8)::

    NORMAL --switch mismatches >= retry_limit--> SINGLE_BATTERY
    NORMAL --tec strikes >= strike_limit------> THERMAL_FALLBACK
    (both at once => SAFE)
    SINGLE_BATTERY --probe switch succeeds----> NORMAL   (RecoveryEvent)
    THERMAL_FALLBACK --tec observed working---> NORMAL   (RecoveryEvent)
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .. import obs
from ..battery.pack import BatteryPack, BigLittlePack
from ..battery.switch import BatterySelection
from ..device.phone import DemandSlice, Phone
from ..durability.state import pack_state, unpack_state
from ..sim.discharge import PolicyContext, SchedulingPolicy
from ..workload.traces import Trace
from .events import EventLog
from .injectors import FaultyBatterySwitch, FaultyCell, FaultyTEC, tap_map
from .schedule import (
    CellFault,
    FaultSchedule,
    ScheduleRuntime,
    SwitchFault,
    TecFault,
)

__all__ = [
    "SupervisorConfig",
    "SensorGuard",
    "Supervisor",
    "SupervisedPolicy",
    "MODE_NORMAL",
    "MODE_SINGLE_BATTERY",
    "MODE_THERMAL_FALLBACK",
    "MODE_SAFE",
]

MODE_NORMAL = "normal"
MODE_SINGLE_BATTERY = "single-battery"
MODE_THERMAL_FALLBACK = "thermal-fallback"
#: Both actuators distrusted at once.
MODE_SAFE = "safe"


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervision layer."""

    #: Plausible temperature window (degC) for thermal channels.
    temp_range_c: Tuple[float, float] = (-20.0, 130.0)
    #: Largest credible temperature slew (K/s).
    temp_max_rate_c_per_s: float = 10.0
    #: Largest credible SoC slew (fraction/s).
    soc_max_rate_per_s: float = 0.05
    #: Consecutive unhonoured switch requests before single-battery mode.
    switch_retry_limit: int = 3
    #: Seconds between switch probes while in single-battery mode.
    switch_probe_interval_s: float = 120.0
    #: Consecutive TEC strikes before thermal fallback.
    tec_strike_limit: int = 3
    #: Seconds of commanded-on cooling with a still-rising hot spot
    #: before the TEC is declared ineffective.
    tec_check_window_s: float = 60.0
    #: Temperature rise (K) over the check window that counts as a strike.
    tec_temp_rise_margin_c: float = 2.0
    #: Hot-spot line the thermal fallback defends (degC).
    hot_threshold_c: float = 45.0
    #: Throttle caps applied while in thermal fallback.
    throttle_freq_index: int = 0
    throttle_cpu_util: float = 60.0


class SensorGuard:
    """Range / rate / NaN guard for one sensor channel.

    Bad readings are replaced by the last good value (or clamped into
    range when no good value exists yet); the bad-streak start and the
    recovery are logged, not every bad sample.
    """

    def __init__(self, name: str, lo: float, hi: float,
                 max_rate_per_s: float, log: EventLog) -> None:
        self.name = name
        self.lo = lo
        self.hi = hi
        self.max_rate_per_s = max_rate_per_s
        self.log = log
        self._last_good: Optional[float] = None
        self._last_time: Optional[float] = None
        self._bad = False
        #: Samples rejected over the guard's life.
        self.rejected = 0

    def _plausible(self, value: float, now_s: float) -> bool:
        if not math.isfinite(value):
            return False
        if not self.lo <= value <= self.hi:
            return False
        if self._last_good is not None and self._last_time is not None:
            dt = now_s - self._last_time
            if dt > 0 and abs(value - self._last_good) / dt > self.max_rate_per_s:
                return False
        return True

    def clean(self, value: float, now_s: float) -> float:
        """The sanitized reading (the input when plausible)."""
        if self._plausible(value, now_s):
            if self._bad:
                self.log.record_recovery(
                    now_s, f"sensor:{self.name}", "reading-plausible")
                self._bad = False
            self._last_good = value
            self._last_time = now_s
            return value
        self.rejected += 1
        ob = obs.session()
        if ob is not None:
            ob.registry.counter("supervisor.sensor_rejects").inc()
        if not self._bad:
            self.log.record_fault(
                now_s, f"sensor:{self.name}", "implausible-reading",
                f"raw={value!r}")
            self._bad = True
        if self._last_good is not None:
            return self._last_good
        if math.isfinite(value):
            return min(max(value, self.lo), self.hi)
        return self.lo

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Last-good register, bad-streak flag and rejection counter."""
        return pack_state(self, self._STATE_VERSION, {
            "last_good": self._last_good,
            "last_time": self._last_time,
            "bad": self._bad,
            "rejected": self.rejected,
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._last_good = payload["last_good"]
        self._last_time = payload["last_time"]
        self._bad = payload["bad"]
        self.rejected = payload["rejected"]


class Supervisor:
    """Detects actuation failures and owns the degraded-mode flags."""

    def __init__(self, config: Optional[SupervisorConfig] = None,
                 log: Optional[EventLog] = None) -> None:
        self.config = config or SupervisorConfig()
        self.log = log if log is not None else EventLog()
        cfg = self.config
        lo, hi = cfg.temp_range_c
        self.guards: Dict[str, SensorGuard] = {
            "cpu_temp": SensorGuard("cpu_temp", lo, hi,
                                    cfg.temp_max_rate_c_per_s, self.log),
            "surface_temp": SensorGuard("surface_temp", lo, hi,
                                        cfg.temp_max_rate_c_per_s, self.log),
            "soc_big": SensorGuard("soc_big", 0.0, 1.0,
                                   cfg.soc_max_rate_per_s, self.log),
            "soc_little": SensorGuard("soc_little", 0.0, 1.0,
                                      cfg.soc_max_rate_per_s, self.log),
        }
        self._switch_ok = True
        self._tec_ok = True
        self._switch_misses = 0
        self._last_probe_s = -math.inf
        self._tec_strikes = 0
        self._tec_good_streak = 0
        self._tec_on_since: Optional[float] = None
        self._tec_temp_at_on = 0.0
        self.mode_transitions = 0

    # ------------------------------------------------------------------
    # Mode handling
    # ------------------------------------------------------------------
    @property
    def switch_locked(self) -> bool:
        """True while the switch is distrusted (single-battery mode)."""
        return not self._switch_ok

    @property
    def tec_locked(self) -> bool:
        """True while the TEC is distrusted (thermal fallback)."""
        return not self._tec_ok

    @property
    def mode(self) -> str:
        """The current degraded-mode label."""
        if not self._switch_ok and not self._tec_ok:
            return MODE_SAFE
        if not self._switch_ok:
            return MODE_SINGLE_BATTERY
        if not self._tec_ok:
            return MODE_THERMAL_FALLBACK
        return MODE_NORMAL

    def _set_switch_ok(self, ok: bool, now_s: float, detail: str) -> None:
        if ok == self._switch_ok:
            return
        before = self.mode
        self._switch_ok = ok
        self.mode_transitions += 1
        ob = obs.session()
        if ob is not None:
            ob.registry.counter("supervisor.mode_transitions").inc()
        if ok:
            self.log.record_recovery(now_s, "supervisor",
                                     f"mode-exit:{before}", detail)
        else:
            self.log.record_fault(now_s, "supervisor",
                                  f"mode-enter:{self.mode}", detail)

    def _set_tec_ok(self, ok: bool, now_s: float, detail: str) -> None:
        if ok == self._tec_ok:
            return
        before = self.mode
        self._tec_ok = ok
        self.mode_transitions += 1
        ob = obs.session()
        if ob is not None:
            ob.registry.counter("supervisor.mode_transitions").inc()
        if ok:
            self.log.record_recovery(now_s, "supervisor",
                                     f"mode-exit:{before}", detail)
        else:
            self.log.record_fault(now_s, "supervisor",
                                  f"mode-enter:{self.mode}", detail)

    # ------------------------------------------------------------------
    # Sensor sanitation
    # ------------------------------------------------------------------
    def sanitize(self, now_s: float,
                 readings: Mapping[str, float]) -> Dict[str, float]:
        """Run every reading through its channel guard."""
        out: Dict[str, float] = {}
        for name, value in readings.items():
            guard = self.guards.get(name)
            out[name] = guard.clean(value, now_s) if guard is not None else value
        return out

    # ------------------------------------------------------------------
    # Switch supervision
    # ------------------------------------------------------------------
    def verify_switch(self, observed: BatterySelection,
                      commanded: BatterySelection,
                      commanded_depleted: bool, now_s: float,
                      committed: bool = False) -> None:
        """Score last tick's switch request against the observed rail.

        Only called for ticks that *requested a change*.  A request for
        a depleted cell is excused (the pack's own failover redirects
        it; that is policy pressure, not a broken switch), and
        ``committed`` marks a request the switch physically honoured
        (an event hit the log) even if a protective failover moved the
        rail again afterwards -- the comparator demonstrably works.
        """
        if commanded_depleted:
            return
        if observed is commanded or committed:
            self._switch_misses = 0
            if not self._switch_ok:
                self._set_switch_ok(True, now_s, "probe switch honoured")
            return
        self._switch_misses += 1
        ob = obs.session()
        if ob is not None:
            ob.registry.counter("supervisor.switch_misses").inc()
        if self._switch_ok and self._switch_misses >= self.config.switch_retry_limit:
            self._set_switch_ok(
                False, now_s,
                f"{self._switch_misses} consecutive requests unhonoured")

    def switch_probe_due(self, now_s: float) -> bool:
        """Whether single-battery mode should risk one probe request."""
        if self._switch_ok:
            return True
        if now_s - self._last_probe_s >= self.config.switch_probe_interval_s:
            self._last_probe_s = now_s
            return True
        return False

    # ------------------------------------------------------------------
    # TEC supervision
    # ------------------------------------------------------------------
    def verify_tec(self, commanded_on: bool, observed_on: bool,
                   cpu_temp_c: float, now_s: float) -> None:
        """Compare TEC command vs. observation and cooling effectiveness."""
        cfg = self.config
        strike = False
        if commanded_on and not observed_on:
            strike = True
        if observed_on:
            if self._tec_on_since is None:
                self._tec_on_since = now_s
                self._tec_temp_at_on = cpu_temp_c
            elif (now_s - self._tec_on_since >= cfg.tec_check_window_s
                    and cpu_temp_c - self._tec_temp_at_on
                    >= cfg.tec_temp_rise_margin_c):
                # Commanded on, reportedly on, yet the spot keeps
                # climbing: the module pumps nothing (derated/dead).
                strike = True
                self._tec_on_since = now_s
                self._tec_temp_at_on = cpu_temp_c
        else:
            self._tec_on_since = None

        if strike:
            self._tec_good_streak = 0
            self._tec_strikes += 1
            if self._tec_ok and self._tec_strikes >= cfg.tec_strike_limit:
                self._set_tec_ok(False, now_s,
                                 f"{self._tec_strikes} consecutive TEC strikes")
        else:
            self._tec_strikes = 0
            if not self._tec_ok and commanded_on and observed_on:
                self._tec_good_streak += 1
                if (self._tec_good_streak >= cfg.tec_strike_limit
                        and cpu_temp_c < cfg.hot_threshold_c):
                    self._set_tec_ok(True, now_s, "TEC observed cooling again")

    # ------------------------------------------------------------------
    # Thermal fallback actuation
    # ------------------------------------------------------------------
    def throttle(self, demand: DemandSlice, cpu_temp_c: float) -> DemandSlice:
        """Frequency-throttle the demand while in thermal fallback.

        With the TEC dead the only remaining knob is the workload
        itself: cap the DVFS point and utilisation while the hot spot
        sits near the 45 degC line (small hysteresis below it).
        """
        cfg = self.config
        if self._tec_ok or cpu_temp_c < cfg.hot_threshold_c - 2.0:
            return demand
        freq = min(demand.freq_index, cfg.throttle_freq_index)
        util = min(demand.cpu_util, cfg.throttle_cpu_util)
        if freq == demand.freq_index and util == demand.cpu_util:
            return demand
        return dataclasses.replace(demand, freq_index=freq, cpu_util=util)

    @property
    def events(self):
        """The shared event log's snapshot."""
        return self.log.events

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """The full mode machine plus every sensor guard.

        The event log is shared with the fault runtime and checkpointed
        there, so it is deliberately absent here.
        """
        return pack_state(self, self._STATE_VERSION, {
            "switch_ok": self._switch_ok,
            "tec_ok": self._tec_ok,
            "switch_misses": self._switch_misses,
            "last_probe_s": self._last_probe_s,
            "tec_strikes": self._tec_strikes,
            "tec_good_streak": self._tec_good_streak,
            "tec_on_since": self._tec_on_since,
            "tec_temp_at_on": self._tec_temp_at_on,
            "mode_transitions": self.mode_transitions,
            "guards": {name: g.state_dict()
                       for name, g in self.guards.items()},
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._switch_ok = payload["switch_ok"]
        self._tec_ok = payload["tec_ok"]
        self._switch_misses = payload["switch_misses"]
        self._last_probe_s = payload["last_probe_s"]
        self._tec_strikes = payload["tec_strikes"]
        self._tec_good_streak = payload["tec_good_streak"]
        self._tec_on_since = payload["tec_on_since"]
        self._tec_temp_at_on = payload["tec_temp_at_on"]
        self.mode_transitions = payload["mode_transitions"]
        for name, guard_state in payload["guards"].items():
            guard = self.guards.get(name)
            if guard is not None:
                guard.load_state_dict(guard_state)


# ----------------------------------------------------------------------
# Policy wrapper: faults + supervision through the unchanged harness
# ----------------------------------------------------------------------
@dataclass
class SupervisedPolicy(SchedulingPolicy):
    """Wrap a policy with a fault schedule and (optionally) a supervisor.

    ``build_pack`` swaps the pack's switch and cells for their
    fault-capable wrappers; ``on_cycle_start`` swaps the phone's TEC,
    installs the sensor taps and builds a fresh :class:`Supervisor`.
    Everything is pickle-clean, so supervised policies flow through the
    scenario-sweep engine (and its cache) like any other policy.

    With an empty schedule and ``supervise=False`` the wrapper is
    behaviourally bit-identical to the inner policy.
    """

    inner: SchedulingPolicy = None  # type: ignore[assignment]
    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    supervise: bool = True
    config: SupervisorConfig = field(default_factory=SupervisorConfig)
    name: str = ""

    _runtime: Optional[ScheduleRuntime] = field(init=False, default=None, repr=False)
    _supervisor: Optional[Supervisor] = field(init=False, default=None, repr=False)
    _taps: Optional[dict] = field(init=False, default=None, repr=False)
    _phone: Optional[Phone] = field(init=False, default=None, repr=False)
    _pack: Optional[BatteryPack] = field(init=False, default=None, repr=False)
    #: Last tick's change request: (target, switch_count at command).
    _pending_cmd: Optional[Tuple[BatterySelection, int]] = field(
        init=False, default=None, repr=False)
    _last_clean_cpu: float = field(init=False, default=25.0, repr=False)

    def __post_init__(self) -> None:
        if self.inner is None:
            raise ValueError("SupervisedPolicy needs an inner policy")
        if not self.name:
            self.name = f"{self.inner.name}@{self.schedule.label}"
        self.uses_tec = self.inner.uses_tec

    # ------------------------------------------------------------------
    def build_pack(self) -> BatteryPack:
        self._runtime = self.schedule.runtime()
        runtime = self._runtime
        pack = self.inner.build_pack()
        if isinstance(pack, BigLittlePack):
            switch_faults = tuple(runtime.of_type(SwitchFault))
            if switch_faults:
                old = pack.switch
                pack.switch = FaultyBatterySwitch(
                    latency_s=old.latency_s,
                    switch_energy_j=old.switch_energy_j,
                    switch_heat_j=old.switch_heat_j,
                    min_dwell_s=old.min_dwell_s,
                    initial=old.initial,
                    faults=switch_faults,
                )
            for which in ("big", "little"):
                cell_faults = tuple(runtime.cell_runtimes(which))
                if cell_faults:
                    old_cell = getattr(pack, which)
                    setattr(pack, which, FaultyCell(
                        old_cell.chemistry, old_cell.capacity_mah,
                        old_cell.soc, old_cell.temperature_c,
                        faults=cell_faults,
                    ))
        self._pack = pack
        return pack

    def on_cycle_start(self, trace: Trace, phone: Phone) -> None:
        runtime = self._runtime
        if runtime is None:  # build_pack not driven by the harness
            self._runtime = runtime = self.schedule.runtime()
            self._pack = phone.pack
        tec_faults = tuple(runtime.of_type(TecFault))
        if tec_faults:
            old = phone.tec
            phone.tec = FaultyTEC(
                drive_power_w=old.drive_power_w, pump_w=old.pump_w,
                cold_node=old.cold_node, hot_node=old.hot_node,
                model=old.model, faults=tec_faults,
            )
        self._phone = phone
        self._taps = tap_map(runtime)
        self._supervisor = (Supervisor(self.config, runtime.log)
                            if self.supervise else None)
        self._pending_cmd = None
        self._last_clean_cpu = phone.ambient_c
        self.inner.on_cycle_start(trace, phone)

    # ------------------------------------------------------------------
    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        runtime = self._runtime
        assert runtime is not None and self._taps is not None
        runtime.observe(ctx.now_s, ctx.cpu_temp_c, ctx.soc_big, ctx.soc_little)

        # Corrupt what the controller reads...
        taps = self._taps
        raw = {
            "cpu_temp": taps["cpu_temp"].read(ctx.cpu_temp_c),
            "surface_temp": taps["surface_temp"].read(ctx.surface_temp_c),
            "soc_big": taps["soc_big"].read(ctx.soc_big),
            "soc_little": taps["soc_little"].read(ctx.soc_little),
        }
        sup = self._supervisor
        if sup is not None:
            # ...then sanity-check it on the way in.
            clean = sup.sanitize(ctx.now_s, raw)
        else:
            clean = raw
        self._last_clean_cpu = clean["cpu_temp"]

        if sup is not None:
            # Score last tick's switch request against the observed rail.
            if self._pending_cmd is not None:
                cmd, evt_base = self._pending_cmd
                sup.verify_switch(
                    ctx.active, cmd, self._commanded_depleted(cmd),
                    ctx.now_s,
                    committed=self._switch_committed(cmd, evt_base))
            # TEC health: commanded vs observed vs thermal trend.
            phone = self._phone
            if phone is not None and self.uses_tec:
                tec = phone.tec
                sup.verify_tec(getattr(tec, "commanded", tec.is_on),
                               tec.is_on, clean["cpu_temp"], ctx.now_s)
        self._pending_cmd = None

        shown = dataclasses.replace(
            ctx,
            cpu_temp_c=clean["cpu_temp"],
            surface_temp_c=clean["surface_temp"],
            soc_big=clean["soc_big"],
            soc_little=clean["soc_little"],
        )
        choice = self.inner.decide_battery(shown)

        if sup is not None and choice is not None and choice is not ctx.active:
            if sup.switch_locked and not sup.switch_probe_due(ctx.now_s):
                # Single-battery safe mode: hold the current rail.
                choice = None
        if choice is not None and choice is not ctx.active:
            pack = self._pack
            count = (pack.switch.switch_count
                     if isinstance(pack, BigLittlePack) else 0)
            self._pending_cmd = (choice, count)
        return choice

    def _commanded_depleted(self, target: BatterySelection) -> bool:
        pack = self._pack
        if isinstance(pack, BigLittlePack):
            return pack.cell_for(target).depleted
        return False

    def _switch_committed(self, target: BatterySelection, evt_base: int) -> bool:
        """Whether an event for ``target`` hit the log since the command."""
        pack = self._pack
        if isinstance(pack, BigLittlePack):
            return any(e.target is target
                       for e in pack.switch.events[evt_base:])
        return False

    # ------------------------------------------------------------------
    def filter_demand(self, demand: DemandSlice,
                      ctx: PolicyContext) -> DemandSlice:
        """Thermal fallback: throttle when the TEC is distrusted."""
        sup = self._supervisor
        if sup is None:
            return demand
        return sup.throttle(demand, self._last_clean_cpu)

    # ------------------------------------------------------------------
    def fault_report(self) -> Dict[str, object]:
        """Structured cycle report consumed by the discharge harness."""
        runtime = self._runtime
        sup = self._supervisor
        return {
            "events": runtime.log.events if runtime is not None else (),
            "mode": sup.mode if sup is not None else MODE_NORMAL,
            "mode_transitions": sup.mode_transitions if sup is not None else 0,
        }

    @property
    def supervisor(self) -> Optional[Supervisor]:
        """The live supervisor (None before a cycle starts)."""
        return self._supervisor

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Hand-picked payload: the base pickle-``__dict__`` default
        would drag live plant references (phone, pack) into the blob.

        Restoring assumes the harness has already run ``build_pack`` /
        ``on_cycle_start`` for this cycle, recreating the fault wiring
        the deterministic schedule implies; the load then overwrites
        the fresh runtime/supervisor/tap state in place.
        """
        pending = None
        if self._pending_cmd is not None:
            target, count = self._pending_cmd
            pending = (target.value, count)
        return pack_state(self, self._STATE_VERSION, {
            "inner": self.inner.state_dict(),
            "runtime": (self._runtime.state_dict()
                        if self._runtime is not None else None),
            "supervisor": (self._supervisor.state_dict()
                           if self._supervisor is not None else None),
            "taps": {ch: tap.state_dict()
                     for ch, tap in (self._taps or {}).items()},
            "pending_cmd": pending,
            "last_clean_cpu": self._last_clean_cpu,
        })

    def load_state_dict(self, state: dict) -> None:
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.inner.load_state_dict(payload["inner"])
        if payload["runtime"] is not None and self._runtime is not None:
            self._runtime.load_state_dict(payload["runtime"])
        if payload["supervisor"] is not None and self._supervisor is not None:
            self._supervisor.load_state_dict(payload["supervisor"])
        if self._taps:
            for ch, tap_state in payload["taps"].items():
                tap = self._taps.get(ch)
                if tap is not None:
                    tap.load_state_dict(tap_state)
        pending = payload["pending_cmd"]
        self._pending_cmd = (None if pending is None
                             else (BatterySelection(pending[0]), pending[1]))
        self._last_clean_cpu = payload["last_clean_cpu"]
