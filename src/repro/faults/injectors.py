"""Fault-capable wrappers for the physical components.

Each wrapper subclasses the real component and perturbs its behaviour
only while a fault is active; with no faults attached every wrapper is
bit-identical to the unwrapped component (tests pin this), so the
nominal scenario of a chaos grid pays nothing for the capability.

The wrappers model *hardware* faults -- the true physical state
diverges from what the controller commanded.  Sensor corruption is the
other half: :class:`SensorTap` corrupts what the controller *reads*.
The supervisor (:mod:`repro.faults.supervisor`) is what closes the
loop by detecting both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..battery.cell import Cell
from ..battery.switch import BatterySelection, BatterySwitch
from ..durability.state import pack_state, unpack_state
from ..thermal.tec import TECUnit
from .schedule import CellFault, FaultRuntime, SensorFault, SwitchFault, TecFault

__all__ = ["FaultyBatterySwitch", "FaultyTEC", "FaultyCell", "SensorTap"]


@dataclass
class FaultyBatterySwitch(BatterySwitch):
    """A :class:`BatterySwitch` whose requests can be dropped or slowed.

    Refused requests leave the event log, ``switch_count`` and
    ``energy_spent_j`` untouched -- a dropped request costs nothing,
    exactly like a dwell-guard refusal on the healthy switch.
    Contact-resistance growth raises ``switch_energy_j`` after each
    committed event, so later switches cost more.
    """

    faults: Tuple[FaultRuntime, ...] = ()

    #: Requests refused by an active fault (not by the dwell guard).
    dropped_requests: int = field(init=False, default=0, repr=False)

    def request(self, target: BatterySelection, now_s: float) -> bool:
        if target is self._active:
            return False
        growth = 0.0
        for rt in self.faults:
            spec = rt.spec
            if not isinstance(spec, SwitchFault) or not rt.active():
                continue
            if spec.stuck:
                self.dropped_requests += 1
                return False
            if spec.extra_dwell_s and (
                    now_s - self._last_switch_time
                    < self.min_dwell_s + spec.extra_dwell_s):
                self.dropped_requests += 1
                return False
            if spec.drop_probability and rt.rng.random() < spec.drop_probability:
                self.dropped_requests += 1
                return False
            growth += spec.contact_growth_j
        committed = super().request(target, now_s)
        if committed and growth:
            self.switch_energy_j += growth
        return committed

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["dropped_requests"] = self.dropped_requests
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.dropped_requests = state["dropped_requests"]


@dataclass
class FaultyTEC(TECUnit):
    """A :class:`TECUnit` that can die, stick on, or pump derated heat.

    ``commanded`` preserves the controller's intent so the supervisor
    can compare commanded vs. observed state; the physical ``is_on``
    reflects what the (possibly stuck) driver actually did.
    """

    faults: Tuple[FaultRuntime, ...] = ()

    _commanded: bool = field(init=False, default=False, repr=False)

    @property
    def commanded(self) -> bool:
        """The last commanded state (what the controller asked for)."""
        return self._commanded

    def set_on(self, on: bool) -> None:
        self._commanded = on
        for rt in self.faults:
            spec = rt.spec
            if not isinstance(spec, TecFault) or not rt.active():
                continue
            if spec.stuck_off:
                on = False
            elif spec.stuck_on:
                on = True
        super().set_on(on)

    def _derate(self) -> float:
        derate = 1.0
        for rt in self.faults:
            spec = rt.spec
            if isinstance(spec, TecFault) and spec.derate < 1.0 and rt.active():
                derate *= spec.derate
        return derate

    def heat_flows(self, dt: float, cold_temp_c: float, hot_temp_c: float):
        flows = super().heat_flows(dt, cold_temp_c, hot_temp_c)
        if not flows:
            return flows
        derate = self._derate()
        if derate == 1.0:
            return flows
        # The electrical draw is unchanged (the driver still burns its
        # watts); only the useful pumping shrinks.
        pumped = -flows[self.cold_node] * derate
        return {
            self.cold_node: -pumped,
            self.hot_node: pumped + self.drive_power_w,
        }

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["commanded"] = self._commanded
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._commanded = state["commanded"]


@dataclass
class FaultyCell(Cell):
    """A :class:`Cell` with an accelerated-aging anomaly attached.

    While a :class:`~repro.faults.schedule.CellFault` is active, a leak
    current drains the wells on top of the load and an exponential
    capacity fade shrinks both wells -- the stochastic degradation
    regime of the hybrid-automaton battery models.
    """

    faults: Tuple[FaultRuntime, ...] = ()

    def _step_wells(self, current_a: float, dt: float) -> None:
        if dt <= 0:
            return super()._step_wells(current_a, dt)
        leak = 0.0
        fade = 0.0
        for rt in self.faults:
            spec = rt.spec
            if isinstance(spec, CellFault) and rt.active():
                leak += spec.leak_a
                fade += spec.fade_per_s
        super()._step_wells(current_a + leak, dt)
        if fade > 0.0:
            scale = math.exp(-fade * dt)
            self._available *= scale
            self._bound *= scale


class SensorTap:
    """Corrupts one sensor channel on its way to the controller.

    Applies each active :class:`SensorFault` in spec order: bias and
    Gaussian noise are additive; a dropout holds the last value the
    tap reported (last-value-hold, the classic frozen-gauge failure);
    a NaN spike emits ``nan``.  With no active fault the tap is the
    identity function.
    """

    def __init__(self, channel: str, runtimes: Tuple[FaultRuntime, ...]) -> None:
        self.channel = channel
        self.runtimes = tuple(runtimes)
        self._held: Optional[float] = None

    def read(self, true_value: float) -> float:
        value = true_value
        for rt in self.runtimes:
            spec = rt.spec
            if not isinstance(spec, SensorFault) or not rt.active():
                continue
            if spec.dropout_probability and rt.rng.random() < spec.dropout_probability:
                return self._held if self._held is not None else value
            if spec.nan_probability and rt.rng.random() < spec.nan_probability:
                return float("nan")
            value += spec.bias
            if spec.noise_std:
                value += rt.rng.gauss(0.0, spec.noise_std)
        self._held = value
        return value

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """The last-value-hold register (RNG state lives with the
        fault runtimes, which are checkpointed by the schedule)."""
        return pack_state(self, self._STATE_VERSION, {"held": self._held})

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._held = payload["held"]


def tap_map(runtime, channels=("cpu_temp", "surface_temp", "soc_big", "soc_little")) -> Dict[str, SensorTap]:
    """One :class:`SensorTap` per controller-facing channel."""
    return {ch: SensorTap(ch, tuple(runtime.sensor_runtimes(ch))) for ch in channels}
