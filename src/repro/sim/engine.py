"""Simulation stepping machinery.

The control loop advances in fixed control steps (default 1 s, the
granularity at which CAPMAN consults its MDP), slicing workload
segments at step boundaries.  Segment boundaries carry the system-call
events that constitute MDP actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..device.syscalls import Syscall
from ..workload.base import Segment

__all__ = ["ControlStep", "iter_control_steps"]


@dataclass(frozen=True)
class ControlStep:
    """One slice of simulated time under a constant demand."""

    #: Simulation time at the start of the step (s).
    start_s: float
    #: Step length (s); the tail of a segment may be shorter.
    dt: float
    #: The active segment's demand.
    segment: Segment
    #: Set on the first step of a segment: the initiating system call.
    syscall: Optional[Syscall]
    #: True on the first step of each segment.
    segment_start: bool


def iter_control_steps(
    segments: Iterable[Segment],
    control_dt: float = 1.0,
    max_duration_s: Optional[float] = None,
) -> Iterator[ControlStep]:
    """Slice a segment stream into bounded control steps.

    Each segment is cut into ``control_dt`` pieces (final piece takes
    the remainder).  Iteration stops when the stream ends or
    ``max_duration_s`` is reached.
    """
    if control_dt <= 0:
        raise ValueError("control_dt must be positive")
    now = 0.0
    for segment in segments:
        remaining = segment.duration_s
        first = True
        while remaining > 1e-9:
            if max_duration_s is not None and now >= max_duration_s:
                return
            dt = min(control_dt, remaining)
            if max_duration_s is not None:
                dt = min(dt, max_duration_s - now)
            if dt <= 0:
                return
            yield ControlStep(
                start_s=now,
                dt=dt,
                segment=segment,
                syscall=segment.syscall if first else None,
                segment_start=first,
            )
            now += dt
            remaining -= dt
            first = False
