"""Simulation stepping machinery.

The control loop advances in fixed control steps (default 1 s, the
granularity at which CAPMAN consults its MDP), slicing workload
segments at step boundaries.  Segment boundaries carry the system-call
events that constitute MDP actions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..device.syscalls import Syscall
from ..workload.base import Segment

__all__ = ["ControlStep", "iter_control_steps"]


@dataclass(frozen=True)
class ControlStep:
    """One slice of simulated time under a constant demand."""

    #: Simulation time at the start of the step (s).
    start_s: float
    #: Step length (s); the tail of a segment may be shorter.
    dt: float
    #: The active segment's demand.
    segment: Segment
    #: Set on the first step of a segment: the initiating system call.
    syscall: Optional[Syscall]
    #: True on the first step of each segment.
    segment_start: bool


def iter_control_steps(
    segments: Iterable[Segment],
    control_dt: float = 1.0,
    max_duration_s: Optional[float] = None,
) -> Iterator[ControlStep]:
    """Slice a segment stream into bounded control steps.

    Each segment is cut into ``control_dt`` pieces (final piece takes
    the remainder).  Iteration stops when the stream ends or
    ``max_duration_s`` is reached.

    Step starts are computed as ``segment_base + k * control_dt`` and
    segment bases accumulate through a Neumaier-compensated sum, so
    day-long traces stay drift-free: the naive ``now += dt`` recurrence
    loses an ulp per step and eventually leaks a spurious ~1e-9 s step
    at a segment tail (e.g. one hour sliced at 0.1 s).
    """
    if control_dt <= 0:
        raise ValueError("control_dt must be positive")
    base = 0.0  # running sum of completed segment durations
    comp = 0.0  # Neumaier compensation term for ``base``
    for segment in segments:
        duration = segment.duration_s
        # Exact full-step count from the duration alone; the 1e-9 slack
        # absorbs quotients like 3600.0/0.1 that land just under an
        # integer.  Tails shorter than 1e-9 s are rounding residue, not
        # real steps.
        n_full = int(math.floor(duration / control_dt + 1e-9))
        tail = duration - n_full * control_dt
        if tail <= 1e-9:
            tail = 0.0
        start0 = base + comp
        first = True
        for k in range(n_full + (1 if tail else 0)):
            start = start0 + k * control_dt
            dt = control_dt if k < n_full else tail
            if max_duration_s is not None:
                if max_duration_s - start <= 1e-9:
                    return
                dt = min(dt, max_duration_s - start)
            yield ControlStep(
                start_s=start,
                dt=dt,
                segment=segment,
                syscall=segment.syscall if first else None,
                segment_start=first,
            )
            first = False
        t = base + duration
        if abs(base) >= abs(duration):
            comp += (base - t) + duration
        else:
            comp += (duration - t) + base
        base = t
