"""Chaos sweeps: cross fault scenarios with the evaluation grids.

The evaluation sweeps answer "which policy lasts longest when nothing
breaks".  A chaos sweep asks the production question: *how gracefully
does each policy degrade when the hardware misbehaves?*  It crosses a
set of named :class:`FaultScenario`\\ s with the usual policy x trace
grid (each policy wrapped in a
:class:`~repro.faults.supervisor.SupervisedPolicy`), runs the product
through the crash-proof :class:`~repro.sim.sweep.ScenarioRunner`, and
reports survival/degradation metrics per cell against the nominal
(fault-free) scenario: time-to-empty delta, thermal-violation seconds,
degraded-mode transitions and the structured fault-event counts.

Determinism: scenarios are seeded fault schedules, so a chaos grid is
exactly reproducible (and cacheable) like any other sweep.

This module also hosts the **backend chaos** harness
(:class:`BackendChaos` / :func:`run_backend_chaos`): where the fault
scenarios above break the *simulated hardware*, backend chaos breaks
the *sweep infrastructure itself* -- SIGKILLing distributed workers
mid-cell, partitioning the networked cache server, duplicate-
delivering leases -- and then audits the run journal to prove the
robustness contract: the final :class:`~repro.sim.sweep.SweepResult`
is byte-identical to a serial run, no cell is lost, and no cell is
committed twice.
"""

from __future__ import annotations

import math
import os
import signal as signal_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import obs
from ..device.profiles import NEXUS, PhoneProfile
from ..durability.journal import RunJournal
from ..faults.schedule import FaultSchedule, FaultTrigger, SensorFault, SwitchFault, TecFault
from ..workload.traces import Trace
from .discharge import DischargeResult, SchedulingPolicy
from .sweep import CellFailure, ScenarioRunner, SweepResult, SweepSpec

__all__ = [
    "FaultScenario",
    "NOMINAL_SCENARIO",
    "standard_scenarios",
    "ChaosSpec",
    "ChaosRow",
    "ChaosReport",
    "run_chaos",
    "BackendChaos",
    "BackendChaosReport",
    "run_backend_chaos",
    "journal_commit_counts",
    "journal_lease_grants",
]

#: Separator between policy and scenario in the sweep's policy keys.
_KEY_SEP = "@"


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded fault schedule -- one chaos-grid axis value."""

    name: str
    schedule: FaultSchedule

    def __post_init__(self) -> None:
        if _KEY_SEP in self.name:
            raise ValueError(f"scenario names must not contain {_KEY_SEP!r}")


#: The fault-free reference every chaos grid is scored against.
NOMINAL_SCENARIO = FaultScenario("nominal", FaultSchedule())


def standard_scenarios(start_s: float = 600.0, seed: int = 0) -> List[FaultScenario]:
    """The canonical chaos trio: stuck switch, dead TEC, dropped sensor.

    ``start_s`` delays each fault so the controller first reaches its
    learned steady state, making the degradation visible as a *delta*.
    """
    window = FaultTrigger(start_s=start_s)
    return [
        FaultScenario("switch-stuck", FaultSchedule(
            faults=(SwitchFault(trigger=window, stuck=True),),
            seed=seed, name="switch-stuck")),
        FaultScenario("tec-dead", FaultSchedule(
            faults=(TecFault(trigger=window, stuck_off=True),),
            seed=seed, name="tec-dead")),
        FaultScenario("sensor-dropout", FaultSchedule(
            faults=(
                SensorFault(channel="cpu_temp", trigger=window,
                            dropout_probability=0.7, nan_probability=0.1),
                SensorFault(channel="soc_little", trigger=window,
                            dropout_probability=0.5),
            ),
            seed=seed, name="sensor-dropout")),
    ]


@dataclass
class ChaosSpec:
    """A chaos grid: fault scenarios x policies x traces (x the rest).

    Thin declarative layer over :class:`~repro.sim.sweep.SweepSpec`:
    ``to_sweep`` wraps every policy in a supervised fault harness per
    scenario and mangles the policy axis to ``"<policy>@<scenario>"``.
    The nominal scenario is always included (it is the baseline the
    degradation deltas are computed against).
    """

    policies: Mapping[str, SchedulingPolicy]
    traces: Mapping[str, Trace]
    scenarios: Sequence[FaultScenario] = field(default_factory=standard_scenarios)
    profiles: Mapping[str, PhoneProfile] = field(
        default_factory=lambda: {"Nexus": NEXUS})
    control_dts: Sequence[float] = (2.0,)
    ambients_c: Sequence[float] = (25.0,)
    max_duration_s: float = 3.0 * 3600.0
    record_every: int = 1
    supervise: bool = True

    def all_scenarios(self) -> List[FaultScenario]:
        """The scenario axis with the nominal baseline prepended."""
        scenarios = list(self.scenarios)
        if not any(s.name == NOMINAL_SCENARIO.name for s in scenarios):
            scenarios.insert(0, NOMINAL_SCENARIO)
        return scenarios

    def to_sweep(self) -> SweepSpec:
        """The equivalent plain sweep over supervised policy wrappers."""
        # Imported lazily: supervisor -> sim.discharge -> this package.
        from ..faults.supervisor import SupervisedPolicy

        wrapped: Dict[str, SchedulingPolicy] = {}
        for scenario in self.all_scenarios():
            for key, policy in self.policies.items():
                wrapped[f"{key}{_KEY_SEP}{scenario.name}"] = SupervisedPolicy(
                    inner=policy,
                    schedule=scenario.schedule,
                    supervise=self.supervise,
                    name=f"{policy.name}{_KEY_SEP}{scenario.name}",
                )
        return SweepSpec(
            policies=wrapped,
            traces=dict(self.traces),
            profiles=dict(self.profiles),
            control_dts=tuple(self.control_dts),
            ambients_c=tuple(self.ambients_c),
            kind="discharge",
            max_duration_s=self.max_duration_s,
            record_every=self.record_every,
        )


@dataclass(frozen=True)
class ChaosRow:
    """Survival/degradation metrics for one (policy, trace, scenario)."""

    policy: str
    trace: str
    scenario: str
    #: The cell produced a result (its worker survived and nothing raised).
    survived: bool
    service_time_s: float
    #: Time-to-empty delta vs. the nominal scenario (negative = lost life).
    service_delta_s: float
    time_above_threshold_s: float
    #: Thermal-violation delta vs. nominal (positive = ran hotter).
    thermal_delta_s: float
    switch_count: int
    mode_transitions: int
    fault_event_count: int
    final_mode: str
    #: Failure description for non-survivors ("" otherwise).
    error: str = ""


@dataclass
class ChaosReport:
    """All chaos rows plus the underlying sweep result."""

    rows: List[ChaosRow]
    sweep: SweepResult
    #: Observability blob of the underlying sweep (None unless obs is
    #: enabled); out-of-band of the report, excluded from equality.
    telemetry: Optional[obs.RunTelemetry] = field(
        default=None, repr=False, compare=False)

    def row(self, policy: str, trace: str, scenario: str) -> ChaosRow:
        """The unique row for one grid point."""
        for r in self.rows:
            if (r.policy, r.trace, r.scenario) == (policy, trace, scenario):
                return r
        raise KeyError(f"no chaos row for {(policy, trace, scenario)}")

    def by_scenario(self, scenario: str) -> List[ChaosRow]:
        """All rows of one fault scenario."""
        return [r for r in self.rows if r.scenario == scenario]

    @property
    def survival_rate(self) -> float:
        """Fraction of grid cells that produced a result."""
        if not self.rows:
            return 0.0
        return sum(1 for r in self.rows if r.survived) / len(self.rows)

    def summary(self) -> str:
        """A human-readable table of the grid."""
        header = (f"{'policy':<12} {'trace':<10} {'scenario':<16} "
                  f"{'svc[s]':>8} {'dsvc[s]':>9} {'hot[s]':>7} "
                  f"{'modes':>5} {'events':>6}  mode")
        lines = [header, "-" * len(header)]
        for r in self.rows:
            if not r.survived:
                lines.append(
                    f"{r.policy:<12} {r.trace:<10} {r.scenario:<16} "
                    f"{'FAILED':>8}  {r.error}")
                continue
            delta = ("" if math.isnan(r.service_delta_s)
                     else f"{r.service_delta_s:+9.0f}")
            lines.append(
                f"{r.policy:<12} {r.trace:<10} {r.scenario:<16} "
                f"{r.service_time_s:8.0f} {delta:>9} "
                f"{r.time_above_threshold_s:7.1f} "
                f"{r.mode_transitions:5d} {r.fault_event_count:6d}  "
                f"{r.final_mode}")
        return "\n".join(lines)


def run_chaos(spec: ChaosSpec,
              runner: Optional[ScenarioRunner] = None) -> ChaosReport:
    """Execute a chaos grid and score it against the nominal scenario."""
    runner = runner or ScenarioRunner(workers=1)
    sweep = runner.run(spec.to_sweep())

    # First pass: index the nominal baselines.
    nominal: Dict[Tuple[str, str, str, float, float], DischargeResult] = {}
    for cell, outcome in sweep:
        policy, scenario = cell.policy_key.split(_KEY_SEP, 1)
        if scenario == NOMINAL_SCENARIO.name and not isinstance(outcome, CellFailure):
            nominal[(policy, cell.trace_key, cell.profile_key,
                     cell.control_dt, cell.ambient_c)] = outcome

    rows: List[ChaosRow] = []
    for cell, outcome in sweep:
        policy, scenario = cell.policy_key.split(_KEY_SEP, 1)
        base = nominal.get((policy, cell.trace_key, cell.profile_key,
                            cell.control_dt, cell.ambient_c))
        if isinstance(outcome, CellFailure):
            rows.append(ChaosRow(
                policy=policy, trace=cell.trace_key, scenario=scenario,
                survived=False, service_time_s=float("nan"),
                service_delta_s=float("nan"),
                time_above_threshold_s=float("nan"),
                thermal_delta_s=float("nan"), switch_count=0,
                mode_transitions=0, fault_event_count=0,
                final_mode="unknown", error=str(outcome)))
            continue
        result: DischargeResult = outcome
        delta = (result.service_time_s - base.service_time_s
                 if base is not None else float("nan"))
        thermal_delta = (result.time_above_threshold_s
                         - base.time_above_threshold_s
                         if base is not None else float("nan"))
        rows.append(ChaosRow(
            policy=policy, trace=cell.trace_key, scenario=scenario,
            survived=True,
            service_time_s=result.service_time_s,
            service_delta_s=delta,
            time_above_threshold_s=result.time_above_threshold_s,
            thermal_delta_s=thermal_delta,
            switch_count=result.switch_count,
            mode_transitions=result.mode_transitions,
            fault_event_count=len(result.fault_events),
            final_mode=result.final_mode,
        ))
    return ChaosReport(rows=rows, sweep=sweep, telemetry=sweep.telemetry)


# ----------------------------------------------------------------------
# Backend chaos: break the infrastructure, audit the contract
# ----------------------------------------------------------------------
@dataclass
class BackendChaos:
    """Fault plan for one distributed sweep's *infrastructure*.

    All timings are relative to the start of the chaotic run.  The
    harness injects exactly this plan -- nothing is randomised -- so a
    chaos run is as reproducible as any other test.
    """

    #: SIGKILL this many of the executor's spawned workers (oldest
    #: first), ``kill_interval_s`` apart starting at ``kill_after_s``.
    kill_workers: int = 0
    kill_after_s: float = 0.3
    kill_interval_s: float = 0.3
    #: Partition the cache server this long in (None = never).
    partition_cache_after_s: Optional[float] = None
    #: Heal it this long in (None = stays partitioned to the end).
    heal_cache_after_s: Optional[float] = None
    #: Duplicate-deliver this many leases (idempotent-commit check).
    duplicate_leases: int = 0


@dataclass
class BackendChaosReport:
    """What the chaotic run produced, plus the audited invariants."""

    result: SweepResult
    #: Worker PIDs the harness actually SIGKILLed.
    killed_pids: List[int] = field(default_factory=list)
    #: Whether the cache server was partitioned (and healed) on plan.
    cache_partitioned: bool = False
    cache_healed: bool = False
    #: Lease duplications injected into the coordinator.
    duplicated_leases: int = 0
    #: Result slots holding a CellFailure -- for a grid whose cells all
    #: succeed deterministically, any entry here is a cell the
    #: infrastructure lost.
    lost_cells: int = 0
    #: Journal indices with more than one cell_commit record (must be
    #: zero: the coordinator's first-commit-wins dedupe guarantees it).
    double_commits: int = 0
    #: Coordinator counters (lease expiries, steals, retries, ...).
    dist_stats: Dict[str, float] = field(default_factory=dict)


def journal_commit_counts(path: Union[str, Path]) -> Dict[int, int]:
    """``cell_commit`` records per cell index in a run journal.

    The durability contract says every value is exactly 1 for a
    completed sweep -- chaos (duplicate leases, stolen work, worker
    loss) must never produce a second commit for the same cell.
    """
    counts: Dict[int, int] = {}
    for record in RunJournal.replay(path, recover=False):
        if record["type"] != "cell_commit":
            continue
        index = int(record["data"]["index"])
        counts[index] = counts.get(index, 0) + 1
    return counts


def journal_lease_grants(path: Union[str, Path],
                         include_duplicates: bool = False) -> Dict[int, int]:
    """``lease_grant`` records per cell index in a run journal.

    The distributed coordinator journals every grant before the lease
    leaves the process, so a grant count exceeding the commit count
    for an index is exactly the dispatch state a restarted coordinator
    must reclaim.  Steal/duplicate grants are flagged in the record
    and excluded by default -- they do not charge the cell's failure
    budget on recovery.
    """
    counts: Dict[int, int] = {}
    for record in RunJournal.replay(path, recover=False):
        if record["type"] != "lease_grant":
            continue
        data = record["data"]
        if data.get("duplicate", False) and not include_duplicates:
            continue
        index = int(data["index"])
        counts[index] = counts.get(index, 0) + 1
    return counts


class _BackendChaosMonkey(threading.Thread):
    """Executes a :class:`BackendChaos` plan against a live sweep."""

    def __init__(self, chaos: BackendChaos, executor: Any,
                 cache_server: Any = None) -> None:
        super().__init__(name="backend-chaos", daemon=True)
        self.chaos = chaos
        self.executor = executor
        self.cache_server = cache_server
        self.killed_pids: List[int] = []
        self.cache_partitioned = False
        self.cache_healed = False
        # Named _halt: threading.Thread owns a private _stop() method.
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)

    def run(self) -> None:
        chaos = self.chaos
        started = time.monotonic()
        kills_left = chaos.kill_workers
        next_kill = started + chaos.kill_after_s
        partition_at = (started + chaos.partition_cache_after_s
                        if chaos.partition_cache_after_s is not None
                        else None)
        heal_at = (started + chaos.heal_cache_after_s
                   if chaos.heal_cache_after_s is not None else None)
        while not self._halt.wait(0.02):
            now = time.monotonic()
            if kills_left > 0 and now >= next_kill:
                if self._kill_one_worker():
                    kills_left -= 1
                    next_kill = now + chaos.kill_interval_s
                # No live worker yet: retry on the next tick.
            if (partition_at is not None and now >= partition_at
                    and not self.cache_partitioned
                    and self.cache_server is not None):
                self.cache_server.partition()
                self.cache_partitioned = True
            if (heal_at is not None and now >= heal_at
                    and self.cache_partitioned and not self.cache_healed):
                self.cache_server.heal()
                self.cache_healed = True
            if (kills_left == 0 and (partition_at is None
                                     or self.cache_partitioned)
                    and (heal_at is None or self.cache_healed)):
                return  # plan fully delivered

    def _kill_one_worker(self) -> bool:
        pids = self.executor.worker_pids()
        if not pids:
            return False
        beat = self.executor.heartbeat()
        if beat.workers == 0 or beat.in_flight == 0:
            # Nobody has attached / nothing is leased yet: killing now
            # would miss the interesting window.  Wait for work to be
            # genuinely in flight so the SIGKILL lands mid-cell.
            return False
        pid = pids[0]
        try:
            os.kill(pid, signal_module.SIGKILL)
        except OSError:
            return False
        self.killed_pids.append(pid)
        return True


def run_backend_chaos(spec: SweepSpec, runner: ScenarioRunner,
                      chaos: BackendChaos,
                      cache_server: Any = None) -> BackendChaosReport:
    """Run one sweep while sabotaging its infrastructure on plan.

    ``runner`` must use a
    :class:`~repro.sim.distributed.DistributedExecutor` (worker kills
    and lease duplication act on it); ``cache_server`` is only needed
    when the plan partitions the cache.  Returns the sweep result plus
    the audited invariants -- callers assert ``lost_cells == 0``,
    ``double_commits == 0`` and byte-equality against a serial run.
    """
    executor = runner.executor
    if executor is None or not hasattr(executor, "worker_pids"):
        raise ValueError(
            "run_backend_chaos needs a runner with a DistributedExecutor")
    if chaos.duplicate_leases:
        executor.inject_duplicate_leases(chaos.duplicate_leases)
    monkey = _BackendChaosMonkey(chaos, executor, cache_server)
    monkey.start()
    try:
        result = runner.run_or_resume(spec)
    finally:
        monkey.stop()

    report = BackendChaosReport(
        result=result,
        killed_pids=list(monkey.killed_pids),
        cache_partitioned=monkey.cache_partitioned,
        cache_healed=monkey.cache_healed,
        duplicated_leases=chaos.duplicate_leases,
        lost_cells=sum(1 for r in result.results
                       if isinstance(r, CellFailure)),
        dist_stats=dict(executor.stats.as_dict()),
    )
    if runner.journal is not None and runner.journal.exists():
        counts = journal_commit_counts(runner.journal)
        report.double_commits = sum(1 for c in counts.values() if c > 1)
    return report
