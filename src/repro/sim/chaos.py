"""Chaos sweeps: cross fault scenarios with the evaluation grids.

The evaluation sweeps answer "which policy lasts longest when nothing
breaks".  A chaos sweep asks the production question: *how gracefully
does each policy degrade when the hardware misbehaves?*  It crosses a
set of named :class:`FaultScenario`\\ s with the usual policy x trace
grid (each policy wrapped in a
:class:`~repro.faults.supervisor.SupervisedPolicy`), runs the product
through the crash-proof :class:`~repro.sim.sweep.ScenarioRunner`, and
reports survival/degradation metrics per cell against the nominal
(fault-free) scenario: time-to-empty delta, thermal-violation seconds,
degraded-mode transitions and the structured fault-event counts.

Determinism: scenarios are seeded fault schedules, so a chaos grid is
exactly reproducible (and cacheable) like any other sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..device.profiles import NEXUS, PhoneProfile
from ..faults.schedule import FaultSchedule, FaultTrigger, SensorFault, SwitchFault, TecFault
from ..workload.traces import Trace
from .discharge import DischargeResult, SchedulingPolicy
from .sweep import CellFailure, ScenarioRunner, SweepResult, SweepSpec

__all__ = [
    "FaultScenario",
    "NOMINAL_SCENARIO",
    "standard_scenarios",
    "ChaosSpec",
    "ChaosRow",
    "ChaosReport",
    "run_chaos",
]

#: Separator between policy and scenario in the sweep's policy keys.
_KEY_SEP = "@"


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded fault schedule -- one chaos-grid axis value."""

    name: str
    schedule: FaultSchedule

    def __post_init__(self) -> None:
        if _KEY_SEP in self.name:
            raise ValueError(f"scenario names must not contain {_KEY_SEP!r}")


#: The fault-free reference every chaos grid is scored against.
NOMINAL_SCENARIO = FaultScenario("nominal", FaultSchedule())


def standard_scenarios(start_s: float = 600.0, seed: int = 0) -> List[FaultScenario]:
    """The canonical chaos trio: stuck switch, dead TEC, dropped sensor.

    ``start_s`` delays each fault so the controller first reaches its
    learned steady state, making the degradation visible as a *delta*.
    """
    window = FaultTrigger(start_s=start_s)
    return [
        FaultScenario("switch-stuck", FaultSchedule(
            faults=(SwitchFault(trigger=window, stuck=True),),
            seed=seed, name="switch-stuck")),
        FaultScenario("tec-dead", FaultSchedule(
            faults=(TecFault(trigger=window, stuck_off=True),),
            seed=seed, name="tec-dead")),
        FaultScenario("sensor-dropout", FaultSchedule(
            faults=(
                SensorFault(channel="cpu_temp", trigger=window,
                            dropout_probability=0.7, nan_probability=0.1),
                SensorFault(channel="soc_little", trigger=window,
                            dropout_probability=0.5),
            ),
            seed=seed, name="sensor-dropout")),
    ]


@dataclass
class ChaosSpec:
    """A chaos grid: fault scenarios x policies x traces (x the rest).

    Thin declarative layer over :class:`~repro.sim.sweep.SweepSpec`:
    ``to_sweep`` wraps every policy in a supervised fault harness per
    scenario and mangles the policy axis to ``"<policy>@<scenario>"``.
    The nominal scenario is always included (it is the baseline the
    degradation deltas are computed against).
    """

    policies: Mapping[str, SchedulingPolicy]
    traces: Mapping[str, Trace]
    scenarios: Sequence[FaultScenario] = field(default_factory=standard_scenarios)
    profiles: Mapping[str, PhoneProfile] = field(
        default_factory=lambda: {"Nexus": NEXUS})
    control_dts: Sequence[float] = (2.0,)
    ambients_c: Sequence[float] = (25.0,)
    max_duration_s: float = 3.0 * 3600.0
    record_every: int = 1
    supervise: bool = True

    def all_scenarios(self) -> List[FaultScenario]:
        """The scenario axis with the nominal baseline prepended."""
        scenarios = list(self.scenarios)
        if not any(s.name == NOMINAL_SCENARIO.name for s in scenarios):
            scenarios.insert(0, NOMINAL_SCENARIO)
        return scenarios

    def to_sweep(self) -> SweepSpec:
        """The equivalent plain sweep over supervised policy wrappers."""
        # Imported lazily: supervisor -> sim.discharge -> this package.
        from ..faults.supervisor import SupervisedPolicy

        wrapped: Dict[str, SchedulingPolicy] = {}
        for scenario in self.all_scenarios():
            for key, policy in self.policies.items():
                wrapped[f"{key}{_KEY_SEP}{scenario.name}"] = SupervisedPolicy(
                    inner=policy,
                    schedule=scenario.schedule,
                    supervise=self.supervise,
                    name=f"{policy.name}{_KEY_SEP}{scenario.name}",
                )
        return SweepSpec(
            policies=wrapped,
            traces=dict(self.traces),
            profiles=dict(self.profiles),
            control_dts=tuple(self.control_dts),
            ambients_c=tuple(self.ambients_c),
            kind="discharge",
            max_duration_s=self.max_duration_s,
            record_every=self.record_every,
        )


@dataclass(frozen=True)
class ChaosRow:
    """Survival/degradation metrics for one (policy, trace, scenario)."""

    policy: str
    trace: str
    scenario: str
    #: The cell produced a result (its worker survived and nothing raised).
    survived: bool
    service_time_s: float
    #: Time-to-empty delta vs. the nominal scenario (negative = lost life).
    service_delta_s: float
    time_above_threshold_s: float
    #: Thermal-violation delta vs. nominal (positive = ran hotter).
    thermal_delta_s: float
    switch_count: int
    mode_transitions: int
    fault_event_count: int
    final_mode: str
    #: Failure description for non-survivors ("" otherwise).
    error: str = ""


@dataclass
class ChaosReport:
    """All chaos rows plus the underlying sweep result."""

    rows: List[ChaosRow]
    sweep: SweepResult
    #: Observability blob of the underlying sweep (None unless obs is
    #: enabled); out-of-band of the report, excluded from equality.
    telemetry: Optional[obs.RunTelemetry] = field(
        default=None, repr=False, compare=False)

    def row(self, policy: str, trace: str, scenario: str) -> ChaosRow:
        """The unique row for one grid point."""
        for r in self.rows:
            if (r.policy, r.trace, r.scenario) == (policy, trace, scenario):
                return r
        raise KeyError(f"no chaos row for {(policy, trace, scenario)}")

    def by_scenario(self, scenario: str) -> List[ChaosRow]:
        """All rows of one fault scenario."""
        return [r for r in self.rows if r.scenario == scenario]

    @property
    def survival_rate(self) -> float:
        """Fraction of grid cells that produced a result."""
        if not self.rows:
            return 0.0
        return sum(1 for r in self.rows if r.survived) / len(self.rows)

    def summary(self) -> str:
        """A human-readable table of the grid."""
        header = (f"{'policy':<12} {'trace':<10} {'scenario':<16} "
                  f"{'svc[s]':>8} {'dsvc[s]':>9} {'hot[s]':>7} "
                  f"{'modes':>5} {'events':>6}  mode")
        lines = [header, "-" * len(header)]
        for r in self.rows:
            if not r.survived:
                lines.append(
                    f"{r.policy:<12} {r.trace:<10} {r.scenario:<16} "
                    f"{'FAILED':>8}  {r.error}")
                continue
            delta = ("" if math.isnan(r.service_delta_s)
                     else f"{r.service_delta_s:+9.0f}")
            lines.append(
                f"{r.policy:<12} {r.trace:<10} {r.scenario:<16} "
                f"{r.service_time_s:8.0f} {delta:>9} "
                f"{r.time_above_threshold_s:7.1f} "
                f"{r.mode_transitions:5d} {r.fault_event_count:6d}  "
                f"{r.final_mode}")
        return "\n".join(lines)


def run_chaos(spec: ChaosSpec,
              runner: Optional[ScenarioRunner] = None) -> ChaosReport:
    """Execute a chaos grid and score it against the nominal scenario."""
    runner = runner or ScenarioRunner(workers=1)
    sweep = runner.run(spec.to_sweep())

    # First pass: index the nominal baselines.
    nominal: Dict[Tuple[str, str, str, float, float], DischargeResult] = {}
    for cell, outcome in sweep:
        policy, scenario = cell.policy_key.split(_KEY_SEP, 1)
        if scenario == NOMINAL_SCENARIO.name and not isinstance(outcome, CellFailure):
            nominal[(policy, cell.trace_key, cell.profile_key,
                     cell.control_dt, cell.ambient_c)] = outcome

    rows: List[ChaosRow] = []
    for cell, outcome in sweep:
        policy, scenario = cell.policy_key.split(_KEY_SEP, 1)
        base = nominal.get((policy, cell.trace_key, cell.profile_key,
                            cell.control_dt, cell.ambient_c))
        if isinstance(outcome, CellFailure):
            rows.append(ChaosRow(
                policy=policy, trace=cell.trace_key, scenario=scenario,
                survived=False, service_time_s=float("nan"),
                service_delta_s=float("nan"),
                time_above_threshold_s=float("nan"),
                thermal_delta_s=float("nan"), switch_count=0,
                mode_transitions=0, fault_event_count=0,
                final_mode="unknown", error=str(outcome)))
            continue
        result: DischargeResult = outcome
        delta = (result.service_time_s - base.service_time_s
                 if base is not None else float("nan"))
        thermal_delta = (result.time_above_threshold_s
                         - base.time_above_threshold_s
                         if base is not None else float("nan"))
        rows.append(ChaosRow(
            policy=policy, trace=cell.trace_key, scenario=scenario,
            survived=True,
            service_time_s=result.service_time_s,
            service_delta_s=delta,
            time_above_threshold_s=result.time_above_threshold_s,
            thermal_delta_s=thermal_delta,
            switch_count=result.switch_count,
            mode_transitions=result.mode_transitions,
            fault_event_count=len(result.fault_events),
            final_mode=result.final_mode,
        ))
    return ChaosReport(rows=rows, sweep=sweep, telemetry=sweep.telemetry)
