"""Networked sweep-result cache: a TCP server plus a partition-tolerant client.

A fleet of sweep runners (or distributed workers on several hosts)
can share one result cache instead of each keeping its own directory.
The moving parts:

* :class:`CacheServer` serves content-hash ``get``/``put`` over the
  same checksummed frame protocol as the distributed sweep
  coordinator.  Storage is an ordinary :class:`~repro.sim.sweep.SweepCache`
  directory -- atomic write-to-temp-and-rename under the advisory
  file lock, unpickle-validated reads -- so a server crash mid-``put``
  can tear at most a temp file, never a served entry, and the
  directory stays interchangeable with a local cache.
* :class:`NetworkSweepCache` is a drop-in :class:`~repro.sim.sweep.SweepCache`
  subclass: ``ScenarioRunner(cache=NetworkSweepCache(...))`` works
  unchanged.  Every remote failure -- refused connection, timeout,
  torn frame -- flips the client into **partition mode**: reads and
  writes fall back to a local cache directory, writes are remembered,
  and a periodic probe looks for the server.  On heal the client
  **reconciles**: the puts accumulated during the partition are
  replayed to the server, then remote operation resumes.  A sweep
  never fails, blocks, or loses results because the cache network is
  down; at worst it recomputes what the unreachable server knew.

Why stale reads are safe here: cache keys are content hashes of
(cell configuration, code salt), so a key maps to exactly one value
forever.  A "stale" entry is byte-for-byte the correct entry; the
only staleness possible is a *miss* that a fresher server would have
hit, and a miss just means recomputing -- correctness never depends
on cache freshness.

Like the distributed coordinator, the server rides on the shared
:class:`~repro.sim.distributed.FrameServer` shell: frames are
checksummed, HMAC-authenticated when ``CAPMAN_DIST_SECRET`` is set,
size-bounded, and subject to read deadlines and per-connection
admission control.
"""

from __future__ import annotations

import pickle
import socket
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, Union

from .. import obs
from .distributed import FrameServer, ProtocolError, rpc, send_msg
from .retry import CircuitBreaker, RetryPolicy
from .sweep import SweepCache

__all__ = [
    "CacheServer",
    "CacheServerStats",
    "NetworkSweepCache",
    "CacheClientStats",
]


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
@dataclass
class CacheServerStats:
    gets: int = 0
    hits: int = 0
    puts: int = 0
    #: Requests deliberately dropped while chaos-partitioned.
    partitioned_drops: int = 0
    #: Replies deliberately truncated mid-frame (chaos).
    torn_replies: int = 0
    bad_requests: int = 0


class CacheServer:
    """Serve one cache directory over TCP.

    Protocol (one request/response per connection):

    ==============  ====================================================
    request          response
    ==============  ====================================================
    ``cache_ping``  ``{ok: True}``
    ``cache_get``   ``{hit: bool, payload: bytes | None}``
    ``cache_put``   ``{ok: True}``
    ``cache_stats`` counters snapshot
    ==============  ====================================================

    Values travel as pickled payload bytes inside checksummed frames;
    at rest they are exactly the files a local
    :class:`~repro.sim.sweep.SweepCache` writes, so the served
    directory can be copied, inspected, or mounted directly by a
    local-cache runner.

    Chaos hooks (used by the fault-injection tests):

    * :meth:`partition` / :meth:`heal` -- while partitioned, every
      accepted connection is closed without a reply, exactly what a
      dropped network looks like to the client;
    * :meth:`inject_torn_replies` -- the next *n* replies are
      truncated mid-frame, exercising the client's checksum path.
    """

    def __init__(self, directory: Union[str, Path],
                 host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64,
                 read_deadline_s: float = 10.0) -> None:
        self.store = SweepCache(directory)
        self.host = host
        self.port = port
        self.stats = CacheServerStats()
        self._lock = threading.Lock()
        self._partitioned = threading.Event()
        self._torn_replies = 0
        self._frames = FrameServer(
            handler=self._handler, host=host, port=port,
            name="cache-server", max_connections=max_connections,
            read_deadline_s=read_deadline_s,
            gate=self._gate, sender=self._send_reply)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        self.host, self.port = self._frames.start()
        return self.host, self.port

    def stop(self) -> None:
        self._frames.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def frame_stats(self):
        """Hostile-peer counters of the underlying frame server."""
        return self._frames.stats

    # -- chaos hooks ---------------------------------------------------
    def partition(self) -> None:
        """Drop every request until :meth:`heal` (keeps listening, so
        clients see resets/timeouts rather than instant refusals)."""
        self._partitioned.set()

    def heal(self) -> None:
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def inject_torn_replies(self, n: int) -> None:
        """Truncate the next ``n`` replies mid-frame (torn write on
        the wire; the client's frame checksum must catch it)."""
        with self._lock:
            self._torn_replies += int(n)

    # -- plumbing ------------------------------------------------------
    def _gate(self, conn: socket.socket) -> bool:
        if self._partitioned.is_set():
            self.stats.partitioned_drops += 1
            return False  # close without replying: the partition
        return True

    def _handler(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            return self._dispatch(message)
        except Exception:
            # A structurally valid frame carrying a broken request
            # (unpicklable payload, wrong field types) is the sender's
            # problem; never crash the handler thread.
            self.stats.bad_requests += 1
            return {"op": "error", "error": "bad request"}

    def _send_reply(self, conn: socket.socket,
                    reply: Dict[str, Any]) -> None:
        with self._lock:
            tear = self._torn_replies > 0
            if tear:
                self._torn_replies -= 1
        if not tear:
            send_msg(conn, reply, secret=self._frames.secret or b"")
            return
        # Emit a deliberately torn frame: a valid header whose payload
        # stops halfway.  The checksum (or the cut itself) must make
        # the client treat this as corruption, never as data.
        import hashlib
        import struct
        payload = pickle.dumps(reply, protocol=4)
        digest = hashlib.sha256(payload).digest()[:8]
        header = struct.Struct(">3sI8s").pack(b"CD1", len(payload), digest)
        conn.sendall(header + payload[: max(1, len(payload) // 2)])
        self.stats.torn_replies += 1

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "cache_ping":
            return {"op": "ok", "ok": True}
        if op == "cache_get":
            self.stats.gets += 1
            value = self.store.get(str(message["key"]))
            if value is None:
                return {"op": "ok", "hit": False, "payload": None}
            self.stats.hits += 1
            return {"op": "ok", "hit": True,
                    "payload": pickle.dumps(value, protocol=4)}
        if op == "cache_put":
            value = pickle.loads(message["payload"])
            self.store.put(str(message["key"]), value)
            self.stats.puts += 1
            return {"op": "ok", "ok": True}
        if op == "cache_stats":
            return {"op": "ok", "entries": len(self.store),
                    "gets": self.stats.gets, "hits": self.stats.hits,
                    "puts": self.stats.puts}
        self.stats.bad_requests += 1
        return {"op": "error", "error": f"unknown op {op!r}"}


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
@dataclass
class CacheClientStats:
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0
    #: Operations served by the local fallback directory.
    fallback_gets: int = 0
    fallback_puts: int = 0
    #: Remote failures that flipped the client into partition mode.
    partitions_detected: int = 0
    #: Successful probes that flipped it back.
    heals: int = 0
    #: Locally-buffered puts replayed to the server on heal.
    reconciled_puts: int = 0
    #: Remote ops refused instantly by the open circuit breaker
    #: (served locally without burning a connection timeout).
    breaker_short_circuits: int = 0


class NetworkSweepCache(SweepCache):
    """A :class:`~repro.sim.sweep.SweepCache` backed by a
    :class:`CacheServer`, degrading to a local directory under
    partition.

    Drop-in for any ``cache=`` argument (it *is* a ``SweepCache``);
    the inherited directory doubles as the local fallback store and
    the reconciliation buffer.

    Failure handling is one-way-door-free: remote errors feed a
    :class:`~repro.sim.retry.CircuitBreaker` and every operation
    completes locally while it is open.  ``failure_threshold``
    consecutive failures trip the circuit (default 1: the first
    failure flips the client into partition mode, the historic
    behaviour); while open, remote calls are refused instantly —
    no per-cell connection timeouts — until one half-open probe per
    ``probe_interval_s`` checks the server.  A successful probe
    replays the locally buffered puts and resumes remote operation.
    :meth:`flush` forces a final probe-and-reconcile, e.g. at the end
    of a sweep.  Breaker transitions surface as
    ``dist.cache_breaker_*`` obs counters when a session is live.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        directory: Union[str, Path],
        rpc_timeout_s: float = 5.0,
        probe_interval_s: float = 0.5,
        retry: Optional[RetryPolicy] = None,
        failure_threshold: int = 1,
    ) -> None:
        super().__init__(directory)
        self.address = (str(address[0]), int(address[1]))
        self.rpc_timeout_s = rpc_timeout_s
        self.probe_interval_s = probe_interval_s
        #: In-line retry schedule for one remote op before the failure
        #: counts against the breaker (default: one quick second
        #: chance).
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=2, backoff_base_s=0.05, backoff_max_s=0.2)
        self.breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                      reset_timeout_s=probe_interval_s)
        self.stats = CacheClientStats()
        self._mutex = threading.Lock()
        self._pending: Set[str] = set()

    # -- breaker bookkeeping -------------------------------------------
    @property
    def partitioned(self) -> bool:
        return not self.breaker.closed

    @staticmethod
    def _obs_inc(name: str) -> None:
        ob = obs.session()
        if ob is not None:
            ob.registry.counter(name).inc()

    def _record_remote_failure(self) -> None:
        trips_before = self.breaker.stats.trips
        self.breaker.record_failure()
        if self.breaker.stats.trips > trips_before:
            self.stats.partitions_detected += 1
            self._obs_inc("dist.cache_breaker_trips")

    def _record_remote_success(self) -> None:
        closes_before = self.breaker.stats.closes
        self.breaker.record_success()
        if self.breaker.stats.closes > closes_before:
            self.stats.heals += 1
            self._obs_inc("dist.cache_breaker_heals")

    def _admit(self) -> bool:
        """May a remote op be issued now?

        Open circuit: refuse instantly (the caller serves locally).
        Half-open: the breaker lets exactly one call through, and we
        spend it on :meth:`_probe_and_heal` so the buffered puts are
        reconciled before normal remote traffic resumes.
        """
        was_closed = self.breaker.closed
        if not self.breaker.allow():
            self.stats.breaker_short_circuits += 1
            self._obs_inc("dist.cache_breaker_shortcircuits")
            return False
        if was_closed:
            return True
        return self._probe_and_heal()

    def _rpc(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One remote op with quick in-line retries; None on failure."""
        attempts = 0
        while True:
            try:
                return rpc(self.address, message,
                           timeout_s=self.rpc_timeout_s)
            except (ConnectionError, OSError, ProtocolError,
                    pickle.UnpicklingError):
                attempts += 1
                if not self.retry.allows(attempts):
                    return None
                self.retry.sleep(attempts, token=message.get("op", ""))

    def _probe_and_heal(self) -> bool:
        """Try the server; on success replay buffered puts. True if up."""
        reply = self._rpc({"op": "cache_ping"})
        if reply is None:
            self._record_remote_failure()
            return False
        with self._mutex:
            pending = sorted(self._pending)
        for key in pending:
            value = super().get(key)
            if value is None:
                continue  # local entry lost/corrupt: nothing to replay
            reply = self._rpc({
                "op": "cache_put", "key": key,
                "payload": pickle.dumps(value, protocol=4)})
            if reply is None:
                self._record_remote_failure()
                return False  # partition is back; keep the buffer
            with self._mutex:
                self._pending.discard(key)
            self.stats.reconciled_puts += 1
        self._record_remote_success()
        return True

    def flush(self) -> bool:
        """Force a probe + reconcile now (bypassing the breaker's
        reset window); True when the server is reachable and the
        buffer is empty."""
        ok = self._probe_and_heal()
        with self._mutex:
            return ok and not self._pending

    # -- SweepCache interface ------------------------------------------
    def get(self, key: str):
        if not self._admit():
            self.stats.fallback_gets += 1
            return super().get(key)
        reply = self._rpc({"op": "cache_get", "key": key})
        if reply is None:
            self._record_remote_failure()
            self.stats.fallback_gets += 1
            return super().get(key)
        self._record_remote_success()
        if not reply.get("hit"):
            self.stats.remote_misses += 1
            # The server may have missed what we hold locally (it was
            # down when we computed it): answer from the fallback too.
            return super().get(key)
        try:
            value = pickle.loads(reply["payload"])
        except Exception:
            # Corrupt payload that somehow passed framing: a miss,
            # never an exception or a wrong value.
            self.stats.remote_misses += 1
            return super().get(key)
        self.stats.remote_hits += 1
        return value

    def put(self, key: str, result) -> None:
        # The local directory always gets the entry first: a crash or
        # partition at any later point can only lose remote
        # deduplication, never the result itself.
        super().put(key, result)
        if not self._admit():
            with self._mutex:
                self._pending.add(key)
            self.stats.fallback_puts += 1
            return
        reply = self._rpc({
            "op": "cache_put", "key": key,
            "payload": pickle.dumps(result, protocol=4)})
        if reply is None:
            self._record_remote_failure()
            with self._mutex:
                self._pending.add(key)
            self.stats.fallback_puts += 1
            return
        self._record_remote_success()
        self.stats.remote_puts += 1
