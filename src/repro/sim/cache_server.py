"""Networked sweep-result cache: a TCP server plus a partition-tolerant client.

A fleet of sweep runners (or distributed workers on several hosts)
can share one result cache instead of each keeping its own directory.
The moving parts:

* :class:`CacheServer` serves content-hash ``get``/``put`` over the
  same checksummed frame protocol as the distributed sweep
  coordinator.  Storage is an ordinary :class:`~repro.sim.sweep.SweepCache`
  directory -- atomic write-to-temp-and-rename under the advisory
  file lock, unpickle-validated reads -- so a server crash mid-``put``
  can tear at most a temp file, never a served entry, and the
  directory stays interchangeable with a local cache.
* :class:`NetworkSweepCache` is a drop-in :class:`~repro.sim.sweep.SweepCache`
  subclass: ``ScenarioRunner(cache=NetworkSweepCache(...))`` works
  unchanged.  Every remote failure -- refused connection, timeout,
  torn frame -- flips the client into **partition mode**: reads and
  writes fall back to a local cache directory, writes are remembered,
  and a periodic probe looks for the server.  On heal the client
  **reconciles**: the puts accumulated during the partition are
  replayed to the server, then remote operation resumes.  A sweep
  never fails, blocks, or loses results because the cache network is
  down; at worst it recomputes what the unreachable server knew.

Why stale reads are safe here: cache keys are content hashes of
(cell configuration, code salt), so a key maps to exactly one value
forever.  A "stale" entry is byte-for-byte the correct entry; the
only staleness possible is a *miss* that a fresher server would have
hit, and a miss just means recomputing -- correctness never depends
on cache freshness.

Like the distributed coordinator, frames are integrity-checked but
unauthenticated: localhost / trusted-network use only.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, Union

from .distributed import ProtocolError, recv_msg, rpc, send_msg
from .retry import RetryPolicy
from .sweep import SweepCache

__all__ = [
    "CacheServer",
    "CacheServerStats",
    "NetworkSweepCache",
    "CacheClientStats",
]


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
@dataclass
class CacheServerStats:
    gets: int = 0
    hits: int = 0
    puts: int = 0
    #: Requests deliberately dropped while chaos-partitioned.
    partitioned_drops: int = 0
    #: Replies deliberately truncated mid-frame (chaos).
    torn_replies: int = 0
    bad_requests: int = 0


class CacheServer:
    """Serve one cache directory over TCP.

    Protocol (one request/response per connection):

    ==============  ====================================================
    request          response
    ==============  ====================================================
    ``cache_ping``  ``{ok: True}``
    ``cache_get``   ``{hit: bool, payload: bytes | None}``
    ``cache_put``   ``{ok: True}``
    ``cache_stats`` counters snapshot
    ==============  ====================================================

    Values travel as pickled payload bytes inside checksummed frames;
    at rest they are exactly the files a local
    :class:`~repro.sim.sweep.SweepCache` writes, so the served
    directory can be copied, inspected, or mounted directly by a
    local-cache runner.

    Chaos hooks (used by the fault-injection tests):

    * :meth:`partition` / :meth:`heal` -- while partitioned, every
      accepted connection is closed without a reply, exactly what a
      dropped network looks like to the client;
    * :meth:`inject_torn_replies` -- the next *n* replies are
      truncated mid-frame, exercising the client's checksum path.
    """

    def __init__(self, directory: Union[str, Path],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.store = SweepCache(directory)
        self.host = host
        self.port = port
        self.stats = CacheServerStats()
        self._lock = threading.Lock()
        self._partitioned = threading.Event()
        self._torn_replies = 0
        self._server: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        server.settimeout(0.2)
        self._server = server
        self.port = server.getsockname()[1]
        self._thread = threading.Thread(target=self._serve,
                                        name="cache-server", daemon=True)
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    # -- chaos hooks ---------------------------------------------------
    def partition(self) -> None:
        """Drop every request until :meth:`heal` (keeps listening, so
        clients see resets/timeouts rather than instant refusals)."""
        self._partitioned.set()

    def heal(self) -> None:
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def inject_torn_replies(self, n: int) -> None:
        """Truncate the next ``n`` replies mid-frame (torn write on
        the wire; the client's frame checksum must catch it)."""
        with self._lock:
            self._torn_replies += int(n)

    # -- plumbing ------------------------------------------------------
    def _serve(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(10.0)
            if self._partitioned.is_set():
                self.stats.partitioned_drops += 1
                return  # close without replying: the partition
            try:
                message = recv_msg(conn)
                reply = self._dispatch(message)
                self._send_reply(conn, reply)
            except (ConnectionError, OSError, pickle.UnpicklingError):
                self.stats.bad_requests += 1

    def _send_reply(self, conn: socket.socket,
                    reply: Dict[str, Any]) -> None:
        with self._lock:
            tear = self._torn_replies > 0
            if tear:
                self._torn_replies -= 1
        if not tear:
            send_msg(conn, reply)
            return
        # Emit a deliberately torn frame: a valid header whose payload
        # stops halfway.  The checksum (or the cut itself) must make
        # the client treat this as corruption, never as data.
        import hashlib
        import struct
        payload = pickle.dumps(reply, protocol=4)
        digest = hashlib.sha256(payload).digest()[:8]
        header = struct.Struct(">3sI8s").pack(b"CD1", len(payload), digest)
        conn.sendall(header + payload[: max(1, len(payload) // 2)])
        self.stats.torn_replies += 1

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "cache_ping":
            return {"op": "ok", "ok": True}
        if op == "cache_get":
            self.stats.gets += 1
            value = self.store.get(str(message["key"]))
            if value is None:
                return {"op": "ok", "hit": False, "payload": None}
            self.stats.hits += 1
            return {"op": "ok", "hit": True,
                    "payload": pickle.dumps(value, protocol=4)}
        if op == "cache_put":
            value = pickle.loads(message["payload"])
            self.store.put(str(message["key"]), value)
            self.stats.puts += 1
            return {"op": "ok", "ok": True}
        if op == "cache_stats":
            return {"op": "ok", "entries": len(self.store),
                    "gets": self.stats.gets, "hits": self.stats.hits,
                    "puts": self.stats.puts}
        self.stats.bad_requests += 1
        return {"op": "error", "error": f"unknown op {op!r}"}


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
@dataclass
class CacheClientStats:
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0
    #: Operations served by the local fallback directory.
    fallback_gets: int = 0
    fallback_puts: int = 0
    #: Remote failures that flipped the client into partition mode.
    partitions_detected: int = 0
    #: Successful probes that flipped it back.
    heals: int = 0
    #: Locally-buffered puts replayed to the server on heal.
    reconciled_puts: int = 0


class NetworkSweepCache(SweepCache):
    """A :class:`~repro.sim.sweep.SweepCache` backed by a
    :class:`CacheServer`, degrading to a local directory under
    partition.

    Drop-in for any ``cache=`` argument (it *is* a ``SweepCache``);
    the inherited directory doubles as the local fallback store and
    the reconciliation buffer.

    Failure handling is one-way-door-free: any remote error marks the
    client partitioned and the operation completes locally.  While
    partitioned, at most one probe per ``probe_interval_s`` checks the
    server (so a sweep is never throttled by per-cell connection
    timeouts); a successful probe replays the locally buffered puts
    and resumes remote operation.  :meth:`flush` forces a final
    probe-and-reconcile, e.g. at the end of a sweep.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        directory: Union[str, Path],
        rpc_timeout_s: float = 5.0,
        probe_interval_s: float = 0.5,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(directory)
        self.address = (str(address[0]), int(address[1]))
        self.rpc_timeout_s = rpc_timeout_s
        self.probe_interval_s = probe_interval_s
        #: In-line retry schedule for one remote op before declaring a
        #: partition (default: one quick second chance).
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=2, backoff_base_s=0.05, backoff_max_s=0.2)
        self.stats = CacheClientStats()
        self._mutex = threading.Lock()
        self._partitioned = False
        self._last_probe = 0.0
        self._pending: Set[str] = set()

    # -- partition bookkeeping -----------------------------------------
    @property
    def partitioned(self) -> bool:
        with self._mutex:
            return self._partitioned

    def _mark_partitioned(self) -> None:
        with self._mutex:
            if not self._partitioned:
                self._partitioned = True
                self.stats.partitions_detected += 1
            self._last_probe = time.monotonic()

    def _should_probe(self) -> bool:
        with self._mutex:
            if not self._partitioned:
                return False
            now = time.monotonic()
            if now - self._last_probe < self.probe_interval_s:
                return False
            self._last_probe = now
            return True

    def _rpc(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One remote op with quick in-line retries; None on failure."""
        attempts = 0
        while True:
            try:
                return rpc(self.address, message,
                           timeout_s=self.rpc_timeout_s)
            except (ConnectionError, OSError, ProtocolError,
                    pickle.UnpicklingError):
                attempts += 1
                if not self.retry.allows(attempts):
                    return None
                self.retry.sleep(attempts, token=message.get("op", ""))

    def _probe_and_heal(self) -> bool:
        """Try the server; on success replay buffered puts. True if up."""
        reply = self._rpc({"op": "cache_ping"})
        if reply is None:
            return False
        with self._mutex:
            pending = sorted(self._pending)
        replayed = 0
        for key in pending:
            value = super().get(key)
            if value is None:
                continue  # local entry lost/corrupt: nothing to replay
            reply = self._rpc({
                "op": "cache_put", "key": key,
                "payload": pickle.dumps(value, protocol=4)})
            if reply is None:
                return False  # partition is back; keep the buffer
            replayed += 1
            with self._mutex:
                self._pending.discard(key)
        with self._mutex:
            if self._partitioned:
                self._partitioned = False
                self.stats.heals += 1
            self.stats.reconciled_puts += replayed
        return True

    def flush(self) -> bool:
        """Force a probe + reconcile now; True when the server is
        reachable and the buffer is empty."""
        with self._mutex:
            self._last_probe = time.monotonic()
        ok = self._probe_and_heal()
        with self._mutex:
            return ok and not self._pending

    # -- SweepCache interface ------------------------------------------
    def get(self, key: str):
        if self.partitioned:
            if not (self._should_probe() and self._probe_and_heal()):
                self.stats.fallback_gets += 1
                return super().get(key)
        reply = self._rpc({"op": "cache_get", "key": key})
        if reply is None:
            self._mark_partitioned()
            self.stats.fallback_gets += 1
            return super().get(key)
        if not reply.get("hit"):
            self.stats.remote_misses += 1
            # The server may have missed what we hold locally (it was
            # down when we computed it): answer from the fallback too.
            return super().get(key)
        try:
            value = pickle.loads(reply["payload"])
        except Exception:
            # Corrupt payload that somehow passed framing: a miss,
            # never an exception or a wrong value.
            self.stats.remote_misses += 1
            return super().get(key)
        self.stats.remote_hits += 1
        return value

    def put(self, key: str, result) -> None:
        # The local directory always gets the entry first: a crash or
        # partition at any later point can only lose remote
        # deduplication, never the result itself.
        super().put(key, result)
        if self.partitioned:
            if not (self._should_probe() and self._probe_and_heal()):
                with self._mutex:
                    self._pending.add(key)
                self.stats.fallback_puts += 1
                return
        reply = self._rpc({
            "op": "cache_put", "key": key,
            "payload": pickle.dumps(result, protocol=4)})
        if reply is None:
            self._mark_partitioned()
            with self._mutex:
                self._pending.add(key)
            self.stats.fallback_puts += 1
            return
        self.stats.remote_puts += 1
