"""Multi-day simulation: discharge cycles + overnight charging + aging.

Closes the loop the paper leaves open: run a scheduling policy through
many consecutive days -- each day one discharge cycle over a workload
trace, an overnight CC-CV charge, and a wear update against the aging
model -- and report how service time and pack health evolve.  This is
the substrate for the question "does the scheduler's battery usage
pattern wear the pack differently?".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from .. import obs
from ..battery.aging import AgingModel, CellHealth
from ..battery.cell import Cell
from ..battery.charging import CCCVCharger
from ..battery.pack import BigLittlePack, SingleBatteryPack
from ..device.profiles import NEXUS, PhoneProfile
from ..durability.budget import BudgetExceededError, RunBudget
from ..durability.snapshot import Checkpointer, SimCheckpoint
from ..durability.state import StateMismatchError
from ..workload.traces import Trace
from .discharge import (
    DischargeResult,
    SchedulingPolicy,
    run_discharge_cycle,
    trace_fingerprint,
)

__all__ = ["DayRecord", "MultiDayResult", "run_days"]


@dataclass(frozen=True)
class DayRecord:
    """One simulated day."""

    day: int
    service_time_s: float
    energy_delivered_j: float
    charge_time_s: float
    #: State-of-health per cell after the day's wear, in pack order.
    cell_health: tuple


@dataclass
class MultiDayResult:
    """Outcome of a multi-day run."""

    policy_name: str
    workload_name: str
    days: List[DayRecord] = field(default_factory=list)
    #: Control steps executed across all day cycles (throughput accounting).
    step_count: int = 0
    #: Wall-clock time spent in the day cycles (s).
    wall_time_s: float = 0.0
    #: Observability blob (populated only while ``obs`` is enabled);
    #: out-of-band of the simulated outcome, excluded from equality.
    telemetry: Optional[obs.RunTelemetry] = field(
        default=None, repr=False, compare=False)

    @property
    def first_day(self) -> DayRecord:
        """Day 1 (the fresh-pack reference)."""
        return self.days[0]

    @property
    def last_day(self) -> DayRecord:
        """The final simulated day."""
        return self.days[-1]

    @property
    def service_fade(self) -> float:
        """Relative service-time loss from day 1 to the last day."""
        return 1.0 - self.last_day.service_time_s / self.first_day.service_time_s


def _healths_for(policy: SchedulingPolicy) -> List[CellHealth]:
    pack = policy.build_pack()
    if isinstance(pack, BigLittlePack):
        cells = [pack.big, pack.little]
    elif isinstance(pack, SingleBatteryPack):
        cells = [pack.cell]
    else:
        cells = list(getattr(pack, "cells"))
    return [CellHealth(c.chemistry, c.capacity_mah) for c in cells]


def _aged_policy_pack(policy: SchedulingPolicy, healths: List[CellHealth]):
    """A fresh pack whose cells carry the accumulated fade."""
    pack = policy.build_pack()
    if isinstance(pack, BigLittlePack):
        pack.big = healths[0].fresh_cell()
        pack.little = healths[1].fresh_cell()
        cells = [pack.big, pack.little]
    elif isinstance(pack, SingleBatteryPack):
        pack.cell = healths[0].fresh_cell()
        cells = [pack.cell]
    else:
        pack.cells = [h.fresh_cell() for h in healths]
        cells = pack.cells
    return pack, cells


class _AgedProxy(SchedulingPolicy):
    """Delegates to a policy but hands out capacity-faded packs."""

    def __init__(self, inner: SchedulingPolicy, healths: List[CellHealth]):
        self._inner = inner
        self._healths = healths
        self.name = inner.name
        self.uses_tec = inner.uses_tec

    def build_pack(self):
        pack, _ = _aged_policy_pack(self._inner, self._healths)
        return pack

    def on_cycle_start(self, trace, phone):
        self._inner.on_cycle_start(trace, phone)

    def decide_battery(self, ctx):
        return self._inner.decide_battery(ctx)


def _daily_fingerprint(policy, trace, n_days, profile, control_dt,
                       max_cycle_s) -> str:
    """Fingerprint of everything a daily resume must match."""
    data = (
        type(policy).__qualname__, policy.name,
        trace.name, trace_fingerprint(trace),
        n_days, getattr(profile, "name", repr(profile)),
        control_dt, max_cycle_s,
    )
    return hashlib.sha256(repr(data).encode()).hexdigest()[:16]


def run_days(
    policy: SchedulingPolicy,
    trace: Trace,
    n_days: int = 30,
    profile: PhoneProfile = NEXUS,
    control_dt: float = 2.0,
    max_cycle_s: float = 60.0 * 3600.0,
    charger: Optional[CCCVCharger] = None,
    aging: Optional[AgingModel] = None,
    checkpointer: Optional[Checkpointer] = None,
    resume_from: Optional[SimCheckpoint] = None,
    budget: Optional[RunBudget] = None,
) -> MultiDayResult:
    """Simulate ``n_days`` of discharge / charge / wear.

    Each day the policy gets a pack whose per-cell capacities reflect
    the accumulated fade; the day's per-cell throughput and the
    battery-bay temperature feed the aging model; the overnight charge
    time is recorded from the CC-CV model.

    Durability: a ``checkpointer`` saves a day-boundary checkpoint
    after every completed day (``every_steps`` is interpreted in days;
    0 still saves every day — day boundaries are already coarse).
    ``resume_from`` skips the completed days and continues; ``budget``
    is polled at each day boundary and raises
    :class:`BudgetExceededError` carrying a clean checkpoint
    (``max_steps`` counts simulator control steps across all days).
    """
    if n_days < 1:
        raise ValueError("need at least one day")
    charger = charger or CCCVCharger()
    aging = aging or AgingModel()
    healths = _healths_for(policy)
    proxy = _AgedProxy(policy, healths)

    result = MultiDayResult(policy_name=policy.name, workload_name=trace.name)

    # Observability (default off; see repro.obs): one scope for the
    # whole multi-day run, one span per simulated day.
    ob = obs.session()
    observing = ob is not None
    if observing:
        scope = ob.scope("daily", f"{policy.name}:{trace.name}")
        daily_span = ob.tracer.start("daily", policy=policy.name,
                                     trace=trace.name, n_days=n_days)

    durable = checkpointer is not None or resume_from is not None or budget is not None
    fingerprint = ""
    if durable:
        fingerprint = _daily_fingerprint(policy, trace, n_days, profile,
                                         control_dt, max_cycle_s)

    def _make_checkpoint(next_day: int) -> SimCheckpoint:
        return SimCheckpoint.create("daily", {
            "fingerprint": fingerprint,
            "next_day": next_day,
            "healths": [h.state_dict() for h in healths],
            "days": list(result.days),
            "step_count": result.step_count,
            "wall_time_s": result.wall_time_s,
        })

    start_day = 1
    if resume_from is not None:
        resume_from.verify()
        if resume_from.kind != "daily":
            raise StateMismatchError(
                f"checkpoint kind {resume_from.kind!r} is not a daily "
                f"checkpoint")
        saved = resume_from.payload
        if saved["fingerprint"] != fingerprint:
            raise StateMismatchError(
                "daily checkpoint was taken under a different run "
                f"configuration ({saved['fingerprint']} vs {fingerprint})")
        if len(saved["healths"]) != len(healths):
            raise StateMismatchError(
                f"checkpoint tracks {len(saved['healths'])} cells, pack "
                f"has {len(healths)}")
        for health, h_state in zip(healths, saved["healths"]):
            health.load_state_dict(h_state)
        result.days = list(saved["days"])
        result.step_count = saved["step_count"]
        result.wall_time_s = saved["wall_time_s"]
        start_day = saved["next_day"]
        if budget is not None:
            budget.restart()

    resumed_days = len(result.days)
    try:
        for day in range(start_day, n_days + 1):
            if budget is not None:
                reason = budget.exceeded(result.step_count)
                if reason is not None:
                    ckpt = _make_checkpoint(day)
                    if checkpointer is not None:
                        checkpointer.save(ckpt)
                    raise BudgetExceededError(reason, ckpt)
            if observing:
                day_span = ob.tracer.start("day", day=day)
            day_result: DischargeResult = run_discharge_cycle(
                proxy, trace, profile=profile, control_dt=control_dt,
                max_duration_s=max_cycle_s,
            )
            result.step_count += day_result.step_count
            result.wall_time_s += day_result.wall_time_s
            # Wear update: approximate per-cell throughput by each cell's
            # energy share at the rail voltage; battery-bay temperature is
            # derived from the recorded die temperature.
            mean_temp = (day_result.metrics.series("cpu_temp_c").mean()
                         * 0.6 + 10.0)
            throughputs = _split_throughput(day_result, len(healths),
                                            rail_v=profile.rail_voltage_v)
            for health, through in zip(healths, throughputs):
                mean_current = through / max(day_result.service_time_s, 1.0)
                aging.record_cycle(health, through, mean_temp_c=mean_temp,
                                   mean_current_a=mean_current)

            charge_pack, _ = _aged_policy_pack(policy, healths)
            for cell in charger.cells_of(charge_pack):
                cell.drain_to(0.02 * cell.state_of_charge)  # arrives empty
            charge_time = charger.charge_pack(charge_pack)

            result.days.append(DayRecord(
                day=day,
                service_time_s=day_result.service_time_s,
                energy_delivered_j=day_result.energy_delivered_j,
                charge_time_s=charge_time,
                cell_health=tuple(h.health for h in healths),
            ))
            if observing:
                day_span.finish()
            if checkpointer is not None:
                checkpointer.save(_make_checkpoint(day + 1))
            if any(h.end_of_life for h in healths):
                break
    finally:
        # Harvest in the finally so a budget abort still closes the
        # scope; the tracer implicitly closes a day span the abort
        # left open.
        if observing:
            daily_span.finish()
            scope.registry.counter("daily.days").inc(
                len(result.days) - resumed_days)
            result.telemetry = scope.telemetry()
            scope.close()
            ob.export_telemetry(result.telemetry)
    return result


def _split_throughput(day: DischargeResult, n_cells: int,
                      rail_v: float = 3.7) -> List[float]:
    """Apportion the day's charge throughput across the pack's cells.

    ``rail_v`` is the profile's supply-rail voltage used to convert
    delivered energy to charge.  For dual packs the split follows the
    big/LITTLE activation-time energy shares; single packs take
    everything.
    """
    total_amp_s = day.energy_delivered_j / rail_v
    if n_cells == 1:
        return [total_amp_s]
    total_t = max(day.big_time_s + day.little_time_s, 1e-9)
    big_share = day.big_time_s / total_t
    return [total_amp_s * big_share, total_amp_s * (1.0 - big_share)]
